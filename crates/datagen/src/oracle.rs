//! The validation oracle (§5.2 "PFD Validation").
//!
//! The paper validates discovered PFDs against external authorities:
//! gender-api.com for `Full Name → Gender`, an area-code registry for
//! `Fax → State`, and the `uszipcode` package for `Zip → City`. This module
//! is the deterministic stand-in: the generator's own ground-truth maps
//! exposed as a lookup service, with the same failure modes (unisex names
//! return no gender; unknown codes return nothing).

use crate::pools;
use pfd_core::{Pfd, TableauCell};

/// Which external dependency a PFD claims (Table 8's three rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleDomain {
    /// First name determines gender.
    NameGender,
    /// 3-digit area code (phone or fax) determines state.
    AreaCodeState,
    /// 3-digit zip prefix determines city.
    ZipCity,
    /// 3-digit zip prefix determines state.
    ZipState,
}

/// The validation oracle.
#[derive(Debug, Clone, Copy, Default)]
pub struct ValidationOracle;

impl ValidationOracle {
    /// The oracle is stateless; this is provided for API symmetry.
    pub fn new() -> ValidationOracle {
        ValidationOracle
    }

    /// gender-api style lookup: `Some("M"/"F")` or `None` for unknown and
    /// unisex names.
    pub fn gender_of_first_name(&self, name: &str) -> Option<&'static str> {
        pools::gender_of(name.trim())
    }

    /// Area-code registry lookup.
    pub fn state_of_area_code(&self, code: &str) -> Option<&'static str> {
        pools::state_of_area_code(code.trim())
    }

    /// uszipcode-style lookups (by 3-digit prefix or full 5-digit zip).
    pub fn city_of_zip(&self, zip: &str) -> Option<&'static str> {
        let prefix = zip.trim().get(..3)?;
        pools::city_state_of_zip_prefix(prefix).map(|(c, _)| c)
    }

    /// uszipcode-style state lookup by zip prefix.
    pub fn state_of_zip(&self, zip: &str) -> Option<&'static str> {
        let prefix = zip.trim().get(..3)?;
        pools::city_state_of_zip_prefix(prefix).map(|(_, s)| s)
    }

    /// Validate a *constant* PFD tableau row against the oracle: extract the
    /// constant constrained part of the single LHS cell, look it up in the
    /// oracle domain, and compare with the constant RHS cell.
    ///
    /// `None` means the oracle cannot decide (non-constant cells, or a key
    /// the authority does not know — e.g. a unisex name).
    pub fn validate_row(
        &self,
        domain: OracleDomain,
        lhs_cell: &TableauCell,
        rhs_cell: &TableauCell,
    ) -> Option<bool> {
        let key = lhs_cell.constant_value()?;
        let expected = self.expected_value(domain, &key)?;
        // Compare against the whole claimed value when the entire RHS cell
        // is constant (e.g. `Los\ [Angeles]`); fall back to the constrained
        // part for context-bearing cells.
        let claimed = rhs_cell
            .full_constant_value()
            .or_else(|| rhs_cell.constant_value())?;
        Some(claimed.trim() == expected)
    }

    fn expected_value(&self, domain: OracleDomain, key: &str) -> Option<&'static str> {
        let key = key.trim().trim_end_matches(['.', ',']);
        match domain {
            OracleDomain::NameGender => {
                // The key may be a name token or a "First" prefix from a
                // constrained pattern like [Susan\ ]\A*.
                self.gender_of_first_name(key)
            }
            OracleDomain::AreaCodeState => {
                let code = key.get(..3)?;
                self.state_of_area_code(code)
            }
            OracleDomain::ZipCity => self.zip_lookup(key, |c, _| c),
            OracleDomain::ZipState => self.zip_lookup(key, |_, s| s),
        }
    }

    /// Resolve a (possibly short) zip-prefix key: exact 3-digit prefixes
    /// look up directly; shorter keys succeed when *every* known 3-digit
    /// prefix extending them agrees on the answer (the `[90]\D{3}` case —
    /// all 90x prefixes are Los Angeles).
    fn zip_lookup(
        &self,
        key: &str,
        pick: fn(&'static str, &'static str) -> &'static str,
    ) -> Option<&'static str> {
        if key.len() >= 3 {
            let prefix = key.get(..3)?;
            return pools::city_state_of_zip_prefix(prefix).map(|(c, s)| pick(c, s));
        }
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_digit()) {
            return None;
        }
        let mut answer: Option<&'static str> = None;
        for (prefix, city, state) in pools::ZIP_PREFIXES {
            if prefix.starts_with(key) {
                let v = pick(city, state);
                match answer {
                    None => answer = Some(v),
                    Some(prev) if prev != v => return None,
                    _ => {}
                }
            }
        }
        answer
    }

    /// Validate every constant tableau row of a normal-form PFD. Returns
    /// `(validated_true, validated_false, undecided)` — the raw counts behind
    /// Table 8's precision.
    pub fn validate_pfd(&self, domain: OracleDomain, pfd: &Pfd) -> (usize, usize, usize) {
        let mut ok = 0;
        let mut bad = 0;
        let mut unknown = 0;
        for row in pfd.tableau() {
            if row.lhs.len() != 1 || row.rhs.len() != 1 {
                unknown += 1;
                continue;
            }
            match self.validate_row(domain, &row.lhs[0], &row.rhs[0]) {
                Some(true) => ok += 1,
                Some(false) => bad += 1,
                None => unknown += 1,
            }
        }
        (ok, bad, unknown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfd_relation::Schema;

    #[test]
    fn gender_lookups() {
        let o = ValidationOracle::new();
        assert_eq!(o.gender_of_first_name("David"), Some("M"));
        assert_eq!(o.gender_of_first_name("Stacey"), Some("F"));
        assert_eq!(o.gender_of_first_name("Kim"), None);
    }

    #[test]
    fn zip_lookups() {
        let o = ValidationOracle::new();
        assert_eq!(o.city_of_zip("90001"), Some("Los Angeles"));
        assert_eq!(o.state_of_zip("60601"), Some("IL"));
        assert_eq!(o.city_of_zip("99999"), None);
        assert_eq!(o.city_of_zip("9"), None, "too short");
    }

    #[test]
    fn validate_correct_name_gender_pfd() {
        let o = ValidationOracle::new();
        let s = Schema::new("T", ["full_name", "gender"]).unwrap();
        let pfd = Pfd::constant_normal_form("T", &s, "full_name", r"[Susan\ ]\A*", "gender", "F")
            .unwrap();
        assert_eq!(o.validate_pfd(OracleDomain::NameGender, &pfd), (1, 0, 0));
    }

    #[test]
    fn validate_wrong_name_gender_pfd() {
        let o = ValidationOracle::new();
        let s = Schema::new("T", ["full_name", "gender"]).unwrap();
        let pfd = Pfd::constant_normal_form("T", &s, "full_name", r"[Susan\ ]\A*", "gender", "M")
            .unwrap();
        assert_eq!(o.validate_pfd(OracleDomain::NameGender, &pfd), (0, 1, 0));
    }

    #[test]
    fn unisex_names_are_undecided() {
        // §5.2: "A few PFDs ... were reported as errors because we considered
        // the names which might be unisex". Our oracle returns undecided.
        let o = ValidationOracle::new();
        let s = Schema::new("T", ["full_name", "gender"]).unwrap();
        let pfd =
            Pfd::constant_normal_form("T", &s, "full_name", r"[Kim\ ]\A*", "gender", "F").unwrap();
        assert_eq!(o.validate_pfd(OracleDomain::NameGender, &pfd), (0, 0, 1));
    }

    #[test]
    fn validate_zip_city_pfd() {
        let o = ValidationOracle::new();
        let s = Schema::new("T", ["zip", "city"]).unwrap();
        let good =
            Pfd::constant_normal_form("T", &s, "zip", r"[900]\D{2}", "city", r"Los\ Angeles")
                .unwrap();
        assert_eq!(o.validate_pfd(OracleDomain::ZipCity, &good), (1, 0, 0));
        let bad =
            Pfd::constant_normal_form("T", &s, "zip", r"[900]\D{2}", "city", r"New\ York").unwrap();
        assert_eq!(o.validate_pfd(OracleDomain::ZipCity, &bad), (0, 1, 0));
    }

    #[test]
    fn validate_area_code_pfd_from_table3() {
        // 850\D{7} → FL, the first row of Table 3.
        let o = ValidationOracle::new();
        let s = Schema::new("T", ["fax", "state"]).unwrap();
        let pfd = Pfd::constant_normal_form("T", &s, "fax", r"[850]\D{7}", "state", "FL").unwrap();
        assert_eq!(o.validate_pfd(OracleDomain::AreaCodeState, &pfd), (1, 0, 0));
    }

    #[test]
    fn variable_rows_are_undecided() {
        let o = ValidationOracle::new();
        let s = Schema::new("T", ["zip", "city"]).unwrap();
        let pfd = Pfd::constant_normal_form("T", &s, "zip", r"[\D{3}]\D{2}", "city", "_").unwrap();
        assert_eq!(o.validate_pfd(OracleDomain::ZipCity, &pfd), (0, 0, 1));
    }
}
