//! # `pfd-datagen` — synthetic evaluation datasets for PFD experiments
//!
//! Deterministic, seeded twins of the paper's 15 evaluation tables
//! (data.gov / ChEMBL / university-warehouse, §5), plus the error-injection
//! machinery of the controlled evaluation (§5.3, Figures 5–6) and the
//! validation oracle of §5.2.
//!
//! Substitution argument (DESIGN.md §5): the real tables are private or
//! unpinned; these twins reproduce the *schema shapes*, the value formats
//! (names, zips, phones, IDs, dates, protein classes) and the embedded
//! dependencies — and make ground truth machine-checkable, so Table 7's
//! precision/recall are computed exactly rather than by manual annotation.
//!
//! ```
//! use pfd_datagen::{standard_suite, Scale};
//!
//! let suite = standard_suite(Scale::Small, 0.01, 42);
//! assert_eq!(suite.len(), 15);
//! let t1 = &suite[0];
//! assert!(t1.is_genuine(&["zip"], "city"));
//! assert!(!t1.is_genuine(&["email"], "gender"));
//! ```

#![warn(missing_docs)]

pub mod dataset;
pub mod inject;
pub mod oracle;
pub mod pools;
pub mod tables;

pub use dataset::{evaluate_dependencies, Dataset, DependencyEval, GroundTruthDep, Repository};
pub use inject::{
    dirty_clean_pair, inject_errors, inject_profile, typo, ErrorProfile, ErrorSpec, InjectedError,
    NoiseMode,
};
pub use oracle::{OracleDomain, ValidationOracle};
pub use tables::{geo_cascade_table, standard_suite, zip_state_table, Scale, PAPER_ROWS};
