//! Static value pools with ground-truth mappings.
//!
//! These stand in for the external authorities the paper consulted when
//! validating discovered PFDs (§5.2): gender-api.com for first names,
//! the `uszipcode` package for zip → city/state, and area-code registries
//! for phone/fax → state. The pools deliberately reproduce the phenomena
//! the paper discusses: unisex names (false positives for generalized
//! name → gender PFDs), multi-prefix cities (Boston), and shared zip
//! prefixes across cities within a state.

/// Male first names (gender ground truth "M").
pub const MALE_NAMES: &[&str] = &[
    "John",
    "David",
    "Michael",
    "James",
    "Robert",
    "William",
    "Richard",
    "Joseph",
    "Thomas",
    "Charles",
    "Donald",
    "Mark",
    "Paul",
    "Steven",
    "Andrew",
    "Kenneth",
    "George",
    "Joshua",
    "Kevin",
    "Brian",
    "Edward",
    "Ronald",
    "Timothy",
    "Jason",
    "Jeffrey",
    "Ryan",
    "Jacob",
    "Gary",
    "Nicholas",
    "Eric",
    "Jonathan",
    "Stephen",
    "Larry",
    "Justin",
    "Scott",
    "Brandon",
    "Benjamin",
    "Samuel",
    "Gregory",
    "Frank",
    "Alexander",
    "Raymond",
    "Patrick",
    "Jack",
    "Dennis",
    "Jerry",
    "Tyler",
    "Aaron",
    "Jose",
    "Adam",
    "Nathan",
    "Henry",
    "Douglas",
    "Zachary",
    "Peter",
    "Kyle",
    "Walter",
    "Ethan",
    "Jeremy",
    "Harold",
    "Keith",
    "Christian",
    "Roger",
    "Noah",
    "Gerald",
    "Carl",
    "Terry",
    "Sean",
    "Austin",
    "Arthur",
    "Lawrence",
    "Jesse",
    "Dylan",
    "Bryan",
    "Joe",
    "Billy",
    "Bruce",
    "Albert",
    "Willie",
    "Alan",
];

/// Female first names (gender ground truth "F").
pub const FEMALE_NAMES: &[&str] = &[
    "Susan",
    "Mary",
    "Patricia",
    "Linda",
    "Barbara",
    "Elizabeth",
    "Jennifer",
    "Maria",
    "Margaret",
    "Dorothy",
    "Lisa",
    "Nancy",
    "Karen",
    "Betty",
    "Helen",
    "Sandra",
    "Donna",
    "Carol",
    "Ruth",
    "Sharon",
    "Michelle",
    "Laura",
    "Sarah",
    "Kimberly",
    "Deborah",
    "Jessica",
    "Shirley",
    "Cynthia",
    "Angela",
    "Melissa",
    "Brenda",
    "Amy",
    "Anna",
    "Rebecca",
    "Virginia",
    "Kathleen",
    "Pamela",
    "Martha",
    "Debra",
    "Amanda",
    "Stephanie",
    "Carolyn",
    "Christine",
    "Marie",
    "Janet",
    "Catherine",
    "Frances",
    "Ann",
    "Joyce",
    "Diane",
    "Alice",
    "Julie",
    "Heather",
    "Teresa",
    "Doris",
    "Gloria",
    "Evelyn",
    "Jean",
    "Cheryl",
    "Mildred",
    "Katherine",
    "Joan",
    "Ashley",
    "Judith",
    "Rose",
    "Janice",
    "Kelly",
    "Nicole",
    "Judy",
    "Christina",
    "Kathy",
    "Theresa",
    "Beverly",
    "Denise",
    "Tammy",
    "Irene",
    "Jane",
    "Lori",
    "Rachel",
    "Stacey",
];

/// Unisex first names — the paper's Kim example: a generalized
/// name → gender PFD flags these as errors even on correct data (§2.2).
pub const UNISEX_NAMES: &[&str] = &["Kim", "Casey", "Jordan", "Taylor", "Morgan", "Riley"];

/// Last names.
pub const LAST_NAMES: &[&str] = &[
    "Smith",
    "Johnson",
    "Williams",
    "Brown",
    "Jones",
    "Garcia",
    "Miller",
    "Davis",
    "Rodriguez",
    "Martinez",
    "Hernandez",
    "Lopez",
    "Gonzalez",
    "Wilson",
    "Anderson",
    "Thomas",
    "Taylor",
    "Moore",
    "Jackson",
    "Martin",
    "Lee",
    "Perez",
    "Thompson",
    "White",
    "Harris",
    "Sanchez",
    "Clark",
    "Ramirez",
    "Lewis",
    "Robinson",
    "Walker",
    "Young",
    "Allen",
    "King",
    "Wright",
    "Scott",
    "Torres",
    "Nguyen",
    "Hill",
    "Flores",
    "Green",
    "Adams",
    "Nelson",
    "Baker",
    "Hall",
    "Rivera",
    "Campbell",
    "Mitchell",
    "Carter",
    "Roberts",
    "Holloway",
    "Kimbell",
    "Mallack",
    "Otillio",
    "Boyle",
    "Orlean",
    "Bosco",
    "Charles",
];

/// Zip prefix (3 digits) → (city, state). Includes the paper's cases: Los
/// Angeles (900–904), Chicago (606) and multi-prefix Boston (021, 022).
pub const ZIP_PREFIXES: &[(&str, &str, &str)] = &[
    ("900", "Los Angeles", "CA"),
    ("901", "Los Angeles", "CA"),
    ("902", "Los Angeles", "CA"),
    ("903", "Los Angeles", "CA"),
    ("904", "Los Angeles", "CA"),
    ("941", "San Francisco", "CA"),
    ("956", "Sacramento", "CA"),
    ("606", "Chicago", "IL"),
    ("617", "Rockford", "IL"),
    ("100", "New York", "NY"),
    ("101", "New York", "NY"),
    ("112", "Brooklyn", "NY"),
    ("021", "Boston", "MA"),
    ("022", "Boston", "MA"),
    ("330", "Miami", "FL"),
    ("331", "Miami", "FL"),
    ("303", "Atlanta", "GA"),
    ("802", "Denver", "CO"),
    ("852", "Phoenix", "AZ"),
    ("981", "Seattle", "WA"),
    ("972", "Portland", "OR"),
    ("191", "Philadelphia", "PA"),
    ("773", "Houston", "TX"),
    ("752", "Dallas", "TX"),
    ("631", "St Louis", "MO"),
    ("482", "Detroit", "MI"),
    ("553", "Minneapolis", "MN"),
];

/// Area code → state (phone and fax numbers). The first five rows are the
/// exact dependencies shown in Table 3 of the paper.
pub const AREA_CODES: &[(&str, &str)] = &[
    ("850", "FL"),
    ("607", "NY"),
    ("404", "GA"),
    ("217", "IL"),
    ("860", "CT"),
    ("305", "FL"),
    ("212", "NY"),
    ("770", "GA"),
    ("630", "IL"),
    ("213", "CA"),
    ("559", "CA"),
    ("617", "MA"),
    ("508", "MA"),
    ("303", "CO"),
    ("719", "CO"),
    ("602", "AZ"),
    ("928", "AZ"),
    ("206", "WA"),
    ("425", "WA"),
    ("503", "OR"),
    ("971", "OR"),
    ("215", "PA"),
    ("484", "PA"),
    ("713", "TX"),
    ("254", "TX"),
    ("314", "MO"),
    ("660", "MO"),
    ("313", "MI"),
    ("989", "MI"),
    ("612", "MN"),
    ("507", "MN"),
    ("908", "NJ"),
];

/// All US state codes (for in/out-of-active-domain noise selection).
pub const ALL_STATES: &[&str] = &[
    "AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA", "HI", "ID", "IL", "IN", "IA", "KS",
    "KY", "LA", "ME", "MD", "MA", "MI", "MN", "MS", "MO", "MT", "NE", "NV", "NH", "NJ", "NM", "NY",
    "NC", "ND", "OH", "OK", "OR", "PA", "RI", "SC", "SD", "TN", "TX", "UT", "VT", "VA", "WA", "WV",
    "WI", "WY",
];

/// Department code (the leading letter of an employee ID such as `F-9-107`,
/// §1's motivating example) → department name.
pub const DEPARTMENTS: &[(&str, &str)] = &[
    ("F", "Finance"),
    ("H", "Human Resources"),
    ("E", "Engineering"),
    ("M", "Marketing"),
    ("L", "Legal"),
    ("O", "Operations"),
    ("R", "Research"),
    ("S", "Sales"),
];

/// Program code → (program name, college).
pub const PROGRAMS: &[(&str, &str, &str)] = &[
    ("CS", "Computer Science", "Engineering"),
    ("EE", "Electrical Engineering", "Engineering"),
    ("ME", "Mechanical Engineering", "Engineering"),
    ("BI", "Biology", "Science"),
    ("CH", "Chemistry", "Science"),
    ("PH", "Physics", "Science"),
    ("EC", "Economics", "Social Science"),
    ("PS", "Political Science", "Social Science"),
    ("HI", "History", "Humanities"),
    ("EN", "English", "Humanities"),
    ("MU", "Music", "Arts"),
    ("AR", "Art History", "Arts"),
];

/// Course department code → department name (course codes are `CS-101`).
pub const COURSE_DEPTS: &[(&str, &str)] = &[
    ("CS", "Computer Science"),
    ("EE", "Electrical Engineering"),
    ("MA", "Mathematics"),
    ("PH", "Physics"),
    ("CH", "Chemistry"),
    ("BI", "Biology"),
    ("EC", "Economics"),
    ("HI", "History"),
    ("EN", "English"),
    ("MU", "Music"),
];

/// Title code → title description (university payroll).
pub const TITLES: &[(&str, &str)] = &[
    ("PROF1", "Assistant Professor"),
    ("PROF2", "Associate Professor"),
    ("PROF3", "Full Professor"),
    ("LECT1", "Lecturer"),
    ("LECT2", "Senior Lecturer"),
    ("ADMN1", "Administrative Assistant"),
    ("ADMN2", "Administrative Manager"),
    ("RSCH1", "Research Associate"),
    ("RSCH2", "Senior Research Scientist"),
    ("TECH1", "Laboratory Technician"),
];

/// Degree code → degree name.
pub const DEGREES: &[(&str, &str)] = &[
    ("BS", "Bachelor of Science"),
    ("BA", "Bachelor of Arts"),
    ("MS", "Master of Science"),
    ("MA", "Master of Arts"),
    ("MBA", "Master of Business Administration"),
    ("PHD", "Doctor of Philosophy"),
    ("MD", "Doctor of Medicine"),
    ("JD", "Juris Doctor"),
];

/// Protein preferred-name prefix → protein class description; modeled on the
/// paper's ChEMBL example `Nicotinic acetylcholine receptor \A* →
/// ion channel lgic ach chrn \A*`.
pub const PROTEIN_CLASSES: &[(&str, &str)] = &[
    (
        "Nicotinic acetylcholine receptor",
        "ion channel lgic ach chrn",
    ),
    (
        "Dopamine receptor",
        "membrane receptor 7tm1 monoamine dopamine",
    ),
    (
        "Serotonin receptor",
        "membrane receptor 7tm1 monoamine serotonin",
    ),
    ("Carbonic anhydrase", "enzyme lyase carbonic anhydrase"),
    ("Cytochrome P450", "enzyme cytochrome p450"),
    ("Tyrosine-protein kinase", "enzyme kinase protein kinase tk"),
    ("Sodium channel protein", "ion channel vgc sodium"),
    ("Glutamate receptor", "ion channel lgic glutamate"),
    ("Histone deacetylase", "enzyme hydrolase hdac"),
    (
        "Adenosine receptor",
        "membrane receptor 7tm1 nucleotide adenosine",
    ),
];

/// Assay type code → assay description (ChEMBL-like).
pub const ASSAY_TYPES: &[(&str, &str)] = &[
    ("B", "Binding"),
    ("F", "Functional"),
    ("A", "ADMET"),
    ("T", "Toxicity"),
    ("P", "Physicochemical"),
];

/// Journal → (ISSN prefix, publisher) for the document table.
pub const JOURNALS: &[(&str, &str, &str)] = &[
    ("J Med Chem", "0022-2623", "ACS"),
    ("Bioorg Med Chem Lett", "0960-894X", "Elsevier"),
    ("Eur J Med Chem", "0223-5234", "Elsevier"),
    ("J Nat Prod", "0163-3864", "ACS"),
    ("Nature", "0028-0836", "Springer"),
    ("Science", "0036-8075", "AAAS"),
    ("Cell", "0092-8674", "Elsevier"),
    ("PNAS", "0027-8424", "NAS"),
];

/// Organisms for the chemical tables.
pub const ORGANISMS: &[&str] = &[
    "Homo sapiens",
    "Rattus norvegicus",
    "Mus musculus",
    "Bos taurus",
    "Escherichia coli",
    "Saccharomyces cerevisiae",
];

/// Complaint type code → description (311-style civic table).
pub const COMPLAINT_TYPES: &[(&str, &str)] = &[
    ("NSE", "Noise"),
    ("WTR", "Water Quality"),
    ("STR", "Street Condition"),
    ("PKG", "Illegal Parking"),
    ("TRS", "Missed Trash Pickup"),
    ("GRF", "Graffiti"),
    ("LGT", "Street Light Out"),
    ("ROD", "Rodent Sighting"),
];

/// License class prefix → license type (civic licensing table).
pub const LICENSE_TYPES: &[(&str, &str)] = &[
    ("FB", "Food and Beverage"),
    ("RT", "Retail Trade"),
    ("CN", "Construction"),
    ("TX", "Taxi and Livery"),
    ("CH", "Childcare"),
    ("AM", "Amusement"),
];

/// Facility type code → facility kind.
pub const FACILITY_TYPES: &[(&str, &str)] = &[
    ("LIB", "Library"),
    ("PRK", "Park"),
    ("SCH", "School"),
    ("HSP", "Hospital"),
    ("FIR", "Fire Station"),
    ("POL", "Police Station"),
];

/// Look up the ground-truth gender of a first name: `Some("M"/"F")` or
/// `None` for unisex/unknown — the behaviour of the gender-api oracle.
pub fn gender_of(first_name: &str) -> Option<&'static str> {
    if MALE_NAMES.contains(&first_name) {
        Some("M")
    } else if FEMALE_NAMES.contains(&first_name) {
        Some("F")
    } else {
        None
    }
}

/// Ground-truth state for a 3-digit area code.
pub fn state_of_area_code(code: &str) -> Option<&'static str> {
    AREA_CODES.iter().find(|(c, _)| *c == code).map(|(_, s)| *s)
}

/// Ground-truth (city, state) for a 3-digit zip prefix.
pub fn city_state_of_zip_prefix(prefix: &str) -> Option<(&'static str, &'static str)> {
    ZIP_PREFIXES
        .iter()
        .find(|(p, _, _)| *p == prefix)
        .map(|(_, c, s)| (*c, *s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_pools_are_disjoint() {
        for m in MALE_NAMES {
            assert!(!FEMALE_NAMES.contains(m), "{m} in both pools");
            assert!(!UNISEX_NAMES.contains(m), "{m} male and unisex");
        }
        for f in FEMALE_NAMES {
            assert!(!UNISEX_NAMES.contains(f), "{f} female and unisex");
        }
    }

    #[test]
    fn gender_oracle() {
        assert_eq!(gender_of("John"), Some("M"));
        assert_eq!(gender_of("Susan"), Some("F"));
        assert_eq!(gender_of("Kim"), None, "unisex names have no gender");
        assert_eq!(gender_of("Zzyzx"), None);
    }

    #[test]
    fn zip_prefixes_are_functional() {
        // prefix → (city, state) must be a function (no prefix twice).
        for (i, (p, _, _)) in ZIP_PREFIXES.iter().enumerate() {
            for (q, _, _) in &ZIP_PREFIXES[..i] {
                assert_ne!(p, q, "duplicate zip prefix {p}");
            }
        }
    }

    #[test]
    fn boston_is_multi_prefix() {
        // The paper's remark: Boston has several prefixes.
        let boston: Vec<&str> = ZIP_PREFIXES
            .iter()
            .filter(|(_, c, _)| *c == "Boston")
            .map(|(p, _, _)| *p)
            .collect();
        assert!(boston.len() >= 2, "Boston needs at least two prefixes");
    }

    #[test]
    fn area_codes_are_functional_and_match_table3() {
        for (i, (c, _)) in AREA_CODES.iter().enumerate() {
            for (d, _) in &AREA_CODES[..i] {
                assert_ne!(c, d, "duplicate area code {c}");
            }
        }
        // Table 3 rows.
        assert_eq!(state_of_area_code("850"), Some("FL"));
        assert_eq!(state_of_area_code("607"), Some("NY"));
        assert_eq!(state_of_area_code("404"), Some("GA"));
        assert_eq!(state_of_area_code("217"), Some("IL"));
        assert_eq!(state_of_area_code("860"), Some("CT"));
    }

    #[test]
    fn zip_oracle() {
        assert_eq!(city_state_of_zip_prefix("900"), Some(("Los Angeles", "CA")));
        assert_eq!(city_state_of_zip_prefix("606"), Some(("Chicago", "IL")));
        assert_eq!(city_state_of_zip_prefix("999"), None);
    }

    #[test]
    fn all_states_distinct_and_cover_pool_states() {
        let mut sorted = ALL_STATES.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ALL_STATES.len());
        for (_, state) in AREA_CODES {
            assert!(ALL_STATES.contains(state), "{state} missing");
        }
        for (_, _, state) in ZIP_PREFIXES {
            assert!(ALL_STATES.contains(state), "{state} missing");
        }
    }

    #[test]
    fn department_codes_unique() {
        for (i, (c, _)) in DEPARTMENTS.iter().enumerate() {
            for (d, _) in &DEPARTMENTS[..i] {
                assert_ne!(c, d);
            }
        }
    }
}
