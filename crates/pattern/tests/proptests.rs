//! Property-based tests for the pattern algebra.

use pfd_pattern::{
    difference_witness, infer_pattern, parse_pattern, subset_of, Atom, CharClass,
    ConstrainedPattern, Element, Nfa, Pattern, Quant,
};
use proptest::prelude::*;

/// Strategy for characters drawn from realistic data-cleaning alphabets.
fn data_char() -> impl Strategy<Value = char> {
    prop_oneof![
        prop::char::range('a', 'z'),
        prop::char::range('A', 'Z'),
        prop::char::range('0', '9'),
        Just(' '),
        Just('-'),
        Just('.'),
    ]
}

fn data_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(data_char(), 0..12).prop_map(|cs| cs.into_iter().collect())
}

fn quant() -> impl Strategy<Value = Quant> {
    prop_oneof![
        Just(Quant::One),
        // {1} parses back to One, so structural round-tripping starts at 2.
        (2u32..5).prop_map(Quant::Exactly),
        Just(Quant::Plus),
        Just(Quant::Star),
    ]
}

fn atom() -> impl Strategy<Value = Atom> {
    prop_oneof![
        data_char().prop_map(Atom::Literal),
        prop_oneof![
            Just(CharClass::Upper),
            Just(CharClass::Lower),
            Just(CharClass::Digit),
            Just(CharClass::Symbol),
            Just(CharClass::Any),
        ]
        .prop_map(Atom::Class),
    ]
}

fn pattern() -> impl Strategy<Value = Pattern> {
    proptest::collection::vec((atom(), quant()), 0..6).prop_map(|items| {
        Pattern::new(items.into_iter().map(|(a, q)| Element::new(a, q)).collect())
            .expect("flat patterns are always valid")
    })
}

/// Generate a member of a pattern's language by expanding each element with
/// a bounded repetition count.
fn member_of(p: &Pattern, reps: u32) -> Option<String> {
    let mut out = String::new();
    for e in p.elements() {
        let n = match e.quant {
            Quant::One => 1,
            Quant::Exactly(n) => n,
            Quant::Plus => 1 + reps,
            Quant::Star => reps,
        };
        for _ in 0..n {
            match &e.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(class) => out.push(class.representative(&[])?),
                _ => return None,
            }
        }
    }
    Some(out)
}

proptest! {
    #[test]
    fn display_parse_roundtrip(p in pattern()) {
        let shown = p.to_string();
        let reparsed = parse_pattern(&shown).expect("display must be parseable");
        prop_assert_eq!(p, reparsed);
    }

    #[test]
    fn generated_members_match(p in pattern(), reps in 0u32..3) {
        if let Some(s) = member_of(&p, reps) {
            prop_assert!(Nfa::compile(&p).matches(&s), "member {:?} of {}", s, p);
        }
    }

    #[test]
    fn everything_is_subset_of_any_string(p in pattern()) {
        prop_assert!(subset_of(&p, &Pattern::any_string()));
    }

    #[test]
    fn subset_is_reflexive(p in pattern()) {
        prop_assert!(subset_of(&p, &p));
    }

    #[test]
    fn difference_witness_is_sound(a in pattern(), b in pattern()) {
        match difference_witness(&a, &b) {
            Some(w) => {
                prop_assert!(Nfa::compile(&a).matches(&w));
                prop_assert!(!Nfa::compile(&b).matches(&w));
            }
            None => {
                // subset: spot-check with generated members of a.
                for reps in 0..3 {
                    if let Some(s) = member_of(&a, reps) {
                        prop_assert!(Nfa::compile(&b).matches(&s),
                            "L(a) ⊆ L(b) but member {:?} of a={} not in b={}", s, a, b);
                    }
                }
            }
        }
    }

    #[test]
    fn constant_pattern_matches_exactly_itself(s in data_string()) {
        let p = Pattern::constant(&s);
        let nfa = Nfa::compile(&p);
        prop_assert!(nfa.matches(&s));
        let constant = p.as_constant();
        prop_assert_eq!(constant.as_deref(), Some(s.as_str()));
        // A perturbed string must not match.
        let perturbed = format!("{s}#");
        prop_assert!(!nfa.matches(&perturbed));
    }

    #[test]
    fn inferred_pattern_covers_inputs(values in proptest::collection::vec(data_string(), 1..8)) {
        let p = infer_pattern(&values).expect("non-empty input");
        let nfa = Nfa::compile(&p);
        for v in &values {
            prop_assert!(nfa.matches(v), "inferred {} must match {:?}", p, v);
        }
    }

    #[test]
    fn extraction_is_substring_and_equivalence_reflexive(s in data_string()) {
        // Fully-constrained \A*: extraction is the whole string.
        let cp = ConstrainedPattern::fully_constrained(Pattern::any_string());
        prop_assert_eq!(cp.extract(&s), Some(s.as_str()));
        prop_assert!(cp.equivalent(&s, &s));
    }

    #[test]
    fn constant_constrained_extraction(s in data_string(), rest in data_string()) {
        // [s]\A* extracts exactly s from s·rest.
        let cp = ConstrainedPattern::new(
            Pattern::empty(),
            Pattern::constant(&s),
            Pattern::any_string(),
        );
        let full = format!("{s}{rest}");
        let got = cp.extract(&full).map(str::to_owned);
        prop_assert_eq!(got, Some(s));
    }

    #[test]
    fn restriction_implies_equivalence_transfer(
        prefix in data_string(),
        s1 in data_string(),
        s2 in data_string(),
    ) {
        // a = [prefix]\A* is a restriction of b = [\A*] ... — instead test
        // concrete pair: a = constant-prefix, b = inferred shape of prefix.
        let a = ConstrainedPattern::new(
            Pattern::empty(), Pattern::constant(&prefix), Pattern::any_string());
        let shape = infer_pattern(std::slice::from_ref(&prefix)).unwrap();
        let b = ConstrainedPattern::new(Pattern::empty(), shape, Pattern::any_string());
        if a.is_restriction_of(&b) {
            let v1 = format!("{prefix}{s1}");
            let v2 = format!("{prefix}{s2}");
            if a.equivalent(&v1, &v2) {
                prop_assert!(b.equivalent(&v1, &v2));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Suffix-automaton properties: the automaton must agree with the naive
// all-substrings enumeration on arbitrary values, including multi-byte
// UTF-8, long repeated runs, and empty/one-char strings.
// ---------------------------------------------------------------------------

/// Strategy covering ASCII data chars plus multi-byte letters and a CJK
/// char, so char-vs-byte position bugs cannot hide.
fn sam_char() -> impl Strategy<Value = char> {
    prop_oneof![
        prop::char::range('a', 'e'),
        prop::char::range('0', '3'),
        Just('é'),
        Just('ß'),
        Just('語'),
    ]
}

fn sam_string() -> impl Strategy<Value = String> {
    prop_oneof![
        // Random small-alphabet strings (dense repeats).
        proptest::collection::vec(sam_char(), 0..40).prop_map(|cs| cs.into_iter().collect()),
        // Repeated runs: the automaton's linear-state worst case.
        (sam_char(), 1usize..60).prop_map(|(c, n)| c.to_string().repeat(n)),
    ]
}

proptest! {
    #[test]
    fn sam_matches_naive_substring_enumeration(s in sam_string()) {
        use pfd_pattern::SuffixAutomaton;
        use std::collections::HashMap;

        let chars: Vec<char> = s.chars().collect();
        // Naive: every (substring, first start, overlapping count).
        let mut naive: HashMap<String, (u32, u32)> = HashMap::new();
        for i in 0..chars.len() {
            for j in (i + 1)..=chars.len() {
                let sub: String = chars[i..j].iter().collect();
                let e = naive.entry(sub).or_insert((i as u32, 0));
                e.1 += 1;
            }
        }

        let sam = SuffixAutomaton::of(&s);
        prop_assert!(sam.num_states() <= 2 * chars.len().max(1));
        let counts = sam.occurrence_counts();
        let mut distinct = 0usize;
        let mut failure: Option<String> = None;
        sam.for_each_distinct(&counts, |start, len, count| {
            let sub: String = chars[start as usize..(start + len) as usize].iter().collect();
            match naive.get(&sub) {
                Some(&(nstart, ncount)) if nstart == start && ncount == count => {}
                other => failure = Some(format!("{sub:?}: sam ({start},{count}) vs {other:?}")),
            }
            distinct += 1;
        });
        prop_assert!(failure.is_none(), "{} in {s:?}", failure.unwrap());
        prop_assert_eq!(distinct, naive.len());

        // Repeats are exactly the class representatives with count ≥ 2.
        for r in sam.repeats(&counts, 1) {
            let sub: String = chars[r.first_start as usize..(r.first_start + r.len) as usize]
                .iter()
                .collect();
            let (nstart, ncount) = naive[&sub];
            prop_assert_eq!(nstart, r.first_start);
            prop_assert_eq!(ncount, r.count);
            prop_assert!(r.count >= 2);
        }
    }

    #[test]
    fn sam_reset_equals_fresh_build(a in sam_string(), b in sam_string()) {
        use pfd_pattern::SuffixAutomaton;
        let mut reused = SuffixAutomaton::of(&a);
        reused.reset();
        for c in b.chars() {
            reused.extend(c);
        }
        let fresh = SuffixAutomaton::of(&b);
        prop_assert_eq!(reused.num_states(), fresh.num_states());
        prop_assert_eq!(reused.occurrence_counts(), fresh.occurrence_counts());
        // Substring membership agrees on every window of b.
        let chars: Vec<char> = b.chars().collect();
        for w in [1usize, 2, 3] {
            for win in chars.windows(w) {
                prop_assert!(reused.contains(win.iter().copied()));
            }
        }
    }
}
