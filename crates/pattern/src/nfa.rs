//! Thompson NFA construction and simulation.
//!
//! §2.1: "the patterns used in this paper can be converted to
//! non-deterministic finite automata (NFAs) in polynomial time", and
//! membership / equivalence / containment are all PTIME for this class.
//! This module provides the construction and the membership simulation;
//! containment lives in [`crate::contains`].

use crate::ast::{Atom, Element, Pattern, Quant};
use crate::class::CharClass;

/// A character predicate — the label of an NFA transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum CharPred {
    Literal(char),
    Class(CharClass),
    And(Box<CharPred>, Box<CharPred>),
}

impl CharPred {
    pub(crate) fn matches(&self, c: char) -> bool {
        match self {
            CharPred::Literal(l) => *l == c,
            CharPred::Class(class) => class.contains(c),
            CharPred::And(a, b) => a.matches(c) && b.matches(c),
        }
    }

    fn from_atom(atom: &Atom) -> CharPred {
        match atom {
            Atom::Literal(c) => CharPred::Literal(*c),
            Atom::Class(class) => CharPred::Class(*class),
            Atom::And(a, b) => CharPred::And(
                Box::new(CharPred::from_atom(a)),
                Box::new(CharPred::from_atom(b)),
            ),
            Atom::Group(_) => unreachable!("groups are expanded during compilation"),
        }
    }
}

#[derive(Debug, Clone, Default)]
struct State {
    eps: Vec<usize>,
    trans: Vec<(CharPred, usize)>,
}

/// A compiled pattern. Construction is linear in the pattern description
/// (counting `{N}` as N copies); simulation is `O(|s| · states)`.
///
/// ε-closures are precomputed per state at compile time, so the per-char
/// simulation step is a flat scan with no worklist allocation — the match
/// loop is the hottest code in detection, repair and discovery
/// verification.
#[derive(Debug, Clone)]
pub struct Nfa {
    states: Vec<State>,
    /// Per state: every state reachable through ε-edges (self included).
    closures: Vec<Vec<usize>>,
    start: usize,
    accept: usize,
}

impl Nfa {
    /// Compile a pattern into an NFA (Thompson construction).
    pub fn compile(pattern: &Pattern) -> Nfa {
        let mut nfa = Nfa {
            states: vec![State::default(), State::default()],
            closures: Vec::new(),
            start: 0,
            accept: 1,
        };
        let end = nfa.compile_seq(pattern.elements(), 0);
        nfa.states[end].eps.push(nfa.accept);
        nfa.closures = (0..nfa.states.len())
            .map(|s| {
                let mut seen = vec![false; nfa.states.len()];
                seen[s] = true;
                let mut stack = vec![s];
                while let Some(t) = stack.pop() {
                    for &u in &nfa.states[t].eps {
                        if !seen[u] {
                            seen[u] = true;
                            stack.push(u);
                        }
                    }
                }
                (0..nfa.states.len()).filter(|&i| seen[i]).collect()
            })
            .collect();
        nfa
    }

    fn new_state(&mut self) -> usize {
        self.states.push(State::default());
        self.states.len() - 1
    }

    /// Compile a sequence starting at `from`; returns the exit state.
    fn compile_seq(&mut self, elements: &[Element], from: usize) -> usize {
        let mut cur = from;
        for e in elements {
            cur = self.compile_element(e, cur);
        }
        cur
    }

    fn compile_element(&mut self, e: &Element, from: usize) -> usize {
        match e.quant {
            Quant::One => self.compile_atom(&e.atom, from),
            Quant::Exactly(n) => {
                let mut cur = from;
                for _ in 0..n {
                    cur = self.compile_atom(&e.atom, cur);
                }
                cur
            }
            Quant::Plus => {
                // α+ = α · α*
                let after_first = self.compile_atom(&e.atom, from);
                self.compile_star(&e.atom, after_first)
            }
            Quant::Star => self.compile_star(&e.atom, from),
        }
    }

    fn compile_star(&mut self, atom: &Atom, from: usize) -> usize {
        // Standard star: hub state with a loop through the atom.
        let hub = self.new_state();
        self.states[from].eps.push(hub);
        let loop_end = self.compile_atom(atom, hub);
        self.states[loop_end].eps.push(hub);
        hub
    }

    fn compile_atom(&mut self, atom: &Atom, from: usize) -> usize {
        match atom {
            Atom::Group(elements) => self.compile_seq(elements, from),
            char_level => {
                let to = self.new_state();
                let pred = CharPred::from_atom(char_level);
                self.states[from].trans.push((pred, to));
                to
            }
        }
    }

    /// Activate `state` and its whole precomputed ε-closure.
    #[inline]
    fn activate(&self, set: &mut [bool], state: usize) {
        for &t in &self.closures[state] {
            set[t] = true;
        }
    }

    fn step(&self, set: &[bool], c: char, next: &mut [bool]) {
        next.iter_mut().for_each(|b| *b = false);
        for (i, active) in set.iter().enumerate() {
            if !active {
                continue;
            }
            for (pred, to) in &self.states[i].trans {
                if !next[*to] && pred.matches(c) {
                    self.activate(next, *to);
                }
            }
        }
    }

    /// Does the NFA accept `s`? This is the paper's `s ↦ P` relation.
    pub fn matches(&self, s: &str) -> bool {
        let mut cur = vec![false; self.states.len()];
        self.activate(&mut cur, self.start);
        let mut next = vec![false; self.states.len()];
        for c in s.chars() {
            self.step(&cur, c, &mut next);
            std::mem::swap(&mut cur, &mut next);
            if cur.iter().all(|&b| !b) {
                return false;
            }
        }
        cur[self.accept]
    }

    /// For each char-boundary prefix of `s` (including the empty prefix and
    /// the full string), whether the NFA accepts that prefix. The result has
    /// `s.chars().count() + 1` entries. Used by constrained-pattern
    /// extraction.
    pub fn prefix_acceptance(&self, s: &str) -> Vec<bool> {
        let mut out = Vec::with_capacity(s.len() + 1);
        let mut cur = vec![false; self.states.len()];
        self.activate(&mut cur, self.start);
        out.push(cur[self.accept]);
        let mut next = vec![false; self.states.len()];
        for c in s.chars() {
            self.step(&cur, c, &mut next);
            std::mem::swap(&mut cur, &mut next);
            out.push(cur[self.accept]);
        }
        out
    }

    /// Number of states (for tests and complexity assertions).
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    pub(crate) fn start_state(&self) -> usize {
        self.start
    }

    pub(crate) fn accept_state(&self) -> usize {
        self.accept
    }

    pub(crate) fn eps_of(&self, s: usize) -> &[usize] {
        &self.states[s].eps
    }

    pub(crate) fn trans_of(&self, s: usize) -> &[(CharPred, usize)] {
        &self.states[s].trans
    }

    /// All character predicates appearing on transitions.
    pub(crate) fn all_preds(&self) -> impl Iterator<Item = &CharPred> {
        self.states
            .iter()
            .flat_map(|s| s.trans.iter().map(|(p, _)| p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_pattern;

    fn nfa(src: &str) -> Nfa {
        Nfa::compile(&parse_pattern(src).unwrap())
    }

    #[test]
    fn constant_match() {
        let n = nfa("900");
        assert!(n.matches("900"));
        assert!(!n.matches("90"));
        assert!(!n.matches("9000"));
        assert!(!n.matches(""));
    }

    #[test]
    fn digit_repeat() {
        // The paper's example: 90001 ↦ \D{5}.
        let n = nfa(r"\D{5}");
        assert!(n.matches("90001"));
        assert!(!n.matches("9000"));
        assert!(!n.matches("900012"));
        assert!(!n.matches("9000a"));
    }

    #[test]
    fn zip_prefix_pattern() {
        // λ3: 900\D{2}
        let n = nfa(r"900\D{2}");
        assert!(n.matches("90001"));
        assert!(n.matches("90099"));
        assert!(!n.matches("90100"));
        assert!(!n.matches("900"));
    }

    #[test]
    fn any_string() {
        let n = nfa(r"\A*");
        assert!(n.matches(""));
        assert!(n.matches("anything at all, 123!"));
    }

    #[test]
    fn name_pattern() {
        // λ4: \LU\LL*\ \A*
        let n = nfa(r"\LU\LL*\ \A*");
        assert!(n.matches("John Charles"));
        assert!(n.matches("Susan Boyle"));
        assert!(n.matches("J x"));
        assert!(!n.matches("john Charles"), "must start upper case");
        assert!(!n.matches("John"), "needs the space");
    }

    #[test]
    fn plus_requires_one() {
        let n = nfa(r"\D+");
        assert!(!n.matches(""));
        assert!(n.matches("1"));
        assert!(n.matches("1234567890"));
        assert!(!n.matches("12a"));
    }

    #[test]
    fn star_allows_zero() {
        let n = nfa(r"a*b");
        assert!(n.matches("b"));
        assert!(n.matches("aaab"));
        assert!(!n.matches("a"));
    }

    #[test]
    fn group_repetition() {
        let n = nfa(r"(ab){2}c");
        assert!(n.matches("ababc"));
        assert!(!n.matches("abc"));
        assert!(!n.matches("abababc"));
    }

    #[test]
    fn group_star() {
        let n = nfa(r"(ab)*");
        assert!(n.matches(""));
        assert!(n.matches("ab"));
        assert!(n.matches("abab"));
        assert!(!n.matches("aba"));
    }

    #[test]
    fn conjunction_transition() {
        let n = nfa(r"\LU&J\LL*");
        assert!(n.matches("John"));
        assert!(!n.matches("Kohn"));
    }

    #[test]
    fn empty_pattern_matches_only_empty() {
        let n = Nfa::compile(&Pattern::empty());
        assert!(n.matches(""));
        assert!(!n.matches("a"));
    }

    #[test]
    fn prefix_acceptance_tracks_boundaries() {
        let n = nfa(r"\D*");
        let acc = n.prefix_acceptance("12a");
        // prefixes: "", "1", "12", "12a"
        assert_eq!(acc, vec![true, true, true, false]);
    }

    #[test]
    fn prefix_acceptance_constant() {
        let n = nfa("ab");
        assert_eq!(n.prefix_acceptance("ab"), vec![false, false, true]);
    }

    #[test]
    fn state_count_linear_in_repetition() {
        let small = nfa(r"\D{2}");
        let large = nfa(r"\D{20}");
        assert!(large.num_states() > small.num_states());
        assert!(large.num_states() <= small.num_states() + 18 + 2);
    }

    #[test]
    fn unicode_values() {
        let n = nfa(r"\LU\LL*");
        assert!(n.matches("Éric"));
        assert!(n.matches("Ökonom"));
    }
}
