//! Parser for the paper's concrete pattern syntax.
//!
//! Grammar (close to the notation used throughout the paper):
//!
//! ```text
//! pattern     := element*
//! element     := conjunction quantifier?
//! conjunction := atom ('&' atom)*
//! atom        := class | literal | '(' pattern ')'
//! class       := '\A' | '\LU' | '\LL' | '\D' | '\S'
//! literal     := any unescaped char except \ { } * + ( ) [ ] &
//!              | '\' any char          (escaped literal, e.g. '\ ' for space)
//! quantifier  := '{' digits '}' | '*' | '+'
//! ```
//!
//! Constrained patterns (the overlined `Q̄` of §2.1) mark the constrained
//! segment with square brackets, our ASCII rendering of the overline:
//!
//! ```text
//! [Susan\ ]\A*        — λ2: constant first name, anything after
//! [\LU\LL*\ ]\A*      — λ4: variable first name
//! [\D{3}]\D{2}        — λ5: first three digits of a 5-digit zip
//! [900]\D{2}          — λ3: constant zip prefix
//! M                   — no brackets: the whole pattern is constrained
//! ```

use crate::ast::{Atom, Element, Pattern, PatternError, Quant};
use crate::class::CharClass;
use crate::constrained::ConstrainedPattern;
use std::fmt;

/// Errors produced while parsing pattern text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Unexpected end of input (dangling escape, unclosed group/brace).
    UnexpectedEnd,
    /// A character that cannot start an atom at this position.
    UnexpectedChar {
        /// Byte offset of the offending character.
        pos: usize,
        /// The character found.
        ch: char,
    },
    /// `{}` with no digits or a number that does not fit in u32.
    BadRepetition {
        /// Byte offset of the `{`.
        pos: usize,
    },
    /// Unbalanced `)`.
    UnbalancedParen {
        /// Byte offset of the `)`.
        pos: usize,
    },
    /// More than one `[...]` constrained segment, or nested/unbalanced ones.
    BadConstrainedMarker {
        /// Byte offset of the marker.
        pos: usize,
    },
    /// The parsed pattern violates the §2.1 restrictions.
    Invalid(PatternError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::UnexpectedEnd => write!(f, "unexpected end of pattern"),
            ParseError::UnexpectedChar { pos, ch } => {
                write!(f, "unexpected character {ch:?} at byte {pos}")
            }
            ParseError::BadRepetition { pos } => write!(f, "bad repetition count at byte {pos}"),
            ParseError::UnbalancedParen { pos } => write!(f, "unbalanced ')' at byte {pos}"),
            ParseError::BadConstrainedMarker { pos } => {
                write!(f, "bad '[...]' constrained marker at byte {pos}")
            }
            ParseError::Invalid(e) => write!(f, "invalid pattern: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<PatternError> for ParseError {
    fn from(e: PatternError) -> Self {
        ParseError::Invalid(e)
    }
}

struct Parser<'a> {
    chars: Vec<(usize, char)>,
    idx: usize,
    src: &'a str,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            chars: src.char_indices().collect(),
            idx: 0,
            src,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.idx).map(|&(_, c)| c)
    }

    fn pos(&self) -> usize {
        self.chars
            .get(self.idx)
            .map(|&(p, _)| p)
            .unwrap_or(self.src.len())
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.idx += 1;
        Some(c)
    }

    fn expect(&mut self, c: char) -> Result<(), ParseError> {
        match self.bump() {
            Some(got) if got == c => Ok(()),
            Some(got) => Err(ParseError::UnexpectedChar {
                pos: self.pos(),
                ch: got,
            }),
            None => Err(ParseError::UnexpectedEnd),
        }
    }

    /// Parse an escape sequence after the backslash has been consumed.
    fn parse_escape(&mut self) -> Result<Atom, ParseError> {
        let c = self.bump().ok_or(ParseError::UnexpectedEnd)?;
        match c {
            'A' => Ok(Atom::Class(CharClass::Any)),
            'D' => Ok(Atom::Class(CharClass::Digit)),
            'S' => Ok(Atom::Class(CharClass::Symbol)),
            'L' => match self.bump() {
                Some('U') => Ok(Atom::Class(CharClass::Upper)),
                Some('L') => Ok(Atom::Class(CharClass::Lower)),
                // `\L` followed by something else: treat 'L' as literal and
                // leave the next char for the main loop.
                Some(_) => {
                    self.idx -= 1;
                    Ok(Atom::Literal('L'))
                }
                None => Ok(Atom::Literal('L')),
            },
            other => Ok(Atom::Literal(other)),
        }
    }

    fn parse_atom(&mut self, stop: &[char]) -> Result<Atom, ParseError> {
        let pos = self.pos();
        let c = self.bump().ok_or(ParseError::UnexpectedEnd)?;
        match c {
            '\\' => {
                self.idx -= 1;
                self.expect('\\')?;
                self.parse_escape()
            }
            '(' => {
                let inner = self.parse_sequence(&[')'])?;
                self.expect(')')?;
                Ok(Atom::Group(inner))
            }
            ')' => Err(ParseError::UnbalancedParen { pos }),
            '{' | '}' | '*' | '+' | '&' => Err(ParseError::UnexpectedChar { pos, ch: c }),
            _ if stop.contains(&c) => Err(ParseError::UnexpectedChar { pos, ch: c }),
            _ => Ok(Atom::Literal(c)),
        }
    }

    fn parse_quant(&mut self) -> Result<Quant, ParseError> {
        match self.peek() {
            Some('*') => {
                self.bump();
                Ok(Quant::Star)
            }
            Some('+') => {
                self.bump();
                Ok(Quant::Plus)
            }
            Some('{') => {
                let pos = self.pos();
                self.bump();
                let mut digits = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        digits.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.expect('}')?;
                let n: u32 = digits
                    .parse()
                    .map_err(|_| ParseError::BadRepetition { pos })?;
                if n == 0 {
                    return Err(ParseError::Invalid(PatternError::ZeroRepetition));
                }
                Ok(if n == 1 {
                    Quant::One
                } else {
                    Quant::Exactly(n)
                })
            }
            _ => Ok(Quant::One),
        }
    }

    fn parse_element(&mut self, stop: &[char]) -> Result<Element, ParseError> {
        let mut atom = self.parse_atom(stop)?;
        while self.peek() == Some('&') {
            self.bump();
            let rhs = self.parse_atom(stop)?;
            atom = Atom::And(Box::new(atom), Box::new(rhs));
        }
        let quant = self.parse_quant()?;
        Ok(Element::new(atom, quant))
    }

    fn parse_sequence(&mut self, stop: &[char]) -> Result<Vec<Element>, ParseError> {
        let mut out = Vec::new();
        while let Some(c) = self.peek() {
            if stop.contains(&c) {
                break;
            }
            out.push(self.parse_element(stop)?);
        }
        Ok(out)
    }
}

/// Parse a plain pattern (no `[...]` constrained markers).
pub fn parse_pattern(src: &str) -> Result<Pattern, ParseError> {
    let mut p = Parser::new(src);
    let elements = p.parse_sequence(&['[', ']'])?;
    if let Some(c) = p.peek() {
        return Err(ParseError::UnexpectedChar {
            pos: p.pos(),
            ch: c,
        });
    }
    Ok(Pattern::new(elements)?)
}

/// Parse a constrained pattern: `pre [ q ] post`, where the bracketed
/// segment is the constrained part. With no brackets the entire pattern is
/// constrained (the common case for constants such as `M`).
pub fn parse_constrained(src: &str) -> Result<ConstrainedPattern, ParseError> {
    let mut p = Parser::new(src);
    let pre = p.parse_sequence(&['[', ']'])?;
    match p.peek() {
        None => {
            // No marker: the whole pattern is the constrained part.
            let q = Pattern::new(pre)?;
            Ok(ConstrainedPattern::fully_constrained(q))
        }
        Some('[') => {
            p.bump();
            let q = p.parse_sequence(&['[', ']'])?;
            match p.bump() {
                Some(']') => {}
                _ => return Err(ParseError::BadConstrainedMarker { pos: p.pos() }),
            }
            let post = p.parse_sequence(&['[', ']'])?;
            if let Some(c) = p.peek() {
                return Err(ParseError::UnexpectedChar {
                    pos: p.pos(),
                    ch: c,
                });
            }
            Ok(ConstrainedPattern::new(
                Pattern::new(pre)?,
                Pattern::new(q)?,
                Pattern::new(post)?,
            ))
        }
        Some(_) => Err(ParseError::BadConstrainedMarker { pos: p.pos() }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_classes() {
        let p = parse_pattern(r"\A\LU\LL\D\S").unwrap();
        let classes: Vec<_> = p
            .elements()
            .iter()
            .map(|e| match &e.atom {
                Atom::Class(c) => *c,
                other => panic!("expected class, got {other:?}"),
            })
            .collect();
        assert_eq!(
            classes,
            vec![
                CharClass::Any,
                CharClass::Upper,
                CharClass::Lower,
                CharClass::Digit,
                CharClass::Symbol
            ]
        );
    }

    #[test]
    fn parse_paper_name_pattern() {
        // λ4's LHS pattern: \LU\LL*\ \A*
        let p = parse_pattern(r"\LU\LL*\ \A*").unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.elements()[0], Element::class(CharClass::Upper));
        assert_eq!(
            p.elements()[1],
            Element::new(Atom::Class(CharClass::Lower), Quant::Star)
        );
        assert_eq!(p.elements()[2], Element::literal(' '));
        assert_eq!(
            p.elements()[3],
            Element::new(Atom::Class(CharClass::Any), Quant::Star)
        );
    }

    #[test]
    fn parse_zip_pattern() {
        // λ3's LHS pattern: 900\D{2}
        let p = parse_pattern(r"900\D{2}").unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(
            p.elements()[3],
            Element::new(Atom::Class(CharClass::Digit), Quant::Exactly(2))
        );
        assert_eq!(p.min_len(), 5);
        assert_eq!(p.max_len(), Some(5));
    }

    #[test]
    fn parse_literals_and_escapes() {
        let p = parse_pattern(r"a\\b\{c\ d").unwrap();
        let lits: String = p
            .elements()
            .iter()
            .map(|e| match &e.atom {
                Atom::Literal(c) => *c,
                other => panic!("expected literal, got {other:?}"),
            })
            .collect();
        assert_eq!(lits, r"a\b{c d");
    }

    #[test]
    fn parse_group_with_repetition() {
        let p = parse_pattern(r"(ab){3}").unwrap();
        assert_eq!(p.as_constant().as_deref(), Some("ababab"));
    }

    #[test]
    fn parse_conjunction() {
        let p = parse_pattern(r"\LU&A").unwrap();
        assert_eq!(p.len(), 1);
        match &p.elements()[0].atom {
            Atom::And(a, b) => {
                assert_eq!(**a, Atom::Class(CharClass::Upper));
                assert_eq!(**b, Atom::Literal('A'));
            }
            other => panic!("expected conjunction, got {other:?}"),
        }
    }

    #[test]
    fn reject_recursive() {
        let err = parse_pattern(r"(a+)*").unwrap_err();
        assert_eq!(err, ParseError::Invalid(PatternError::RecursivePattern));
    }

    #[test]
    fn reject_zero_repetition() {
        let err = parse_pattern(r"a{0}").unwrap_err();
        assert_eq!(err, ParseError::Invalid(PatternError::ZeroRepetition));
    }

    #[test]
    fn reject_dangling_quantifier() {
        assert!(matches!(
            parse_pattern("*abc"),
            Err(ParseError::UnexpectedChar { .. })
        ));
    }

    #[test]
    fn reject_unbalanced_paren() {
        assert!(parse_pattern("(ab").is_err());
        assert!(matches!(
            parse_pattern("ab)"),
            Err(ParseError::UnbalancedParen { .. })
        ));
    }

    #[test]
    fn reject_empty_braces() {
        assert!(matches!(
            parse_pattern("a{}"),
            Err(ParseError::BadRepetition { .. })
        ));
    }

    #[test]
    fn parse_constrained_with_marker() {
        // λ2: [Susan\ ]\A*
        let cp = parse_constrained(r"[Susan\ ]\A*").unwrap();
        assert_eq!(cp.constrained().as_constant().as_deref(), Some("Susan "));
        assert!(cp.prefix().is_empty());
        assert!(!cp.suffix().is_empty());
    }

    #[test]
    fn parse_constrained_without_marker_is_fully_constrained() {
        let cp = parse_constrained("M").unwrap();
        assert_eq!(cp.constrained().as_constant().as_deref(), Some("M"));
        assert!(cp.prefix().is_empty());
        assert!(cp.suffix().is_empty());
    }

    #[test]
    fn parse_constrained_infix_marker() {
        // pre [q] post with all three segments non-empty.
        let cp = parse_constrained(r"\A*[\D{3}]\D{2}").unwrap();
        assert_eq!(cp.prefix().len(), 1);
        assert_eq!(cp.constrained().min_len(), 3);
        assert_eq!(cp.suffix().min_len(), 2);
    }

    #[test]
    fn reject_two_markers() {
        assert!(parse_constrained(r"[a]b[c]").is_err());
    }

    #[test]
    fn reject_unclosed_marker() {
        assert!(parse_constrained(r"[abc").is_err());
        assert!(parse_constrained(r"abc]").is_err());
    }

    #[test]
    fn escaped_bracket_is_literal() {
        let p = parse_pattern(r"\[a\]").unwrap();
        assert_eq!(p.as_constant().as_deref(), Some("[a]"));
    }
}
