//! Pattern inference: least-general generalization of a set of values over
//! the generalization tree.
//!
//! This powers the `Generalize` step of the discovery algorithm (§4.3): given
//! the constant constrained patterns of a set of PFDs — e.g. the first-name
//! tokens `{Tayseer, Noor, Esmat}` — find "a general form that can represent
//! all of them", here `\LU\LL*`. It also underpins the Table 4/5 intuition:
//! the latent knowledge that `n~ame` tokens share a shape.

use crate::ast::{Atom, Element, Pattern, Quant};
use crate::class::CharClass;

/// The shape of a string: maximal runs of same-class characters, e.g.
/// `John` ⇒ `[(Upper, 1), (Lower, 3)]` and `90001` ⇒ `[(Digit, 5)]`.
///
/// Symbols are kept as literal runs (`(lit, n)`) because separator symbols
/// almost always carry exact semantics (the `-` in `F-9-107`, the space in a
/// full name); letter/digit runs generalize to their class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeRun {
    /// A run of `n ≥ 1` characters of a base class.
    Class(CharClass, u32),
    /// A run of one exact symbol character, length `n`.
    Literal(char, u32),
}

impl ShapeRun {
    /// The base class of the run (a literal symbol run reports `Symbol`).
    pub fn class(&self) -> CharClass {
        match self {
            ShapeRun::Class(c, _) => *c,
            ShapeRun::Literal(c, _) => CharClass::of_char(*c),
        }
    }

    /// The run length in characters (always ≥ 1).
    pub fn len(&self) -> u32 {
        match self {
            ShapeRun::Class(_, n) | ShapeRun::Literal(_, n) => *n,
        }
    }

    /// Runs are never empty; provided to satisfy the `len`/`is_empty` pair.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Compute the shape of a string. Empty strings have an empty shape.
pub fn shape_of(s: &str) -> Vec<ShapeRun> {
    let mut runs: Vec<ShapeRun> = Vec::new();
    for c in s.chars() {
        let class = CharClass::of_char(c);
        let next = if class == CharClass::Symbol {
            ShapeRun::Literal(c, 1)
        } else {
            ShapeRun::Class(class, 1)
        };
        match (runs.last_mut(), next) {
            (Some(ShapeRun::Class(rc, n)), ShapeRun::Class(c2, _)) if *rc == c2 => *n += 1,
            (Some(ShapeRun::Literal(rc, n)), ShapeRun::Literal(c2, _)) if *rc == c2 => *n += 1,
            (_, next) => runs.push(next),
        }
    }
    runs
}

/// A generalized run: a class plus a length range (max `None` = unbounded —
/// only produced when lengths differ and we widen to `+`/`*`).
#[derive(Debug, Clone, PartialEq, Eq)]
struct GenRun {
    atom: GenAtom,
    min: u32,
    max: Option<u32>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum GenAtom {
    Class(CharClass),
    Literal(char),
}

impl GenRun {
    fn from_shape(run: &ShapeRun) -> GenRun {
        match run {
            ShapeRun::Class(c, n) => GenRun {
                atom: GenAtom::Class(*c),
                min: *n,
                max: Some(*n),
            },
            ShapeRun::Literal(c, n) => GenRun {
                atom: GenAtom::Literal(*c),
                min: *n,
                max: Some(*n),
            },
        }
    }

    fn merge_lengths(&mut self, other_min: u32, other_max: Option<u32>) {
        self.min = self.min.min(other_min);
        self.max = match (self.max, other_max) {
            (Some(a), Some(b)) if a == b => Some(a),
            _ => None,
        };
    }

    fn merge_atom(&mut self, other: &GenAtom) {
        let merged = match (&self.atom, other) {
            (GenAtom::Literal(a), GenAtom::Literal(b)) if a == b => GenAtom::Literal(*a),
            (a, b) => {
                let ca = match a {
                    GenAtom::Class(c) => *c,
                    GenAtom::Literal(c) => CharClass::of_char(*c),
                };
                let cb = match b {
                    GenAtom::Class(c) => *c,
                    GenAtom::Literal(c) => CharClass::of_char(*c),
                };
                GenAtom::Class(ca.lub(cb))
            }
        };
        self.atom = merged;
    }

    fn to_element(&self) -> Element {
        let atom = match &self.atom {
            GenAtom::Class(c) => Atom::Class(*c),
            GenAtom::Literal(c) => Atom::Literal(*c),
        };
        let quant = match (self.min, self.max) {
            (1, Some(1)) => Quant::One,
            (n, Some(m)) if n == m => Quant::Exactly(n),
            (0, None) => Quant::Star,
            (_, None) => Quant::Plus,
            // A bounded-but-unequal range has no exact quantifier in the
            // paper's language; widen to `+` (or `*` when min can be 0).
            (0, Some(_)) => Quant::Star,
            (_, Some(_)) => Quant::Plus,
        };
        Element::new(atom, quant)
    }
}

/// Merge two generalized run sequences. When the sequences have the same
/// length, runs merge positionally. Otherwise we fall back to the coarsest
/// shape `\A*` for the mismatched region (a deliberate, conservative choice:
/// the discovery algorithm only promotes a generalization when it then
/// re-verifies it on the data, §4.3).
fn merge_runs(a: &[GenRun], b: &[GenRun]) -> Vec<GenRun> {
    if a.len() == b.len() {
        let mut out = Vec::with_capacity(a.len());
        for (ra, rb) in a.iter().zip(b) {
            let mut m = ra.clone();
            m.merge_atom(&rb.atom);
            m.merge_lengths(rb.min, rb.max);
            out.push(m);
        }
        return out;
    }
    // Align common prefix and suffix of equal atoms; wildcard the middle.
    let mut prefix = 0;
    while prefix < a.len() && prefix < b.len() && a[prefix].atom == b[prefix].atom {
        prefix += 1;
    }
    let mut suffix = 0;
    while suffix < a.len() - prefix
        && suffix < b.len() - prefix
        && a[a.len() - 1 - suffix].atom == b[b.len() - 1 - suffix].atom
    {
        suffix += 1;
    }
    let mut out = Vec::new();
    for i in 0..prefix {
        let mut m = a[i].clone();
        m.merge_lengths(b[i].min, b[i].max);
        out.push(m);
    }
    let a_mid = &a[prefix..a.len() - suffix];
    let b_mid = &b[prefix..b.len() - suffix];
    if !a_mid.is_empty() || !b_mid.is_empty() {
        let min: u32 = a_mid
            .iter()
            .map(|r| r.min)
            .sum::<u32>()
            .min(b_mid.iter().map(|r| r.min).sum());
        out.push(GenRun {
            atom: GenAtom::Class(CharClass::Any),
            min: min.min(1),
            max: None,
        });
    }
    for i in 0..suffix {
        let ia = a.len() - suffix + i;
        let ib = b.len() - suffix + i;
        let mut m = a[ia].clone();
        m.merge_lengths(b[ib].min, b[ib].max);
        out.push(m);
    }
    out
}

/// Infer the least-general pattern (within this module's shape language)
/// matching every value in `values`.
///
/// Returns `None` for an empty input. Examples:
/// - `{John, Susan}` ⇒ `\LU\LL+`
/// - `{90001, 90002}` ⇒ `\D{5}`
/// - `{F-9-107, F-9-2}` ⇒ `\LU-\D-\D+`
pub fn infer_pattern<S: AsRef<str>>(values: &[S]) -> Option<Pattern> {
    let mut iter = values.iter();
    let first = iter.next()?;
    let mut acc: Vec<GenRun> = shape_of(first.as_ref())
        .iter()
        .map(GenRun::from_shape)
        .collect();
    for v in iter {
        let runs: Vec<GenRun> = shape_of(v.as_ref())
            .iter()
            .map(GenRun::from_shape)
            .collect();
        acc = merge_runs(&acc, &runs);
    }
    let elements = acc.iter().map(GenRun::to_element).collect();
    Some(Pattern::from_elements_unchecked(elements))
}

/// Infer a pattern and verify it against every input value (the inference is
/// designed to be sound, this is a debug-friendly belt-and-braces variant
/// used by discovery).
pub fn infer_verified<S: AsRef<str>>(values: &[S]) -> Option<Pattern> {
    let p = infer_pattern(values)?;
    let nfa = crate::nfa::Nfa::compile(&p);
    if values.iter().all(|v| nfa.matches(v.as_ref())) {
        Some(p)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::Nfa;

    fn assert_matches_all(p: &Pattern, values: &[&str]) {
        let nfa = Nfa::compile(p);
        for v in values {
            assert!(nfa.matches(v), "pattern {p} must match {v:?}");
        }
    }

    #[test]
    fn shape_of_name() {
        assert_eq!(
            shape_of("John"),
            vec![
                ShapeRun::Class(CharClass::Upper, 1),
                ShapeRun::Class(CharClass::Lower, 3)
            ]
        );
    }

    #[test]
    fn shape_of_id() {
        assert_eq!(
            shape_of("F-9-107"),
            vec![
                ShapeRun::Class(CharClass::Upper, 1),
                ShapeRun::Literal('-', 1),
                ShapeRun::Class(CharClass::Digit, 1),
                ShapeRun::Literal('-', 1),
                ShapeRun::Class(CharClass::Digit, 3),
            ]
        );
    }

    #[test]
    fn shape_of_empty() {
        assert_eq!(shape_of(""), vec![]);
    }

    #[test]
    fn infer_first_names() {
        // The running example of §4.3: {Tayseer, Noor, Esmat} ⇒ \LU\LL+
        // ("a single uppercase letter followed by any number of lowercase").
        let p = infer_pattern(&["Tayseer", "Noor", "Esmat"]).unwrap();
        assert_eq!(p.to_string(), r"\LU\LL+");
        assert_matches_all(&p, &["Tayseer", "Noor", "Esmat", "John"]);
    }

    #[test]
    fn infer_equal_lengths_keeps_exact_count() {
        let p = infer_pattern(&["90001", "90002", "95603"]).unwrap();
        assert_eq!(p.to_string(), r"\D{5}");
    }

    #[test]
    fn infer_single_value_keeps_shape() {
        let p = infer_pattern(&["90001"]).unwrap();
        assert_eq!(p.to_string(), r"\D{5}");
    }

    #[test]
    fn infer_ids_with_separators() {
        let p = infer_pattern(&["F-9-107", "F-9-2", "F-9-33"]).unwrap();
        assert_matches_all(&p, &["F-9-107", "F-9-2", "F-9-33"]);
        // Separator dashes survive as literals.
        assert!(p.to_string().contains('-'), "{p}");
    }

    #[test]
    fn infer_mixed_case_generalizes_class() {
        let p = infer_pattern(&["ABC", "abc"]).unwrap();
        assert_matches_all(&p, &["ABC", "abc", "AbC"]);
    }

    #[test]
    fn infer_mismatched_structure_falls_back_to_any() {
        let p = infer_pattern(&["John Smith", "90210"]).unwrap();
        assert_matches_all(&p, &["John Smith", "90210", "anything"]);
    }

    #[test]
    fn infer_common_prefix_suffix_preserved() {
        let p = infer_pattern(&["ID-123-X", "ID-4-X"]).unwrap();
        assert_matches_all(&p, &["ID-123-X", "ID-4-X"]);
        let s = p.to_string();
        assert!(s.starts_with("ID-") || s.starts_with(r"\LU{2}-"), "{s}");
    }

    #[test]
    fn infer_empty_input() {
        assert!(infer_pattern::<&str>(&[]).is_none());
    }

    #[test]
    fn infer_includes_empty_string() {
        let p = infer_pattern(&["abc", ""]).unwrap();
        assert_matches_all(&p, &["abc", ""]);
    }

    #[test]
    fn infer_verified_agrees() {
        let values = ["Tayseer", "Noor", "Esmat", "Qadhi"];
        let p = infer_verified(&values).unwrap();
        assert_matches_all(&p, &values);
    }

    #[test]
    fn inferred_pattern_is_contained_in_any_string() {
        let p = infer_pattern(&["a1", "b22", "c333"]).unwrap();
        assert!(crate::contains::subset_of(&p, &Pattern::any_string()));
    }
}
