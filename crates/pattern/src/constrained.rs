//! Constrained patterns (§2.1).
//!
//! A constrained pattern is a pattern `P = pre · Q · post` with a marked
//! sub-pattern `Q` (the paper writes `Q̄` with an overline; we bracket it as
//! `pre[Q]post`). Two strings `s, s'` are **equivalent w.r.t. Q**, written
//! `s ≡_Q s'`, when the portions of `s` and `s'` matching `Q` are exactly
//! the same string.
//!
//! Following the paper, we limit constrained patterns to a single constrained
//! part ("more than one constrained part is not common in practice", §2.1).

use crate::ast::Pattern;
use crate::contains::subset_of;
use crate::nfa::Nfa;
use crate::parse::{parse_constrained, ParseError};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// A pattern with one marked (constrained) segment: `pre [Q] post`.
///
/// The compiled NFAs are cached lazily behind an `Arc`, so matching a value
/// against the same tableau cell many times — the hot path of both
/// violation detection and discovery — compiles each segment once, and
/// clones (tableau rows are cloned freely during discovery, rule merging
/// and repair) *share* the cache instead of recompiling per copy.
#[derive(Default, Clone)]
pub struct ConstrainedPattern {
    pre: Pattern,
    q: Pattern,
    post: Pattern,
    compiled: Arc<OnceLock<CompiledSegments>>,
}

struct CompiledSegments {
    pre: Nfa,
    q: Nfa,
    post: Nfa,
    full: Nfa,
    /// When the whole pattern is one constant string, matching is equality
    /// and extraction is a fixed slice: `(value, pre byte len, q byte len)`.
    /// Constant cells dominate real tableaux (ψ1/ψ3 and every discovered
    /// constant row), so this skips the NFA entirely on the hottest path.
    full_const: Option<(String, usize, usize)>,
    /// `pre = ε`: the only valid decomposition point is offset 0.
    pre_empty: bool,
    /// `post = ε`: the only valid decomposition end is the value's end.
    post_empty: bool,
    /// Char length of `Q` when its language is fixed-length (`\D{3}`, a
    /// constant, …): the decomposition split is then forced.
    q_fixed: Option<usize>,
    /// Char length of `post` when fixed-length.
    post_fixed: Option<usize>,
}

impl PartialEq for ConstrainedPattern {
    fn eq(&self, other: &Self) -> bool {
        self.pre == other.pre && self.q == other.q && self.post == other.post
    }
}

impl Eq for ConstrainedPattern {}

impl std::hash::Hash for ConstrainedPattern {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.pre.hash(state);
        self.q.hash(state);
        self.post.hash(state);
    }
}

impl fmt::Debug for ConstrainedPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ConstrainedPattern({self})")
    }
}

impl ConstrainedPattern {
    /// Build from the three segments.
    pub fn new(pre: Pattern, q: Pattern, post: Pattern) -> Self {
        ConstrainedPattern {
            pre,
            q,
            post,
            compiled: Arc::new(OnceLock::new()),
        }
    }

    /// A pattern whose *entire* extent is constrained (`pre = post = ε`).
    /// This is how constants such as `M` or `Los Angeles` appear in tableaux.
    pub fn fully_constrained(q: Pattern) -> Self {
        ConstrainedPattern::new(Pattern::empty(), q, Pattern::empty())
    }

    /// A constant constrained pattern matching exactly `s`.
    pub fn constant(s: &str) -> Self {
        ConstrainedPattern::fully_constrained(Pattern::constant(s))
    }

    /// Parse from the concrete syntax, e.g. `[Susan\ ]\A*`.
    pub fn parse(src: &str) -> Result<Self, ParseError> {
        parse_constrained(src)
    }

    /// The unconstrained prefix segment `pre`.
    pub fn prefix(&self) -> &Pattern {
        &self.pre
    }

    /// The constrained segment `Q`.
    pub fn constrained(&self) -> &Pattern {
        &self.q
    }

    /// The unconstrained suffix segment `post`.
    pub fn suffix(&self) -> &Pattern {
        &self.post
    }

    /// The full (embedded) pattern `pre · Q · post`.
    pub fn full_pattern(&self) -> Pattern {
        self.pre.concat(&self.q).concat(&self.post)
    }

    fn compiled(&self) -> &CompiledSegments {
        self.compiled.get_or_init(|| {
            let full_const = match (
                self.pre.as_constant(),
                self.q.as_constant(),
                self.post.as_constant(),
            ) {
                (Some(p), Some(q), Some(s)) => Some((format!("{p}{q}{s}"), p.len(), q.len())),
                _ => None,
            };
            let fixed_len = |p: &Pattern| -> Option<usize> {
                let min = p.min_len();
                (p.max_len() == Some(min)).then_some(min)
            };
            CompiledSegments {
                pre: Nfa::compile(&self.pre),
                q: Nfa::compile(&self.q),
                post: Nfa::compile(&self.post),
                full: Nfa::compile(&self.full_pattern()),
                full_const,
                pre_empty: self.pre.is_empty(),
                post_empty: self.post.is_empty(),
                q_fixed: fixed_len(&self.q),
                post_fixed: fixed_len(&self.post),
            }
        })
    }

    /// Has the NFA cache been populated (by this value or a clone sharing
    /// its cache)? Observability hook for the caching guarantee.
    pub fn is_compiled(&self) -> bool {
        self.compiled.get().is_some()
    }

    /// Does `s` match the full pattern? This is the paper's `s ↦ P`.
    pub fn matches(&self, s: &str) -> bool {
        let segs = self.compiled();
        match &segs.full_const {
            Some((value, _, _)) => crate::simd::eq_bytes(s.as_bytes(), value.as_bytes()),
            None => segs.full.matches(s),
        }
    }

    /// Is the constrained part a constant string? Constant cells make a PFD
    /// applicable to single tuples (§2.2).
    pub fn is_constant(&self) -> bool {
        self.q.is_constant()
    }

    /// The constant constrained part, if it is one.
    pub fn constant_value(&self) -> Option<String> {
        self.q.as_constant()
    }

    /// Total description length (for the small-model bounds of §7).
    pub fn description_len(&self) -> usize {
        self.pre.description_len() + self.q.description_len() + self.post.description_len()
    }

    /// Extract `s(Q)` — the portion of `s` that matches the constrained
    /// segment under the decomposition `s = s_pre · s(Q) · s_post` with
    /// `s_pre ∈ L(pre)`, `s(Q) ∈ L(Q)`, `s_post ∈ L(post)`.
    ///
    /// Decompositions can be ambiguous (e.g. `\A*[\D+]\A*`); we resolve them
    /// deterministically with a *lazy prefix, greedy constrained part* rule:
    /// the shortest valid `s_pre`, and for it the longest valid `s(Q)`. This
    /// matches the paper's usage, where `pre` is almost always empty and `Q`
    /// is a token prefix such as a first name or a zip-code prefix.
    pub fn extract<'s>(&self, s: &'s str) -> Option<&'s str> {
        let segs = self.compiled();
        // All-constant cells: equality plus a fixed slice.
        if let Some((value, pre_len, q_len)) = &segs.full_const {
            return crate::simd::eq_bytes(s.as_bytes(), value.as_bytes())
                .then(|| &s[*pre_len..*pre_len + *q_len]);
        }
        // Fixed-length Q and post with an empty pre (the dominant discovered
        // shape, e.g. `[\D{3}]\D{2}`): the decomposition is forced, so run
        // two small NFA checks instead of the full acceptance tables.
        if segs.pre_empty {
            if let (Some(ql), Some(pl)) = (segs.q_fixed, segs.post_fixed) {
                let mut chars = 0usize;
                let mut split = None;
                for (i, (b, _)) in s.char_indices().enumerate() {
                    if i == ql {
                        split = Some(b);
                    }
                    chars = i + 1;
                }
                if chars != ql + pl {
                    return None;
                }
                let split = split.unwrap_or(s.len());
                return (segs.q.matches(&s[..split]) && segs.post.matches(&s[split..]))
                    .then(|| &s[..split]);
            }
        }
        // Byte offsets of char boundaries, aligned with prefix_acceptance.
        let boundaries: Vec<usize> = s
            .char_indices()
            .map(|(i, _)| i)
            .chain(std::iter::once(s.len()))
            .collect();
        // post_ok[j] = post matches s[boundaries[j]..]; an empty post only
        // accepts the empty suffix, so skip the per-boundary NFA runs.
        let n = boundaries.len();
        let mut post_ok = vec![false; n];
        if segs.post_empty {
            post_ok[n - 1] = true;
        } else {
            for j in 0..n {
                post_ok[j] = segs.post.matches(&s[boundaries[j]..]);
            }
        }
        let try_from = |i: usize| -> Option<&'s str> {
            let rest = &s[boundaries[i]..];
            let q_acc = segs.q.prefix_acceptance(rest);
            // Greedy: longest q match first.
            for j in (i..n).rev() {
                if q_acc[j - i] && post_ok[j] {
                    return Some(&s[boundaries[i]..boundaries[j]]);
                }
            }
            None
        };
        // An empty pre pins the decomposition to offset 0 — the common case
        // for discovered cells (zip prefixes, first tokens, constants).
        if segs.pre_empty {
            return try_from(0);
        }
        let pre_ok = segs.pre.prefix_acceptance(s);
        for (i, &pre_hit) in pre_ok.iter().enumerate() {
            if !pre_hit {
                continue;
            }
            if let Some(found) = try_from(i) {
                return Some(found);
            }
        }
        None
    }

    /// The paper's `s ≡_Q s'`: both strings match and the portions matching
    /// the constrained part are string-equal.
    pub fn equivalent(&self, s1: &str, s2: &str) -> bool {
        match (self.extract(s1), self.extract(s2)) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }

    /// Restriction check `self ⊆ other` (§2.1): `self` is a *restricted*
    /// pattern of `other` when `s ≡_self s'` implies `s ≡_other s'` for all
    /// strings.
    ///
    /// The general problem is semantic; we decide a sound, efficiently
    /// checkable sufficient condition that covers the paper's use cases
    /// (Examples 3 & 4, the closure algorithm of Fig. 7): segment-wise
    /// language containment `pre ⊆ pre'`, `Q ⊆ Q'`, `post ⊆ post'`. Under
    /// the lazy-prefix/greedy-Q decomposition this forces the extractions to
    /// coincide on the strings where both match.
    pub fn is_restriction_of(&self, other: &ConstrainedPattern) -> bool {
        if self == other {
            return true;
        }
        // A wildcard-like `other` with Q = \A* and empty pre/post contains
        // everything trivially at the full-pattern level; require the segment
        // conditions to keep the check sound for extraction equality.
        subset_of(&self.pre, &other.pre)
            && subset_of(&self.q, &other.q)
            && subset_of(&self.post, &other.post)
    }

    /// Generalization is the converse of restriction.
    pub fn is_generalization_of(&self, other: &ConstrainedPattern) -> bool {
        other.is_restriction_of(self)
    }
}

impl fmt::Display for ConstrainedPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.pre.is_empty() && self.post.is_empty() {
            write!(f, "{}", self.q)
        } else {
            write!(f, "{}[{}]{}", self.pre, self.q, self.post)
        }
    }
}

impl std::str::FromStr for ConstrainedPattern {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ConstrainedPattern::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cp(src: &str) -> ConstrainedPattern {
        ConstrainedPattern::parse(src).unwrap()
    }

    #[test]
    fn example3_first_name_equivalence() {
        // Q = \LU\LL*\ \A* with the first-name part constrained.
        let q = cp(r"[\LU\LL*\ ]\A*");
        assert!(q.matches("John Charles"));
        assert!(q.matches("John Bosco"));
        assert_eq!(q.extract("John Charles"), Some("John "));
        assert_eq!(q.extract("John Bosco"), Some("John "));
        assert!(q.equivalent("John Charles", "John Bosco"));
        assert!(!q.equivalent("John Charles", "Susan Orlean"));
    }

    #[test]
    fn zip_prefix_extraction() {
        // λ5: [\D{3}]\D{2}
        let q = cp(r"[\D{3}]\D{2}");
        assert_eq!(q.extract("90001"), Some("900"));
        assert_eq!(q.extract("90210"), Some("902"));
        assert!(q.equivalent("90001", "90002"));
        assert!(!q.equivalent("90001", "90210"));
        assert_eq!(q.extract("9000"), None, "needs exactly five digits");
    }

    #[test]
    fn constant_constrained_part() {
        // λ2: [Susan\ ]\A*
        let q = cp(r"[Susan\ ]\A*");
        assert!(q.is_constant());
        assert_eq!(q.constant_value().as_deref(), Some("Susan "));
        assert!(q.matches("Susan Boyle"));
        assert!(!q.matches("John Charles"));
        assert!(q.equivalent("Susan Boyle", "Susan Orlean"));
    }

    #[test]
    fn fully_constrained_constant() {
        let q = ConstrainedPattern::constant("M");
        assert!(q.matches("M"));
        assert!(!q.matches("F"));
        assert_eq!(q.extract("M"), Some("M"));
        assert!(q.equivalent("M", "M"));
    }

    #[test]
    fn greedy_q_lazy_pre() {
        // \A*[\D+]: the constrained digits are matched greedily from the
        // first decomposition point, i.e. the whole digit tail.
        let q = cp(r"[\D+]\A*");
        assert_eq!(q.extract("123abc"), Some("123"));
        // With a lazy prefix, the first valid split point wins.
        let q2 = cp(r"\A*[x\D+]");
        assert_eq!(q2.extract("ax12"), Some("x12"));
    }

    #[test]
    fn no_match_no_extraction() {
        let q = cp(r"[900]\D{2}");
        assert_eq!(q.extract("91001"), None);
        assert!(!q.equivalent("91001", "91002"));
    }

    #[test]
    fn restriction_examples_from_paper() {
        // Example 4: \D{5} ⊆ \D* (both fully constrained).
        let five = cp(r"\D{5}");
        let any_digits = cp(r"\D*");
        assert!(five.is_restriction_of(&any_digits));
        assert!(!any_digits.is_restriction_of(&five));
        assert!(any_digits.is_generalization_of(&five));
    }

    #[test]
    fn restriction_with_segments() {
        // [John\ ]\A* is a restriction of [\LU\LL*\ ]\A*.
        let john = cp(r"[John\ ]\A*");
        let first_name = cp(r"[\LU\LL*\ ]\A*");
        assert!(john.is_restriction_of(&first_name));
        assert!(!first_name.is_restriction_of(&john));
    }

    #[test]
    fn restriction_is_reflexive() {
        for src in [r"[900]\D{2}", r"[\LU\LL*\ ]\A*", "M"] {
            let q = cp(src);
            assert!(q.is_restriction_of(&q));
        }
    }

    #[test]
    fn restriction_semantic_property_on_samples() {
        // If a ⊆ b then equivalence under a implies equivalence under b,
        // for all sample string pairs that a relates.
        let a = cp(r"[900]\D{2}");
        let b = cp(r"[\D{3}]\D{2}");
        assert!(a.is_restriction_of(&b));
        let samples = ["90001", "90002", "90099"];
        for s1 in samples {
            for s2 in samples {
                if a.equivalent(s1, s2) {
                    assert!(b.equivalent(s1, s2), "({s1},{s2})");
                }
            }
        }
    }

    #[test]
    fn display_roundtrip() {
        for src in [r"[Susan\ ]\A*", r"[\D{3}]\D{2}", "M", r"[\LU\LL*\ ]\A*"] {
            let q = cp(src);
            let reparsed = cp(&q.to_string());
            assert_eq!(q, reparsed, "{src} → {q} must re-parse identically");
        }
    }

    #[test]
    fn extraction_on_empty_string() {
        let q = cp(r"\A*");
        assert_eq!(q.extract(""), Some(""));
        let c = ConstrainedPattern::constant("x");
        assert_eq!(c.extract(""), None);
    }

    #[test]
    fn clones_share_the_compiled_nfa_cache() {
        let q = cp(r"[\D{3}]\D{2}");
        assert!(!q.is_compiled());
        assert!(q.matches("90001"));
        assert!(q.is_compiled());
        // A clone made *after* first use arrives with the cache warm, and a
        // clone made before first use warms the original when it compiles.
        let warm = q.clone();
        assert!(warm.is_compiled());
        let fresh = ConstrainedPattern::parse(r"[606]\D{2}").unwrap();
        let sibling = fresh.clone();
        assert!(!sibling.is_compiled());
        assert!(sibling.matches("60601"));
        assert!(fresh.is_compiled(), "cache is shared both ways");
    }

    #[test]
    fn unicode_extraction() {
        let q = cp(r"[\LU\LL*\ ]\A*");
        assert_eq!(q.extract("Éric Blanc"), Some("Éric "));
        assert!(q.equivalent("Éric Blanc", "Éric Noir"));
    }
}
