//! Suffix automaton construction — the substring index behind discovery's
//! long-value fragment extraction.
//!
//! A suffix automaton (Blumer et al. 1985) is the minimal DFA recognizing
//! every substring of a string. It has at most `2·len − 1` states and
//! `3·len − 4` transitions, and is built online in `O(len · σ)` — which is
//! what lets the fragment extractor replace the quadratic all-substrings
//! enumeration for long cell values: each automaton state stands for a whole
//! equivalence class of substrings sharing the same occurrence set, so the
//! distinct *repeated* substrings of a value stream out in time linear in
//! the value, not quadratic.
//!
//! The automaton here is built over `char`s (so multi-byte UTF-8 values get
//! character positions, matching the n-gram extractor's position semantics)
//! and tracks, per state, the **end position of the first occurrence** —
//! enough to locate every class representative in the original string
//! without storing occurrence lists. Occurrence *counts* are derived on
//! demand by one pass over the suffix-link tree
//! ([`SuffixAutomaton::occurrence_counts_into`]).
//!
//! This module lives next to [`crate::nfa`] because both are automaton
//! constructions over the same alphabet; the NFA recognizes a *pattern's*
//! language, the suffix automaton recognizes a *value's* substrings.

/// Sentinel for "no suffix link" (only the root has it).
const NO_LINK: u32 = u32::MAX;

#[derive(Debug, Clone, Default)]
struct SamState {
    /// Length of the longest substring in this state's class.
    len: u32,
    /// Suffix link: the state of the longest proper suffix in another class.
    link: u32,
    /// Char index (0-based) of the last character of the first occurrence.
    first_end: u32,
    /// Clone states are structural copies and carry no primary occurrence.
    cloned: bool,
    /// Outgoing transitions. States have few; linear scan beats hashing.
    trans: Vec<(char, u32)>,
}

impl SamState {
    /// Transitions are kept sorted by char: states near the root accumulate
    /// alphabet-sized fan-out and are probed on every link walk, so lookup
    /// is a binary search rather than a linear scan.
    fn get(&self, c: char) -> Option<u32> {
        match self.trans.binary_search_by_key(&c, |&(tc, _)| tc) {
            Ok(i) => Some(self.trans[i].1),
            Err(_) => None,
        }
    }

    fn set(&mut self, c: char, to: u32) {
        match self.trans.binary_search_by_key(&c, |&(tc, _)| tc) {
            Ok(i) => self.trans[i].1 = to,
            Err(i) => self.trans.insert(i, (c, to)),
        }
    }
}

/// One repeated substring of the indexed value: the longest representative
/// of an automaton state whose occurrence count is ≥ 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repeat {
    /// Char index of the first occurrence's start.
    pub first_start: u32,
    /// Length in chars.
    pub len: u32,
    /// Number of (possibly overlapping) occurrences in the value.
    pub count: u32,
}

/// Reusable buffers for [`SuffixAutomaton::occurrence_counts_into`]'s
/// counting sort — kept by the caller so one automaton reused across many
/// values (the extractor's pattern) performs no per-value allocations.
#[derive(Debug, Clone, Default)]
pub struct CountScratch {
    buckets: Vec<u32>,
    order: Vec<u32>,
}

/// An online-built suffix automaton over `char`s.
///
/// ```
/// use pfd_pattern::SuffixAutomaton;
///
/// let sam = SuffixAutomaton::of("abcbc");
/// assert!(sam.contains("bcb".chars()));
/// assert!(!sam.contains("cc".chars()));
/// // "bc" repeats (positions 1 and 3); the automaton reports it once.
/// let counts = sam.occurrence_counts();
/// let repeats: Vec<_> = sam.repeats(&counts, 2).collect();
/// assert_eq!(repeats.len(), 1);
/// assert_eq!((repeats[0].first_start, repeats[0].len, repeats[0].count), (1, 2, 2));
/// ```
#[derive(Debug, Clone)]
pub struct SuffixAutomaton {
    /// State pool: only `states[..live]` are part of the automaton.
    /// [`SuffixAutomaton::reset`] rewinds `live` without dropping the
    /// per-state transition vectors, so a reused automaton allocates
    /// nothing once warm.
    states: Vec<SamState>,
    live: usize,
    last: u32,
}

impl Default for SuffixAutomaton {
    fn default() -> Self {
        SuffixAutomaton::new()
    }
}

impl SuffixAutomaton {
    /// An empty automaton (recognizes only the empty string).
    pub fn new() -> SuffixAutomaton {
        SuffixAutomaton {
            states: vec![SamState {
                link: NO_LINK,
                ..SamState::default()
            }],
            live: 1,
            last: 0,
        }
    }

    /// Build the automaton of a whole string.
    pub fn of(s: &str) -> SuffixAutomaton {
        let mut sam = SuffixAutomaton::new();
        for c in s.chars() {
            sam.extend(c);
        }
        sam
    }

    /// Reset to the empty automaton, keeping every allocation (the state
    /// pool and each pooled state's transition vector) — the extractor
    /// builds one automaton per cell and reuses the value.
    pub fn reset(&mut self) {
        self.live = 1;
        self.states[0].trans.clear();
        self.last = 0;
    }

    /// Take a state from the pool (clearing its recycled transitions) or
    /// grow the pool by one.
    fn alloc_state(&mut self) -> u32 {
        let id = self.live;
        if id < self.states.len() {
            self.states[id].trans.clear();
        } else {
            self.states.push(SamState::default());
        }
        self.live += 1;
        id as u32
    }

    /// Number of automaton states (≤ `2·len − 1`, root included).
    pub fn num_states(&self) -> usize {
        self.live
    }

    /// Number of chars indexed so far.
    pub fn text_len(&self) -> usize {
        self.states[self.last as usize].len as usize
    }

    /// Append one character (the standard online construction step).
    pub fn extend(&mut self, c: char) {
        let cur = self.alloc_state();
        let cur_len = self.states[self.last as usize].len + 1;
        {
            let st = &mut self.states[cur as usize];
            st.len = cur_len;
            st.link = NO_LINK;
            st.first_end = cur_len - 1;
            st.cloned = false;
        }
        let mut p = self.last;
        while p != NO_LINK && self.states[p as usize].get(c).is_none() {
            self.states[p as usize].set(c, cur);
            p = self.states[p as usize].link;
        }
        if p == NO_LINK {
            self.states[cur as usize].link = 0;
        } else {
            let q = self.states[p as usize].get(c).expect("loop exit condition");
            if self.states[q as usize].len == self.states[p as usize].len + 1 {
                self.states[cur as usize].link = q;
            } else {
                // Split q: the clone keeps the shorter substrings of q's
                // class (those also occurring here), q and cur link to it.
                let clone = self.alloc_state();
                {
                    // q was created before the clone, so a split borrow
                    // copies its transitions into the recycled vector.
                    let (head, tail) = self.states.split_at_mut(clone as usize);
                    let q_st = &head[q as usize];
                    let cl = &mut tail[0];
                    cl.len = head[p as usize].len + 1;
                    cl.link = q_st.link;
                    cl.first_end = q_st.first_end;
                    cl.cloned = true;
                    cl.trans.extend_from_slice(&q_st.trans);
                }
                let mut p = p;
                while p != NO_LINK && self.states[p as usize].get(c) == Some(q) {
                    self.states[p as usize].set(c, clone);
                    p = self.states[p as usize].link;
                }
                self.states[q as usize].link = clone;
                self.states[cur as usize].link = clone;
            }
        }
        self.last = cur;
    }

    /// Is `needle` a substring of the indexed value?
    pub fn contains(&self, needle: impl IntoIterator<Item = char>) -> bool {
        let mut state = 0u32;
        for c in needle {
            match self.states[state as usize].get(c) {
                Some(next) => state = next,
                None => return false,
            }
        }
        true
    }

    /// Per-state occurrence counts (endpos-set sizes), computed by one pass
    /// over the suffix-link tree in decreasing `len` order. Both buffers
    /// are caller-owned so a reused automaton reuses the allocations too.
    pub fn occurrence_counts_into(&self, counts: &mut Vec<u32>, scratch: &mut CountScratch) {
        let live = &self.states[..self.live];
        counts.clear();
        counts.resize(live.len(), 0);
        for (i, st) in live.iter().enumerate().skip(1) {
            if !st.cloned {
                counts[i] = 1;
            }
        }
        // Counting sort by len: states in decreasing-len order propagate
        // their counts up the suffix links.
        let buckets = &mut scratch.buckets;
        buckets.clear();
        buckets.resize(self.text_len() + 2, 0);
        for st in live.iter().skip(1) {
            buckets[st.len as usize] += 1;
        }
        for l in 1..buckets.len() {
            buckets[l] += buckets[l - 1];
        }
        let order = &mut scratch.order;
        order.clear();
        order.resize(live.len() - 1, 0);
        for (i, st) in live.iter().enumerate().skip(1) {
            buckets[st.len as usize] -= 1;
            order[buckets[st.len as usize] as usize] = i as u32;
        }
        for &i in order.iter().rev() {
            let link = live[i as usize].link;
            if link != NO_LINK && link != 0 {
                counts[link as usize] += counts[i as usize];
            }
        }
    }

    /// Convenience wrapper allocating the counts buffer.
    pub fn occurrence_counts(&self) -> Vec<u32> {
        let mut counts = Vec::new();
        self.occurrence_counts_into(&mut counts, &mut CountScratch::default());
        counts
    }

    /// The distinct repeated substrings of the value, one per state with
    /// occurrence count ≥ 2 and representative length ≥ `min_len` — the
    /// longest member of each class (shorter members share the same
    /// occurrence set and are subsumed, mirroring §4.4 substring pruning).
    pub fn repeats<'a>(
        &'a self,
        counts: &'a [u32],
        min_len: u32,
    ) -> impl Iterator<Item = Repeat> + 'a {
        self.states[..self.live]
            .iter()
            .enumerate()
            .skip(1)
            .filter(move |(i, st)| counts[*i] >= 2 && st.len >= min_len)
            .map(move |(i, st)| Repeat {
                first_start: st.first_end + 1 - st.len,
                len: st.len,
                count: counts[i],
            })
    }

    /// Enumerate every distinct substring of the value exactly once as
    /// `(first_start, len, count)` — each state contributes the lengths in
    /// `(link.len, state.len]`. Quadratic in the worst case (there can be
    /// Θ(len²) distinct substrings); used by tests to pin the automaton to
    /// the naive enumeration, not by the extraction hot path.
    pub fn for_each_distinct(&self, counts: &[u32], mut f: impl FnMut(u32, u32, u32)) {
        for (i, st) in self.states[..self.live].iter().enumerate().skip(1) {
            let link_len = self.states[st.link as usize].len;
            for len in (link_len + 1)..=st.len {
                f(st.first_end + 1 - len, len, counts[i]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Naive occurrence map: substring → (first start, count), overlapping.
    fn naive_substrings(s: &str) -> HashMap<String, (u32, u32)> {
        let chars: Vec<char> = s.chars().collect();
        let mut map: HashMap<String, (u32, u32)> = HashMap::new();
        for i in 0..chars.len() {
            for j in (i + 1)..=chars.len() {
                let sub: String = chars[i..j].iter().collect();
                let e = map.entry(sub).or_insert((i as u32, 0));
                e.1 += 1;
            }
        }
        map
    }

    fn check_against_naive(s: &str) {
        let sam = SuffixAutomaton::of(s);
        let counts = sam.occurrence_counts();
        let naive = naive_substrings(s);
        let chars: Vec<char> = s.chars().collect();
        let mut seen = 0usize;
        sam.for_each_distinct(&counts, |start, len, count| {
            let sub: String = chars[start as usize..(start + len) as usize]
                .iter()
                .collect();
            let (nstart, ncount) = naive[&sub];
            assert_eq!(start, nstart, "first occurrence of {sub:?} in {s:?}");
            assert_eq!(count, ncount, "count of {sub:?} in {s:?}");
            seen += 1;
        });
        assert_eq!(seen, naive.len(), "distinct substrings of {s:?}");
        assert!(sam.num_states() <= 2 * chars.len().max(1));
    }

    #[test]
    fn matches_naive_enumeration() {
        for s in [
            "",
            "a",
            "aa",
            "abcbc",
            "banana",
            "abcabxabcd",
            "aaaaaaa",
            "mississippi",
            "9000190001",
        ] {
            check_against_naive(s);
        }
    }

    #[test]
    fn multibyte_values_use_char_positions() {
        check_against_naive("ééàé");
        check_against_naive("日本語日本");
        let sam = SuffixAutomaton::of("日本語日本");
        let counts = sam.occurrence_counts();
        let repeats: Vec<Repeat> = sam.repeats(&counts, 1).collect();
        // "日本" (and "日", "本") repeat; the longest class rep is "日本".
        assert!(repeats
            .iter()
            .any(|r| r.first_start == 0 && r.len == 2 && r.count == 2));
    }

    #[test]
    fn contains_is_substring_membership() {
        let sam = SuffixAutomaton::of("abcbc");
        for good in ["", "a", "abcbc", "cbc", "bcb"] {
            assert!(sam.contains(good.chars()), "{good}");
        }
        for bad in ["cc", "abd", "abcbcb"] {
            assert!(!sam.contains(bad.chars()), "{bad}");
        }
    }

    #[test]
    fn repeats_of_banana() {
        let sam = SuffixAutomaton::of("banana");
        let counts = sam.occurrence_counts();
        let mut reps: Vec<Repeat> = sam.repeats(&counts, 1).collect();
        reps.sort_by_key(|r| (r.len, r.first_start));
        // Repeated classes and their longest representatives: {a} ×3,
        // {n, an} → "an" ×2, {na, ana} → "ana" ×2 (same endpos {3, 5}).
        let rendered: Vec<(u32, u32, u32)> = reps
            .iter()
            .map(|r| (r.first_start, r.len, r.count))
            .collect();
        assert_eq!(rendered, vec![(1, 1, 3), (1, 2, 2), (1, 3, 2)]);
    }

    #[test]
    fn reset_reuses_cleanly() {
        let mut sam = SuffixAutomaton::new();
        for c in "abracadabra".chars() {
            sam.extend(c);
        }
        let fresh = SuffixAutomaton::of("banana");
        sam.reset();
        assert_eq!(sam.num_states(), 1);
        assert_eq!(sam.text_len(), 0);
        for c in "banana".chars() {
            sam.extend(c);
        }
        assert_eq!(sam.num_states(), fresh.num_states());
        let (a, b) = (sam.occurrence_counts(), fresh.occurrence_counts());
        assert_eq!(a, b);
        let ra: Vec<Repeat> = sam.repeats(&a, 1).collect();
        let rb: Vec<Repeat> = fresh.repeats(&b, 1).collect();
        assert_eq!(ra, rb);
    }

    #[test]
    fn clone_preserves_behavior() {
        let sam = SuffixAutomaton::of("abcabcabc");
        let cloned = sam.clone();
        assert_eq!(sam.occurrence_counts(), cloned.occurrence_counts());
        assert!(cloned.contains("bcabc".chars()));
    }

    #[test]
    fn empty_and_single_char() {
        let sam = SuffixAutomaton::of("");
        assert_eq!(sam.num_states(), 1);
        assert!(sam.repeats(&sam.occurrence_counts(), 1).next().is_none());
        let one = SuffixAutomaton::of("x");
        assert_eq!(one.text_len(), 1);
        assert!(one.contains("x".chars()));
        assert!(one.repeats(&one.occurrence_counts(), 1).next().is_none());
    }

    #[test]
    fn repeated_run_is_linear_in_states() {
        let s = "a".repeat(500);
        let sam = SuffixAutomaton::of(&s);
        // "aaaa…" is the worst case for enumeration but the best for the
        // automaton: a single chain of states.
        assert_eq!(sam.num_states(), 501);
        let counts = sam.occurrence_counts();
        let reps: Vec<Repeat> = sam.repeats(&counts, 1).collect();
        // Every length 1..=499 repeats; 500 occurs once.
        assert_eq!(reps.len(), 499);
    }
}
