//! Language containment, equivalence and emptiness for patterns.
//!
//! §2.1: "checking whether a string is accepted by a pattern, two patterns
//! are equivalent, or whether one pattern is contained by another can be done
//! in PTIME". We decide `L(a) ⊆ L(b)` by searching the product of the subset
//! construction of `a` with the complemented subset construction of `b`,
//! over a **symbolic alphabet**: the character space is partitioned into
//! blocks on which every predicate of either pattern is constant (each
//! mentioned literal is a singleton block; the remainder of each base class
//! is one block). The search is therefore polynomial in the pattern sizes
//! for the paper's pattern class, independent of |Σ|.

use crate::ast::Pattern;
use crate::class::CharClass;
use crate::nfa::{CharPred, Nfa};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// The symbolic alphabet: one representative character per block.
#[derive(Debug, Clone)]
pub(crate) struct Alphabet {
    reprs: Vec<char>,
}

impl Alphabet {
    /// Build the block partition induced by the predicates of the given NFAs.
    pub(crate) fn for_nfas(nfas: &[&Nfa]) -> Alphabet {
        let mut literals: BTreeSet<char> = BTreeSet::new();
        for nfa in nfas {
            for pred in nfa.all_preds() {
                collect_literals(pred, &mut literals);
            }
        }
        let lits: Vec<char> = literals.iter().copied().collect();
        let mut reprs = lits.clone();
        for class in CharClass::BASE {
            if let Some(r) = class.representative(&lits) {
                reprs.push(r);
            }
        }
        Alphabet { reprs }
    }

    pub(crate) fn representatives(&self) -> &[char] {
        &self.reprs
    }
}

fn collect_literals(pred: &CharPred, out: &mut BTreeSet<char>) {
    match pred {
        CharPred::Literal(c) => {
            out.insert(*c);
        }
        CharPred::Class(_) => {}
        CharPred::And(a, b) => {
            collect_literals(a, out);
            collect_literals(b, out);
        }
    }
}

/// A compact NFA state set keyed for hashing.
type StateSet = Vec<u64>;

fn empty_set(n: usize) -> StateSet {
    vec![0; n.div_ceil(64)]
}

fn set_bit(s: &mut StateSet, i: usize) {
    s[i / 64] |= 1 << (i % 64);
}

fn get_bit(s: &StateSet, i: usize) -> bool {
    s[i / 64] & (1 << (i % 64)) != 0
}

fn is_empty_set(s: &StateSet) -> bool {
    s.iter().all(|&w| w == 0)
}

fn eps_close(nfa: &Nfa, set: &mut StateSet) {
    let mut stack: Vec<usize> = (0..nfa.num_states()).filter(|&i| get_bit(set, i)).collect();
    while let Some(s) = stack.pop() {
        for &t in nfa.eps_of(s) {
            if !get_bit(set, t) {
                set_bit(set, t);
                stack.push(t);
            }
        }
    }
}

fn start_set(nfa: &Nfa) -> StateSet {
    let mut s = empty_set(nfa.num_states());
    set_bit(&mut s, nfa.start_state());
    eps_close(nfa, &mut s);
    s
}

fn step_set(nfa: &Nfa, set: &StateSet, c: char) -> StateSet {
    let mut next = empty_set(nfa.num_states());
    for i in 0..nfa.num_states() {
        if !get_bit(set, i) {
            continue;
        }
        for (pred, to) in nfa.trans_of(i) {
            if pred.matches(c) {
                set_bit(&mut next, *to);
            }
        }
    }
    eps_close(nfa, &mut next);
    next
}

fn accepts(nfa: &Nfa, set: &StateSet) -> bool {
    get_bit(set, nfa.accept_state())
}

/// Search for a string accepted by `a` but not by `b`.
///
/// Returns `None` when `L(a) ⊆ L(b)`; otherwise a shortest witness over the
/// block representatives.
pub fn difference_witness(a: &Pattern, b: &Pattern) -> Option<String> {
    let na = Nfa::compile(a);
    let nb = Nfa::compile(b);
    let alphabet = Alphabet::for_nfas(&[&na, &nb]);

    let start = (start_set(&na), start_set(&nb));
    if accepts(&na, &start.0) && !accepts(&nb, &start.1) {
        return Some(String::new());
    }

    let mut seen: HashMap<(StateSet, StateSet), Option<(usize, char)>> = HashMap::new();
    let mut order: Vec<(StateSet, StateSet)> = Vec::new();
    seen.insert(start.clone(), None);
    order.push(start.clone());
    let mut queue: VecDeque<usize> = VecDeque::new();
    queue.push_back(0);

    while let Some(idx) = queue.pop_front() {
        let (sa, sb) = order[idx].clone();
        for &c in alphabet.representatives() {
            let ta = step_set(&na, &sa, c);
            if is_empty_set(&ta) {
                continue; // no word of L(a) continues this way
            }
            let tb = step_set(&nb, &sb, c);
            let key = (ta, tb);
            if seen.contains_key(&key) {
                continue;
            }
            let hit = accepts(&na, &key.0) && !accepts(&nb, &key.1);
            seen.insert(key.clone(), Some((idx, c)));
            order.push(key.clone());
            if hit {
                // Reconstruct the witness.
                let mut chars = vec![c];
                let mut cur = idx;
                while let Some(Some((parent, ch))) = seen.get(&order[cur]) {
                    chars.push(*ch);
                    cur = *parent;
                }
                chars.reverse();
                return Some(chars.into_iter().collect());
            }
            queue.push_back(order.len() - 1);
        }
    }
    None
}

/// `L(a) ⊆ L(b)`: every string matching `a` also matches `b`.
pub fn subset_of(a: &Pattern, b: &Pattern) -> bool {
    difference_witness(a, b).is_none()
}

/// `L(a) = L(b)`.
pub fn equivalent(a: &Pattern, b: &Pattern) -> bool {
    subset_of(a, b) && subset_of(b, a)
}

/// Is the language of `p` empty? (Possible with unsatisfiable conjunctions
/// such as `\D&\LU`.)
pub fn language_is_empty(p: &Pattern) -> bool {
    member_witness(p).is_none()
}

/// A shortest member of `L(p)` over the block representatives, if any.
pub fn member_witness(p: &Pattern) -> Option<String> {
    let nfa = Nfa::compile(p);
    let alphabet = Alphabet::for_nfas(&[&nfa]);

    let start = start_set(&nfa);
    if accepts(&nfa, &start) {
        return Some(String::new());
    }
    let mut seen: HashMap<StateSet, Option<(usize, char)>> = HashMap::new();
    let mut order: Vec<StateSet> = Vec::new();
    seen.insert(start.clone(), None);
    order.push(start);
    let mut queue: VecDeque<usize> = VecDeque::new();
    queue.push_back(0);

    while let Some(idx) = queue.pop_front() {
        let cur = order[idx].clone();
        for &c in alphabet.representatives() {
            let next = step_set(&nfa, &cur, c);
            if is_empty_set(&next) || seen.contains_key(&next) {
                continue;
            }
            let hit = accepts(&nfa, &next);
            seen.insert(next.clone(), Some((idx, c)));
            order.push(next.clone());
            if hit {
                let mut chars = vec![c];
                let mut at = idx;
                while let Some(Some((parent, ch))) = seen.get(&order[at]) {
                    chars.push(*ch);
                    at = *parent;
                }
                chars.reverse();
                return Some(chars.into_iter().collect());
            }
            queue.push_back(order.len() - 1);
        }
    }
    None
}

/// Do the languages of `a` and `b` intersect? Returns a witness.
pub fn intersection_witness(a: &Pattern, b: &Pattern) -> Option<String> {
    let na = Nfa::compile(a);
    let nb = Nfa::compile(b);
    let alphabet = Alphabet::for_nfas(&[&na, &nb]);

    let start = (start_set(&na), start_set(&nb));
    if accepts(&na, &start.0) && accepts(&nb, &start.1) {
        return Some(String::new());
    }
    let mut seen: HashMap<(StateSet, StateSet), Option<(usize, char)>> = HashMap::new();
    let mut order: Vec<(StateSet, StateSet)> = Vec::new();
    seen.insert(start.clone(), None);
    order.push(start);
    let mut queue: VecDeque<usize> = VecDeque::new();
    queue.push_back(0);

    while let Some(idx) = queue.pop_front() {
        let (sa, sb) = order[idx].clone();
        for &c in alphabet.representatives() {
            let ta = step_set(&na, &sa, c);
            let tb = step_set(&nb, &sb, c);
            if is_empty_set(&ta) || is_empty_set(&tb) {
                continue;
            }
            let key = (ta, tb);
            if seen.contains_key(&key) {
                continue;
            }
            let hit = accepts(&na, &key.0) && accepts(&nb, &key.1);
            seen.insert(key.clone(), Some((idx, c)));
            order.push(key.clone());
            if hit {
                let mut chars = vec![c];
                let mut at = idx;
                while let Some(Some((parent, ch))) = seen.get(&order[at]) {
                    chars.push(*ch);
                    at = *parent;
                }
                chars.reverse();
                return Some(chars.into_iter().collect());
            }
            queue.push_back(order.len() - 1);
        }
    }
    None
}

/// Enumerate the satisfiable **membership signatures** of a pattern family:
/// all boolean vectors `v` for which some string `s` has `s ∈ L(p_i) ⇔ v[i]`
/// for every pattern `p_i`, together with a shortest witness for each.
///
/// This is the workhorse of the NP consistency / implication analyses (§7.2,
/// §7.3): a single tuple's behaviour w.r.t. a set of PFDs is fully determined
/// by, per attribute, *which* of the mentioned patterns its value matches.
/// The search runs over the product of the subset constructions on the
/// symbolic block alphabet; `state_limit` bounds the exploration (`None` is
/// returned when exceeded, which callers surface as "unknown").
pub fn satisfiable_signatures(
    patterns: &[&Pattern],
    state_limit: usize,
) -> Option<Vec<(Vec<bool>, String)>> {
    let nfas: Vec<Nfa> = patterns.iter().map(|p| Nfa::compile(p)).collect();
    let refs: Vec<&Nfa> = nfas.iter().collect();
    let alphabet = Alphabet::for_nfas(&refs);

    let start: Vec<StateSet> = nfas.iter().map(start_set).collect();
    let sig_of = |sets: &[StateSet]| -> Vec<bool> {
        nfas.iter().zip(sets).map(|(n, s)| accepts(n, s)).collect()
    };

    let mut found: HashMap<Vec<bool>, String> = HashMap::new();
    let mut seen: HashMap<Vec<StateSet>, ()> = HashMap::new();
    let mut queue: VecDeque<(Vec<StateSet>, String)> = VecDeque::new();

    found.insert(sig_of(&start), String::new());
    seen.insert(start.clone(), ());
    queue.push_back((start, String::new()));

    while let Some((sets, word)) = queue.pop_front() {
        if seen.len() > state_limit {
            return None;
        }
        for &c in alphabet.representatives() {
            let next: Vec<StateSet> = nfas
                .iter()
                .zip(&sets)
                .map(|(n, s)| step_set(n, s, c))
                .collect();
            if seen.contains_key(&next) {
                continue;
            }
            seen.insert(next.clone(), ());
            let mut next_word = word.clone();
            next_word.push(c);
            let sig = sig_of(&next);
            found.entry(sig).or_insert_with(|| next_word.clone());
            queue.push_back((next, next_word));
        }
    }
    let mut out: Vec<(Vec<bool>, String)> = found.into_iter().collect();
    out.sort();
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_pattern;

    fn p(src: &str) -> Pattern {
        parse_pattern(src).unwrap()
    }

    #[test]
    fn example4_restriction() {
        // Paper Example 4: \D{5} ⊆ \D*.
        assert!(subset_of(&p(r"\D{5}"), &p(r"\D*")));
        assert!(!subset_of(&p(r"\D*"), &p(r"\D{5}")));
    }

    #[test]
    fn everything_subset_of_any_star() {
        for src in [r"900\D{2}", r"\LU\LL*\ \A*", "M", r"\D+", ""] {
            assert!(subset_of(&p(src), &p(r"\A*")), "{src} ⊆ \\A* must hold");
        }
    }

    #[test]
    fn constant_subset_of_shape() {
        assert!(subset_of(&p("90001"), &p(r"\D{5}")));
        assert!(subset_of(&p("90001"), &p(r"900\D{2}")));
        assert!(!subset_of(&p("90101"), &p(r"900\D{2}")));
    }

    #[test]
    fn zip_prefix_subset_of_five_digits() {
        assert!(subset_of(&p(r"900\D{2}"), &p(r"\D{5}")));
        assert!(!subset_of(&p(r"\D{5}"), &p(r"900\D{2}")));
    }

    #[test]
    fn name_patterns() {
        // John\ \A* ⊆ \LU\LL*\ \A*
        assert!(subset_of(&p(r"John\ \A*"), &p(r"\LU\LL*\ \A*")));
        assert!(!subset_of(&p(r"\LU\LL*\ \A*"), &p(r"John\ \A*")));
        // but john (lower case) is not
        assert!(!subset_of(&p(r"john\ \A*"), &p(r"\LU\LL*\ \A*")));
    }

    #[test]
    fn equivalence() {
        assert!(equivalent(&p(r"\D\D\D"), &p(r"\D{3}")));
        assert!(equivalent(&p(r"a+"), &p(r"aa*")));
        assert!(!equivalent(&p(r"a*"), &p(r"a+")));
        assert!(equivalent(&p(r"(ab){2}"), &p(r"abab")));
    }

    #[test]
    fn difference_witness_is_valid() {
        let a = p(r"\D{5}");
        let b = p(r"900\D{2}");
        let w = difference_witness(&a, &b).expect("difference must be non-empty");
        let na = Nfa::compile(&a);
        let nb = Nfa::compile(&b);
        assert!(na.matches(&w));
        assert!(!nb.matches(&w));
    }

    #[test]
    fn no_difference_for_subset() {
        assert_eq!(difference_witness(&p("900"), &p(r"\D{3}")), None);
    }

    #[test]
    fn empty_language_from_contradictory_conjunction() {
        assert!(language_is_empty(&p(r"\D&\LU")));
        assert!(!language_is_empty(&p(r"\LU&A")));
    }

    #[test]
    fn member_witness_matches() {
        for src in [r"\D{3}", r"\LU\LL+", r"900\D{2}", r"a*b+c"] {
            let pat = p(src);
            let w = member_witness(&pat).unwrap();
            assert!(Nfa::compile(&pat).matches(&w), "witness {w:?} for {src}");
        }
    }

    #[test]
    fn empty_pattern_member_is_empty_string() {
        assert_eq!(member_witness(&Pattern::empty()).as_deref(), Some(""));
    }

    #[test]
    fn intersection() {
        let w = intersection_witness(&p(r"\D{5}"), &p(r"900\D{2}")).unwrap();
        assert!(w.starts_with("900") && w.len() == 5);
        assert_eq!(intersection_witness(&p(r"\D+"), &p(r"\LU+")), None);
    }

    #[test]
    fn subset_is_reflexive_and_transitive_on_samples() {
        let pats = [p(r"900\D{2}"), p(r"\D{5}"), p(r"\D+"), p(r"\A*")];
        for a in &pats {
            assert!(subset_of(a, a));
        }
        // chain: 900\D{2} ⊆ \D{5} ⊆ \D+ ⊆ \A*
        for w in pats.windows(2) {
            assert!(subset_of(&w[0], &w[1]));
        }
        assert!(subset_of(&pats[0], &pats[3]));
    }

    #[test]
    fn symbol_class_containment() {
        assert!(subset_of(&p(r"\ "), &p(r"\S")));
        assert!(subset_of(&p(r"-"), &p(r"\S")));
        assert!(!subset_of(&p(r"a"), &p(r"\S")));
    }

    #[test]
    fn signatures_of_disjoint_patterns() {
        let a = p(r"\D{5}");
        let b = p(r"\LU+");
        let sigs = satisfiable_signatures(&[&a, &b], 100_000).unwrap();
        let vectors: Vec<Vec<bool>> = sigs.iter().map(|(v, _)| v.clone()).collect();
        // Possible: neither, only a, only b. Impossible: both.
        assert!(vectors.contains(&vec![false, false]));
        assert!(vectors.contains(&vec![true, false]));
        assert!(vectors.contains(&vec![false, true]));
        assert!(!vectors.contains(&vec![true, true]));
    }

    #[test]
    fn signatures_of_nested_patterns() {
        let narrow = p(r"900\D{2}");
        let wide = p(r"\D{5}");
        let sigs = satisfiable_signatures(&[&narrow, &wide], 100_000).unwrap();
        let vectors: Vec<Vec<bool>> = sigs.iter().map(|(v, _)| v.clone()).collect();
        // narrow ⊆ wide: narrow-without-wide is unsatisfiable.
        assert!(!vectors.contains(&vec![true, false]));
        assert!(vectors.contains(&vec![true, true]));
        assert!(vectors.contains(&vec![false, true]));
    }

    #[test]
    fn signature_witnesses_are_faithful() {
        let pats = [p(r"\D+"), p(r"90\D*"), p(r"\LU\LL*")];
        let refs: Vec<&Pattern> = pats.iter().collect();
        let sigs = satisfiable_signatures(&refs, 100_000).unwrap();
        assert!(!sigs.is_empty());
        for (sig, witness) in sigs {
            for (i, pat) in pats.iter().enumerate() {
                assert_eq!(
                    Nfa::compile(pat).matches(&witness),
                    sig[i],
                    "witness {witness:?} vs pattern {pat} bit {i}"
                );
            }
        }
    }

    #[test]
    fn signatures_state_limit_returns_none() {
        let a = p(r"\D{9}\LU{9}\D{9}");
        let b = p(r"\LU{9}\D{9}\LU{9}");
        assert_eq!(satisfiable_signatures(&[&a, &b], 3), None);
    }
}
