//! # `pfd-pattern` — the pattern language of Pattern Functional Dependencies
//!
//! Implements §2.1 of *“Pattern Functional Dependencies for Data Cleaning”*
//! (PVLDB 13(5), 2020): a deliberately restricted, regex-like pattern class
//! over a **generalization tree** (Figure 1 of the paper), for which
//! membership, equivalence and containment are all tractable — unlike general
//! regular expressions, whose equivalence is PSPACE-complete.
//!
//! ## The language
//!
//! - Atoms: concrete characters, the classes `\LU` (upper), `\LL` (lower),
//!   `\D` (digit), `\S` (symbol), `\A` (any), conjunction `α & β`, and
//!   non-recursive groups.
//! - Quantifiers: `{N}`, `+`, `*`. Recursive patterns like `(α+)*` are
//!   rejected.
//! - **Constrained patterns** `pre[Q]post` mark a sub-segment whose matched
//!   portion defines string equivalence: `s ≡_Q s'` iff `s(Q) = s'(Q)`.
//!
//! ## Example
//!
//! ```
//! use pfd_pattern::ConstrainedPattern;
//!
//! // λ4 of the paper: the first name (constrained) of a full name.
//! let q: ConstrainedPattern = r"[\LU\LL*\ ]\A*".parse().unwrap();
//! assert!(q.matches("John Charles"));
//! assert_eq!(q.extract("John Charles"), Some("John "));
//! assert!(q.equivalent("John Charles", "John Bosco"));
//! assert!(!q.equivalent("John Charles", "Susan Orlean"));
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod class;
pub mod constrained;
pub mod contains;
pub mod display;
pub mod infer;
pub mod nfa;
pub mod normalize;
pub mod parse;
pub mod simd;
pub mod suffix;

pub use ast::{Atom, Element, Pattern, PatternError, Quant};
pub use class::CharClass;
pub use constrained::ConstrainedPattern;
pub use contains::{
    difference_witness, equivalent, intersection_witness, language_is_empty, member_witness,
    satisfiable_signatures, subset_of,
};
pub use infer::{infer_pattern, infer_verified, shape_of, ShapeRun};
pub use nfa::Nfa;
pub use normalize::normalize;
pub use parse::{parse_constrained, parse_pattern, ParseError};
pub use suffix::{CountScratch, Repeat, SuffixAutomaton};
