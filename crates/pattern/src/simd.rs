//! Word-at-a-time (SWAR) byte kernels for the text hot loops: ASCII
//! lowercasing, equality, prefix tests, byte search, and substring
//! containment.
//!
//! Fragment extraction and constrained-pattern matching spend their time in
//! tight byte scans over cell values. These kernels process eight bytes per
//! step using plain `u64` arithmetic — no platform intrinsics, so every
//! target gets the same speedup and there is nothing to feature-gate. Each
//! kernel has a `_scalar` twin with the obvious byte-by-byte loop; the
//! property suite pins the pair byte-identical on arbitrary inputs, and the
//! `postings_runtime` bench reports both so either path regressing is
//! visible.
//!
//! Honesty note: SWAR wins on runs of ≥ 16 bytes or so; below that the
//! setup overhead ties with the scalar loop (it never loses — the word loop
//! simply doesn't execute). Deciding per call site would cost more than it
//! saves, so the kernels handle short inputs through their scalar tails.

/// Every byte set to `0x01` — the SWAR broadcast multiplier.
const LO: u64 = 0x0101_0101_0101_0101;
/// Every byte's high bit — the SWAR carry/flag mask.
const HI: u64 = 0x8080_8080_8080_8080;

/// Are `a` and `b` byte-identical? Word-chunked equality.
#[inline]
pub fn eq_bytes(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut i = 0usize;
    while i + 8 <= a.len() {
        let wa = u64::from_le_bytes(a[i..i + 8].try_into().expect("8-byte chunk"));
        let wb = u64::from_le_bytes(b[i..i + 8].try_into().expect("8-byte chunk"));
        if wa != wb {
            return false;
        }
        i += 8;
    }
    a[i..] == b[i..]
}

/// Scalar twin of [`eq_bytes`].
#[inline]
pub fn eq_bytes_scalar(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    for (x, y) in a.iter().zip(b) {
        if x != y {
            return false;
        }
    }
    true
}

/// Does `hay` start with `needle`? Word-chunked prefix compare.
#[inline]
pub fn is_prefix(hay: &[u8], needle: &[u8]) -> bool {
    hay.len() >= needle.len() && eq_bytes(&hay[..needle.len()], needle)
}

/// Scalar twin of [`is_prefix`].
#[inline]
pub fn is_prefix_scalar(hay: &[u8], needle: &[u8]) -> bool {
    hay.len() >= needle.len() && eq_bytes_scalar(&hay[..needle.len()], needle)
}

/// Position of the first occurrence of `byte` in `hay` — eight bytes per
/// step via the classic SWAR zero-byte test `(x - LO) & !x & HI`.
#[inline]
pub fn find_byte(hay: &[u8], byte: u8) -> Option<usize> {
    let pat = LO.wrapping_mul(u64::from(byte));
    let mut i = 0usize;
    while i + 8 <= hay.len() {
        let w = u64::from_le_bytes(hay[i..i + 8].try_into().expect("8-byte chunk")) ^ pat;
        let hit = w.wrapping_sub(LO) & !w & HI;
        if hit != 0 {
            return Some(i + (hit.trailing_zeros() / 8) as usize);
        }
        i += 8;
    }
    hay[i..].iter().position(|&b| b == byte).map(|p| i + p)
}

/// Scalar twin of [`find_byte`].
#[inline]
pub fn find_byte_scalar(hay: &[u8], byte: u8) -> Option<usize> {
    hay.iter().position(|&b| b == byte)
}

/// Lowercase ASCII letters in `buf` in place, leaving every other byte
/// (including UTF-8 continuation bytes, which have their high bit set)
/// untouched.
///
/// Dispatches to the scalar loop: `BENCH_postings.json` shows LLVM already
/// auto-vectorizes the byte-wise form wider than the 8-byte SWAR variant
/// (the SWAR path measures ~0.6x on x86_64), so the honest default is the
/// scalar twin. [`ascii_lowercase_inplace_swar`] stays property-pinned and
/// benched in case a future target flips the verdict.
#[inline]
pub fn ascii_lowercase_inplace(buf: &mut [u8]) {
    ascii_lowercase_inplace_scalar(buf);
}

/// SWAR variant of [`ascii_lowercase_inplace`]: eight bytes per step; a
/// byte is `A..=Z` iff its low seven bits sit in `0x41..=0x5A` *and* its
/// high bit is clear; such bytes gain `0x20`.
#[inline]
pub fn ascii_lowercase_inplace_swar(buf: &mut [u8]) {
    let mut i = 0usize;
    while i + 8 <= buf.len() {
        let w = u64::from_le_bytes(buf[i..i + 8].try_into().expect("8-byte chunk"));
        let heptets = w & !HI;
        // High bit set where the heptet is ≥ 0x41 ('A').
        let ge_a = heptets.wrapping_add((0x80 - 0x41) * LO) & HI;
        // High bit set where the heptet is ≥ 0x5B ('Z' + 1).
        let gt_z = heptets.wrapping_add((0x80 - 0x5B) * LO) & HI;
        // Uppercase: ≥ 'A', not > 'Z', and originally an ASCII byte.
        let upper = ge_a & !gt_z & !w & HI;
        buf[i..i + 8].copy_from_slice(&(w | (upper >> 2)).to_le_bytes());
        i += 8;
    }
    for b in &mut buf[i..] {
        b.make_ascii_lowercase();
    }
}

/// Scalar twin of [`ascii_lowercase_inplace`].
#[inline]
pub fn ascii_lowercase_inplace_scalar(buf: &mut [u8]) {
    for b in buf {
        b.make_ascii_lowercase();
    }
}

/// Does `hay` contain `needle`? First-byte SWAR scan, then a word-chunked
/// confirm at each candidate. Empty needles match (at position 0), as with
/// `str::contains`.
#[inline]
pub fn contains_bytes(hay: &[u8], needle: &[u8]) -> bool {
    let Some((&first, rest)) = needle.split_first() else {
        return true;
    };
    if needle.len() > hay.len() {
        return false;
    }
    let mut from = 0usize;
    let last_start = hay.len() - needle.len();
    while from <= last_start {
        match find_byte(&hay[from..=last_start], first) {
            Some(p) => {
                let at = from + p;
                if eq_bytes(&hay[at + 1..at + needle.len()], rest) {
                    return true;
                }
                from = at + 1;
            }
            None => return false,
        }
    }
    false
}

/// Scalar twin of [`contains_bytes`].
#[inline]
pub fn contains_bytes_scalar(hay: &[u8], needle: &[u8]) -> bool {
    if needle.is_empty() {
        return true;
    }
    if needle.len() > hay.len() {
        return false;
    }
    (0..=hay.len() - needle.len()).any(|i| &hay[i..i + needle.len()] == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_and_prefix_match_scalar_on_boundary_lengths() {
        let base: Vec<u8> = (0u8..40).map(|i| i.wrapping_mul(37)).collect();
        for len in 0..base.len() {
            let a = &base[..len];
            let mut b = a.to_vec();
            assert!(eq_bytes(a, &b));
            assert_eq!(eq_bytes(a, &b), eq_bytes_scalar(a, &b));
            if len > 0 {
                // Flip each byte in turn; both kernels must catch it.
                for flip in [0, len / 2, len - 1] {
                    b[flip] ^= 0x40;
                    assert!(!eq_bytes(a, &b), "len={len} flip={flip}");
                    assert_eq!(eq_bytes(a, &b), eq_bytes_scalar(a, &b));
                    b[flip] ^= 0x40;
                }
            }
            assert_eq!(is_prefix(&base, a), is_prefix_scalar(&base, a));
            assert!(is_prefix(&base, a));
        }
        assert!(!eq_bytes(b"abc", b"abcd"), "length mismatch");
        assert!(!is_prefix(b"ab", b"abc"), "needle longer than hay");
    }

    #[test]
    fn find_byte_matches_scalar_at_every_offset() {
        let mut hay = vec![b'x'; 25];
        for at in 0..hay.len() {
            hay[at] = b'q';
            assert_eq!(find_byte(&hay, b'q'), Some(at));
            assert_eq!(find_byte(&hay, b'q'), find_byte_scalar(&hay, b'q'));
            hay[at] = b'x';
        }
        assert_eq!(find_byte(&hay, b'q'), None);
        assert_eq!(find_byte(&[], b'q'), None);
        // High-bit bytes must not alias low ones.
        assert_eq!(find_byte(&[0x80, 0x00], 0x00), Some(1));
        assert_eq!(find_byte(&[0xff; 9], 0x7f), None);
    }

    #[test]
    fn lowercase_matches_scalar_over_full_byte_range() {
        // All 256 byte values at all 8 word alignments.
        for shift in 0..8usize {
            let mut buf: Vec<u8> = vec![b'-'; shift];
            buf.extend(0u8..=255);
            let mut twin = buf.clone();
            ascii_lowercase_inplace_swar(&mut buf);
            ascii_lowercase_inplace_scalar(&mut twin);
            assert_eq!(buf, twin, "shift={shift}");
        }
        let mut s = "MiXeD Ünïcode ÀBC 123 [\\]^_`".to_string().into_bytes();
        let expect = {
            let mut t = s.clone();
            t.make_ascii_lowercase();
            t
        };
        ascii_lowercase_inplace(&mut s);
        assert_eq!(s, expect);
        assert!(std::str::from_utf8(&s).is_ok(), "UTF-8 preserved");
    }

    #[test]
    fn contains_matches_scalar_on_overlapping_needles() {
        let hay = b"abababcabababcxyzabababc";
        let cases: &[&[u8]] = &[
            b"",
            b"a",
            b"z",
            b"ababc",
            b"abababc",
            b"xyz",
            b"abababcx",
            b"cxyza",
            b"abababcxyzabababc",
            b"abababcxyzabababcz",
        ];
        for needle in cases {
            assert_eq!(
                contains_bytes(hay, needle),
                contains_bytes_scalar(hay, needle),
                "needle={:?}",
                std::str::from_utf8(needle)
            );
        }
        assert!(!contains_bytes(b"ab", b"abc"), "needle longer than hay");
        assert!(contains_bytes(b"", b""), "empty in empty");
    }
}
