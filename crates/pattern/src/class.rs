//! The generalization tree of §2.1 (Figure 1 of the paper).
//!
//! The tree is defined over an alphabet Σ: every leaf is a character and
//! every intermediate node generalizes its children. The paper's tree has a
//! root `All [\A]` with four children — `Upper [\LU]`, `Lower [\LL]`,
//! `Digit [\D]` and `Symbol [\S]` — whose children are the concrete
//! characters. [`CharClass`] models the intermediate nodes; concrete
//! characters appear as pattern literals instead of tree nodes.

use std::fmt;

/// An intermediate node of the generalization tree.
///
/// Ordering of generality: `Any` generalizes every other class; the four base
/// classes are pairwise incomparable; a concrete character is generalized by
/// exactly one base class (see [`CharClass::of_char`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CharClass {
    /// `\LU` — upper case letters.
    Upper,
    /// `\LL` — lower case letters.
    Lower,
    /// `\D` — decimal digits.
    Digit,
    /// `\S` — everything else: punctuation, whitespace, and any character
    /// that is neither a cased letter nor an ASCII digit.
    Symbol,
    /// `\A` — the root of the tree; matches any character.
    Any,
}

impl CharClass {
    /// All five classes, children before the root.
    pub const ALL: [CharClass; 5] = [
        CharClass::Upper,
        CharClass::Lower,
        CharClass::Digit,
        CharClass::Symbol,
        CharClass::Any,
    ];

    /// The four base classes (direct children of `Any`).
    pub const BASE: [CharClass; 4] = [
        CharClass::Upper,
        CharClass::Lower,
        CharClass::Digit,
        CharClass::Symbol,
    ];

    /// The base class that generalizes character `c` — the parent of the leaf
    /// `c` in the generalization tree.
    pub fn of_char(c: char) -> CharClass {
        if c.is_uppercase() {
            CharClass::Upper
        } else if c.is_lowercase() {
            CharClass::Lower
        } else if c.is_ascii_digit() {
            CharClass::Digit
        } else {
            CharClass::Symbol
        }
    }

    /// Does this class contain character `c`?
    pub fn contains(self, c: char) -> bool {
        match self {
            CharClass::Any => true,
            other => CharClass::of_char(c) == other,
        }
    }

    /// Is `self` a (non-strict) subclass of `other` in the tree?
    pub fn is_subclass_of(self, other: CharClass) -> bool {
        self == other || other == CharClass::Any
    }

    /// Least upper bound of two classes in the tree: the most specific class
    /// that generalizes both.
    pub fn lub(self, other: CharClass) -> CharClass {
        if self == other {
            self
        } else {
            CharClass::Any
        }
    }

    /// The parent node in the tree (`None` for the root).
    pub fn parent(self) -> Option<CharClass> {
        match self {
            CharClass::Any => None,
            _ => Some(CharClass::Any),
        }
    }

    /// A representative character of this class that is *not* in `exclude`.
    ///
    /// Used by the symbolic-alphabet construction for containment checking
    /// (§2.1 claims PTIME decidability of acceptance, equivalence and
    /// containment; the symbolic alphabet keeps the construction polynomial
    /// in the pattern sizes rather than in |Σ|).
    pub fn representative(self, exclude: &[char]) -> Option<char> {
        fn pick(mut candidates: impl Iterator<Item = char>, exclude: &[char]) -> Option<char> {
            candidates.find(|c| !exclude.contains(c))
        }
        match self {
            CharClass::Upper => pick('A'..='Z', exclude),
            CharClass::Lower => pick('a'..='z', exclude),
            CharClass::Digit => pick('0'..='9', exclude),
            CharClass::Symbol => pick(
                [
                    ' ', '-', '_', '.', ',', ':', ';', '/', '\\', '#', '@', '!', '?', '(', ')',
                    '[', ']', '{', '}', '+', '=', '*', '&', '%', '$', '^', '~', '<', '>', '|',
                    '\'', '"', '`',
                ]
                .into_iter(),
                exclude,
            ),
            CharClass::Any => CharClass::Upper.representative(exclude),
        }
    }

    /// The paper's escape syntax for this class.
    pub fn token(self) -> &'static str {
        match self {
            CharClass::Upper => r"\LU",
            CharClass::Lower => r"\LL",
            CharClass::Digit => r"\D",
            CharClass::Symbol => r"\S",
            CharClass::Any => r"\A",
        }
    }
}

impl fmt::Display for CharClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_basic_ascii() {
        assert_eq!(CharClass::of_char('A'), CharClass::Upper);
        assert_eq!(CharClass::of_char('Z'), CharClass::Upper);
        assert_eq!(CharClass::of_char('a'), CharClass::Lower);
        assert_eq!(CharClass::of_char('z'), CharClass::Lower);
        assert_eq!(CharClass::of_char('0'), CharClass::Digit);
        assert_eq!(CharClass::of_char('9'), CharClass::Digit);
        assert_eq!(CharClass::of_char(' '), CharClass::Symbol);
        assert_eq!(CharClass::of_char('-'), CharClass::Symbol);
        assert_eq!(CharClass::of_char('/'), CharClass::Symbol);
    }

    #[test]
    fn any_contains_everything() {
        for c in ['A', 'a', '0', ' ', '!', 'É', 'ß'] {
            assert!(CharClass::Any.contains(c), "Any must contain {c:?}");
        }
    }

    #[test]
    fn base_classes_partition_chars() {
        // Every char belongs to exactly one base class.
        for c in "AbC9 -x_Z0.".chars() {
            let hits = CharClass::BASE
                .iter()
                .filter(|class| class.contains(c))
                .count();
            assert_eq!(hits, 1, "char {c:?} must be in exactly one base class");
        }
    }

    #[test]
    fn subclass_relation() {
        for base in CharClass::BASE {
            assert!(base.is_subclass_of(CharClass::Any));
            assert!(base.is_subclass_of(base));
            assert!(!CharClass::Any.is_subclass_of(base));
        }
        assert!(!CharClass::Upper.is_subclass_of(CharClass::Lower));
    }

    #[test]
    fn lub_is_commutative_and_idempotent() {
        for a in CharClass::ALL {
            assert_eq!(a.lub(a), a);
            for b in CharClass::ALL {
                assert_eq!(a.lub(b), b.lub(a));
                assert!(a.is_subclass_of(a.lub(b)));
                assert!(b.is_subclass_of(a.lub(b)));
            }
        }
    }

    #[test]
    fn parent_of_base_is_any() {
        for base in CharClass::BASE {
            assert_eq!(base.parent(), Some(CharClass::Any));
        }
        assert_eq!(CharClass::Any.parent(), None);
    }

    #[test]
    fn representatives_avoid_excluded() {
        let rep = CharClass::Upper.representative(&['A', 'B']).unwrap();
        assert_eq!(CharClass::of_char(rep), CharClass::Upper);
        assert!(rep != 'A' && rep != 'B');

        let rep = CharClass::Digit.representative(&['0']).unwrap();
        assert!(rep.is_ascii_digit() && rep != '0');

        let rep = CharClass::Symbol.representative(&[' ', '-']).unwrap();
        assert_eq!(CharClass::of_char(rep), CharClass::Symbol);
    }

    #[test]
    fn display_matches_paper_tokens() {
        assert_eq!(CharClass::Upper.to_string(), r"\LU");
        assert_eq!(CharClass::Lower.to_string(), r"\LL");
        assert_eq!(CharClass::Digit.to_string(), r"\D");
        assert_eq!(CharClass::Symbol.to_string(), r"\S");
        assert_eq!(CharClass::Any.to_string(), r"\A");
    }
}
