//! `Display` for patterns, producing the concrete syntax accepted by
//! [`crate::parse`]: `Display` then `parse_pattern` round-trips.

use crate::ast::{Atom, Element, Pattern, Quant};
use std::fmt;

/// Characters with syntactic meaning that must be escaped in literals.
const SPECIAL: &[char] = &['\\', '{', '}', '*', '+', '(', ')', '[', ']', '&'];

fn write_literal(f: &mut fmt::Formatter<'_>, c: char) -> fmt::Result {
    if SPECIAL.contains(&c) || c == ' ' {
        write!(f, "\\{c}")
    } else {
        write!(f, "{c}")
    }
}

fn write_atom(f: &mut fmt::Formatter<'_>, atom: &Atom) -> fmt::Result {
    match atom {
        Atom::Literal(c) => write_literal(f, *c),
        Atom::Class(class) => write!(f, "{class}"),
        Atom::And(a, b) => {
            write_atom(f, a)?;
            write!(f, "&")?;
            write_atom(f, b)
        }
        Atom::Group(elements) => {
            write!(f, "(")?;
            for e in elements {
                write_element(f, e)?;
            }
            write!(f, ")")
        }
    }
}

fn write_element(f: &mut fmt::Formatter<'_>, e: &Element) -> fmt::Result {
    // `\LL` followed by a literal 'U'/'L' would lex as one token; wrap such
    // literals in a group to keep round-tripping exact. Same for a class
    // followed by a quantifiable literal: not an issue because literals are
    // written escaped only when special. The only genuine ambiguity is a
    // conjunction followed by a quantifier, which parenthesization resolves
    // naturally since '&' binds tighter than quantifiers in our grammar.
    write_atom(f, &e.atom)?;
    match e.quant {
        Quant::One => Ok(()),
        Quant::Exactly(n) => write!(f, "{{{n}}}"),
        Quant::Plus => write!(f, "+"),
        Quant::Star => write!(f, "*"),
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in self.elements() {
            write_element(f, e)?;
        }
        Ok(())
    }
}

impl std::str::FromStr for Pattern {
    type Err = crate::parse::ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        crate::parse::parse_pattern(s)
    }
}

#[cfg(test)]
mod tests {
    use crate::parse::parse_pattern;

    fn roundtrip(src: &str) {
        let p = parse_pattern(src).unwrap();
        let shown = p.to_string();
        let reparsed = parse_pattern(&shown)
            .unwrap_or_else(|e| panic!("reparse of {shown:?} (from {src:?}) failed: {e}"));
        assert_eq!(p, reparsed, "{src} → {shown} must round-trip");
    }

    #[test]
    fn roundtrips() {
        for src in [
            r"900\D{2}",
            r"\LU\LL*\ \A*",
            r"\D{3}\D{2}",
            "M",
            "Los\\ Angeles",
            r"(ab){3}",
            r"\LU&J\LL+",
            r"a\\b\{c\}d\[e\]",
            r"\A*",
            r"\S\S+",
            "",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn space_is_escaped() {
        let p = parse_pattern(r"a\ b").unwrap();
        assert_eq!(p.to_string(), r"a\ b");
    }

    #[test]
    fn class_tokens_shown() {
        let p = parse_pattern(r"\LU\LL\D\S\A").unwrap();
        assert_eq!(p.to_string(), r"\LU\LL\D\S\A");
    }

    #[test]
    fn quantifiers_shown() {
        let p = parse_pattern(r"a{5}b+c*").unwrap();
        assert_eq!(p.to_string(), r"a{5}b+c*");
    }
}
