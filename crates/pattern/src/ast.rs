//! The pattern AST of §2.1.
//!
//! A pattern is a sequence of quantified atoms over the generalization tree.
//! The paper deliberately restricts the language below general regular
//! expressions: quantifiers are `{N}`, `+` and `*`, atoms are characters,
//! classes, conjunctions (`α & β`) and non-recursive groups. Recursive
//! patterns such as `(α+)*` are rejected (see [`Pattern::validate`]), which
//! keeps reasoning, discovery and application tractable (§2.1).

use crate::class::CharClass;
use std::fmt;

/// An atom: the unit a quantifier applies to.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Atom {
    /// A concrete character — a leaf of the generalization tree.
    Literal(char),
    /// An intermediate node of the generalization tree (`\A`, `\LU`, …).
    Class(CharClass),
    /// Logical and of two atoms (`α & β` in the paper): a character matches
    /// iff it matches both sides.
    And(Box<Atom>, Box<Atom>),
    /// A parenthesized sequence. Quantified groups must not contain
    /// quantified elements — that would be a recursive pattern.
    Group(Vec<Element>),
}

impl Atom {
    /// Does a single character satisfy this atom? Only meaningful for
    /// character-level atoms; `Group` returns `None`.
    pub fn char_matches(&self, c: char) -> Option<bool> {
        match self {
            Atom::Literal(l) => Some(*l == c),
            Atom::Class(class) => Some(class.contains(c)),
            Atom::And(a, b) => Some(a.char_matches(c)? && b.char_matches(c)?),
            Atom::Group(_) => None,
        }
    }

    /// Is this a character-level atom (not a group)?
    pub fn is_char_level(&self) -> bool {
        !matches!(self, Atom::Group(_))
    }
}

/// A quantifier attached to an atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quant {
    /// Exactly one occurrence (no suffix in the concrete syntax).
    One,
    /// `{N}` — exactly `N` occurrences (`N ≥ 1`).
    Exactly(u32),
    /// `+` — one or more occurrences.
    Plus,
    /// `*` — zero or more occurrences (Kleene star).
    Star,
}

impl Quant {
    /// Minimum number of occurrences this quantifier admits.
    pub fn min(self) -> u32 {
        match self {
            Quant::One => 1,
            Quant::Exactly(n) => n,
            Quant::Plus => 1,
            Quant::Star => 0,
        }
    }

    /// Maximum number of occurrences, `None` meaning unbounded.
    pub fn max(self) -> Option<u32> {
        match self {
            Quant::One => Some(1),
            Quant::Exactly(n) => Some(n),
            Quant::Plus | Quant::Star => None,
        }
    }

    /// Is this quantifier unbounded (`+` or `*`)?
    pub fn is_unbounded(self) -> bool {
        self.max().is_none()
    }
}

/// A quantified atom.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Element {
    /// The atom being repeated.
    pub atom: Atom,
    /// How many occurrences are allowed.
    pub quant: Quant,
}

impl Element {
    /// Pair an atom with a quantifier.
    pub fn new(atom: Atom, quant: Quant) -> Self {
        Element { atom, quant }
    }

    /// A single literal character.
    pub fn literal(c: char) -> Self {
        Element::new(Atom::Literal(c), Quant::One)
    }

    /// A single class occurrence.
    pub fn class(class: CharClass) -> Self {
        Element::new(Atom::Class(class), Quant::One)
    }
}

/// Errors raised by [`Pattern::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternError {
    /// `(α+)*`-style recursion: a quantified group containing quantified
    /// elements. §2.1: "We do not consider recursive patterns".
    RecursivePattern,
    /// `{0}` — the paper's `α{N}` means N repetitions with `N ≥ 1`; zero
    /// repetitions are expressed with `*`.
    ZeroRepetition,
    /// A conjunction whose sides are groups (conjunction is char-level).
    GroupInConjunction,
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::RecursivePattern => {
                write!(f, "recursive patterns like (α+)* are not allowed")
            }
            PatternError::ZeroRepetition => write!(f, "repetition count must be at least 1"),
            PatternError::GroupInConjunction => {
                write!(f, "conjunction (&) applies to characters and classes only")
            }
        }
    }
}

impl std::error::Error for PatternError {}

/// A pattern: a sequence of quantified atoms (§2.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Pattern {
    elements: Vec<Element>,
}

impl Pattern {
    /// The empty pattern — matches only the empty string ε.
    pub fn empty() -> Self {
        Pattern::default()
    }

    /// Build a pattern from elements, validating the non-recursion rules.
    pub fn new(elements: Vec<Element>) -> Result<Self, PatternError> {
        let p = Pattern { elements };
        p.validate()?;
        Ok(p)
    }

    /// Build without validation. Used internally where elements are known
    /// valid by construction.
    pub(crate) fn from_elements_unchecked(elements: Vec<Element>) -> Self {
        Pattern { elements }
    }

    /// A pattern matching exactly the given string.
    pub fn constant(s: &str) -> Self {
        Pattern {
            elements: s.chars().map(Element::literal).collect(),
        }
    }

    /// The `\A*` pattern: matches any string.
    pub fn any_string() -> Self {
        Pattern {
            elements: vec![Element::new(Atom::Class(CharClass::Any), Quant::Star)],
        }
    }

    /// `class{n}` convenience constructor.
    pub fn class_repeat(class: CharClass, n: u32) -> Self {
        Pattern {
            elements: vec![Element::new(
                Atom::Class(class),
                if n == 1 {
                    Quant::One
                } else {
                    Quant::Exactly(n)
                },
            )],
        }
    }

    /// The element sequence of the pattern.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Is this the empty pattern ε?
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Number of elements (quantified atoms).
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Concatenate two patterns.
    pub fn concat(&self, other: &Pattern) -> Pattern {
        let mut elements = self.elements.clone();
        elements.extend(other.elements.iter().cloned());
        Pattern { elements }
    }

    /// Append one element.
    pub fn push(&mut self, element: Element) {
        self.elements.push(element);
    }

    /// Enforce the §2.1 restrictions: no recursion, `{N}` with `N ≥ 1`,
    /// char-level conjunction.
    pub fn validate(&self) -> Result<(), PatternError> {
        fn check_atom(atom: &Atom, under_quant: bool) -> Result<(), PatternError> {
            match atom {
                Atom::Literal(_) | Atom::Class(_) => Ok(()),
                Atom::And(a, b) => {
                    if !a.is_char_level() || !b.is_char_level() {
                        return Err(PatternError::GroupInConjunction);
                    }
                    check_atom(a, under_quant)?;
                    check_atom(b, under_quant)
                }
                Atom::Group(elements) => {
                    for e in elements {
                        let quantified = e.quant != Quant::One;
                        if under_quant && quantified {
                            return Err(PatternError::RecursivePattern);
                        }
                        if let Quant::Exactly(0) = e.quant {
                            return Err(PatternError::ZeroRepetition);
                        }
                        check_atom(&e.atom, under_quant || quantified)?;
                    }
                    Ok(())
                }
            }
        }
        for e in &self.elements {
            if let Quant::Exactly(0) = e.quant {
                return Err(PatternError::ZeroRepetition);
            }
            check_atom(&e.atom, e.quant != Quant::One)?;
        }
        Ok(())
    }

    /// If this pattern's language is a single string, return it.
    ///
    /// This is the notion of a *constant pattern* used throughout the paper
    /// (e.g. `M`, `Los Angeles`, `900`): tableau cells whose constrained part
    /// is constant make the PFD applicable to single tuples (§2.2).
    pub fn as_constant(&self) -> Option<String> {
        fn extend(out: &mut String, elements: &[Element]) -> Option<()> {
            for e in elements {
                let n = match e.quant {
                    Quant::One => 1,
                    Quant::Exactly(n) => n,
                    Quant::Plus | Quant::Star => return None,
                };
                match &e.atom {
                    Atom::Literal(c) => {
                        for _ in 0..n {
                            out.push(*c);
                        }
                    }
                    Atom::Group(inner) => {
                        for _ in 0..n {
                            extend(out, inner)?;
                        }
                    }
                    Atom::Class(_) | Atom::And(..) => return None,
                }
            }
            Some(())
        }
        let mut out = String::new();
        extend(&mut out, &self.elements)?;
        Some(out)
    }

    /// Is this pattern a constant (singleton language)?
    pub fn is_constant(&self) -> bool {
        self.as_constant().is_some()
    }

    /// The minimum length of a string in this pattern's language.
    pub fn min_len(&self) -> usize {
        fn elem_min(e: &Element) -> usize {
            let unit = match &e.atom {
                Atom::Literal(_) | Atom::Class(_) | Atom::And(..) => 1,
                Atom::Group(inner) => inner.iter().map(elem_min).sum(),
            };
            unit * e.quant.min() as usize
        }
        self.elements.iter().map(elem_min).sum()
    }

    /// The maximum length of a string in the language, `None` if unbounded.
    pub fn max_len(&self) -> Option<usize> {
        fn elem_max(e: &Element) -> Option<usize> {
            let unit = match &e.atom {
                Atom::Literal(_) | Atom::Class(_) | Atom::And(..) => 1,
                Atom::Group(inner) => inner.iter().map(elem_max).sum::<Option<usize>>()?,
            };
            Some(unit * e.quant.max()? as usize)
        }
        self.elements.iter().map(elem_max).sum()
    }

    /// Length of the pattern description (number of atoms counting
    /// repetitions, unbounded quantifiers counted once). Used for the
    /// small-model bounds of Theorems 2 and 3 (`∑ |t_ψ[A]|`).
    pub fn description_len(&self) -> usize {
        fn elem_len(e: &Element) -> usize {
            let unit = match &e.atom {
                Atom::Literal(_) | Atom::Class(_) | Atom::And(..) => 1,
                Atom::Group(inner) => inner.iter().map(elem_len).sum(),
            };
            match e.quant {
                Quant::One => unit,
                Quant::Exactly(n) => unit * n as usize,
                Quant::Plus | Quant::Star => unit,
            }
        }
        self.elements.iter().map(elem_len).sum::<usize>().max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_roundtrip() {
        let p = Pattern::constant("900");
        assert_eq!(p.as_constant().as_deref(), Some("900"));
        assert!(p.is_constant());
        assert_eq!(p.min_len(), 3);
        assert_eq!(p.max_len(), Some(3));
    }

    #[test]
    fn empty_pattern_is_epsilon_constant() {
        let p = Pattern::empty();
        assert_eq!(p.as_constant().as_deref(), Some(""));
        assert_eq!(p.min_len(), 0);
        assert_eq!(p.max_len(), Some(0));
    }

    #[test]
    fn any_string_is_not_constant() {
        let p = Pattern::any_string();
        assert!(!p.is_constant());
        assert_eq!(p.min_len(), 0);
        assert_eq!(p.max_len(), None);
    }

    #[test]
    fn class_repeat_lengths() {
        let p = Pattern::class_repeat(CharClass::Digit, 5);
        assert_eq!(p.min_len(), 5);
        assert_eq!(p.max_len(), Some(5));
        assert!(!p.is_constant());
    }

    #[test]
    fn recursive_group_rejected() {
        // (a+)* — quantified group with a quantified element inside.
        let inner = vec![Element::new(Atom::Literal('a'), Quant::Plus)];
        let p = Pattern::new(vec![Element::new(Atom::Group(inner), Quant::Star)]);
        assert_eq!(p.unwrap_err(), PatternError::RecursivePattern);
    }

    #[test]
    fn quantified_group_of_plain_atoms_allowed() {
        // (ab){3} — fine: no quantifier inside the group.
        let inner = vec![Element::literal('a'), Element::literal('b')];
        let p = Pattern::new(vec![Element::new(Atom::Group(inner), Quant::Exactly(3))])
            .expect("non-recursive group must validate");
        assert_eq!(p.as_constant().as_deref(), Some("ababab"));
    }

    #[test]
    fn unquantified_group_may_contain_quantifiers() {
        // (a+b) with no outer quantifier is fine.
        let inner = vec![
            Element::new(Atom::Literal('a'), Quant::Plus),
            Element::literal('b'),
        ];
        Pattern::new(vec![Element::new(Atom::Group(inner), Quant::One)])
            .expect("unquantified group with inner quantifier must validate");
    }

    #[test]
    fn zero_repetition_rejected() {
        let p = Pattern::new(vec![Element::new(Atom::Literal('a'), Quant::Exactly(0))]);
        assert_eq!(p.unwrap_err(), PatternError::ZeroRepetition);
    }

    #[test]
    fn conjunction_of_groups_rejected() {
        let g = Atom::Group(vec![Element::literal('a')]);
        let p = Pattern::new(vec![Element::new(
            Atom::And(Box::new(g), Box::new(Atom::Literal('a'))),
            Quant::One,
        )]);
        assert_eq!(p.unwrap_err(), PatternError::GroupInConjunction);
    }

    #[test]
    fn conjunction_char_matching() {
        // \LU & A matches only 'A'.
        let atom = Atom::And(
            Box::new(Atom::Class(CharClass::Upper)),
            Box::new(Atom::Literal('A')),
        );
        assert_eq!(atom.char_matches('A'), Some(true));
        assert_eq!(atom.char_matches('B'), Some(false));
        assert_eq!(atom.char_matches('a'), Some(false));
    }

    #[test]
    fn description_len_counts_repetitions() {
        let p = Pattern::class_repeat(CharClass::Digit, 5);
        assert_eq!(p.description_len(), 5);
        assert_eq!(Pattern::any_string().description_len(), 1);
    }

    #[test]
    fn concat_preserves_order() {
        let p = Pattern::constant("ab").concat(&Pattern::constant("cd"));
        assert_eq!(p.as_constant().as_deref(), Some("abcd"));
    }
}
