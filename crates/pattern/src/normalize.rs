//! Pattern normalization: a canonical form that merges adjacent quantified
//! atoms without changing the language.
//!
//! Concatenating pattern segments (`pre · Q · post` in
//! [`crate::ConstrainedPattern::full_pattern`], or machine-built tableaux)
//! produces shapes like `\D\D{2}` or `\D+\D*`; normalization rewrites them
//! to `\D{3}` and `\D+`. Useful both for display quality and because smaller
//! patterns make the NFA constructions in matching and containment cheaper.

use crate::ast::{Atom, Element, Pattern, Quant};

/// Occurrence range of a quantifier: `(min, max)`, `None` = unbounded.
fn range(q: Quant) -> (u32, Option<u32>) {
    (q.min(), q.max())
}

/// The canonical element sequence denoting `atom{min..max}`.
fn elements_for_range(atom: Atom, min: u32, max: Option<u32>) -> Vec<Element> {
    match (min, max) {
        (0, Some(0)) => vec![],
        (n, Some(m)) if n == m => {
            vec![Element::new(
                atom,
                if n == 1 {
                    Quant::One
                } else {
                    Quant::Exactly(n)
                },
            )]
        }
        (0, None) => vec![Element::new(atom, Quant::Star)],
        (1, None) => vec![Element::new(atom, Quant::Plus)],
        (n, None) => vec![
            Element::new(
                atom.clone(),
                if n == 1 {
                    Quant::One
                } else {
                    Quant::Exactly(n)
                },
            ),
            Element::new(atom, Quant::Star),
        ],
        // Bounded-but-unequal ranges don't exist in the source language
        // (quantifiers are {N}, +, *), so sums never produce them.
        (_, Some(_)) => unreachable!("no bounded-unequal quantifier ranges"),
    }
}

fn normalize_atom(atom: &Atom) -> Atom {
    match atom {
        Atom::Group(elements) => {
            let inner = normalize_elements(elements);
            // A group wrapping a single unquantified atom is redundant; a
            // group will be inlined by the caller when it carries no
            // quantifier of its own.
            Atom::Group(inner)
        }
        Atom::And(a, b) => Atom::And(Box::new(normalize_atom(a)), Box::new(normalize_atom(b))),
        other => other.clone(),
    }
}

fn normalize_elements(elements: &[Element]) -> Vec<Element> {
    // First normalize children and inline unquantified groups.
    let mut flat: Vec<Element> = Vec::with_capacity(elements.len());
    for e in elements {
        let atom = normalize_atom(&e.atom);
        match (atom, e.quant) {
            (Atom::Group(inner), Quant::One) => flat.extend(inner),
            (Atom::Group(inner), quant) if inner.len() == 1 && inner[0].quant == Quant::One => {
                // (a){N} → a{N}
                flat.push(Element::new(inner[0].atom.clone(), quant));
            }
            (atom, quant) => flat.push(Element::new(atom, quant)),
        }
    }

    // Then merge runs of identical atoms by summing occurrence ranges.
    let mut out: Vec<Element> = Vec::with_capacity(flat.len());
    let mut i = 0;
    while i < flat.len() {
        let atom = flat[i].atom.clone();
        let (mut min, mut max) = range(flat[i].quant);
        let mut j = i + 1;
        while j < flat.len() && flat[j].atom == atom {
            let (m2, x2) = range(flat[j].quant);
            min += m2;
            max = match (max, x2) {
                (Some(a), Some(b)) => Some(a + b),
                _ => None,
            };
            j += 1;
        }
        out.extend(elements_for_range(atom, min, max));
        i = j;
    }
    out
}

/// Normalize a pattern: inline trivial groups and merge adjacent identical
/// atoms. The language is unchanged.
pub fn normalize(pattern: &Pattern) -> Pattern {
    Pattern::from_elements_unchecked(normalize_elements(pattern.elements()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contains::equivalent;
    use crate::parse::parse_pattern;

    fn check(src: &str, expected: &str) {
        let p = parse_pattern(src).unwrap();
        let n = normalize(&p);
        assert_eq!(n.to_string(), expected, "normalize({src})");
        assert!(
            equivalent(&p, &n),
            "normalization changed the language of {src}"
        );
    }

    #[test]
    fn merges_adjacent_repeats() {
        check(r"\D\D{2}", r"\D{3}");
        check(r"\D{2}\D{3}", r"\D{5}");
        check(r"aa", r"a{2}");
        check(r"\D\D\D\D\D", r"\D{5}");
    }

    #[test]
    fn merges_unbounded_quantifiers() {
        check(r"a*a*", r"a*");
        check(r"a+a*", r"a+");
        check(r"a*a+", r"a+");
        check(r"a+a+", r"a{2}a*");
        check(r"a{2}a*", r"a{2}a*");
        check(r"a{2}a+", r"a{3}a*");
    }

    #[test]
    fn keeps_distinct_atoms_apart() {
        check(r"\D\LU", r"\D\LU");
        check(r"ab", r"ab");
        check(r"\D*\LL*", r"\D*\LL*");
    }

    #[test]
    fn inlines_trivial_groups() {
        check(r"(ab)c", r"abc");
        check(r"(a){3}", r"a{3}");
        check(r"(\D)*", r"\D*");
    }

    #[test]
    fn group_repetition_preserved_when_needed() {
        // (ab){2} cannot be flattened without changing structure semantics;
        // the language is abab either way, but we keep the group.
        let p = parse_pattern(r"(ab){2}").unwrap();
        let n = normalize(&p);
        assert!(equivalent(&p, &n));
    }

    #[test]
    fn idempotent() {
        for src in [r"\D\D{2}", r"a*a+", r"(ab)c", r"\LU\LL*\ \A*", ""] {
            let once = normalize(&parse_pattern(src).unwrap());
            let twice = normalize(&once);
            assert_eq!(once, twice, "normalize must be idempotent on {src}");
        }
    }

    #[test]
    fn concatenated_segments_normalize() {
        // The full_pattern of [\D{3}]\D{2} is \D{3}\D{2} → \D{5}.
        let cp: crate::ConstrainedPattern = r"[\D{3}]\D{2}".parse().unwrap();
        let full = normalize(&cp.full_pattern());
        assert_eq!(full.to_string(), r"\D{5}");
    }

    #[test]
    fn empty_pattern_is_fixed_point() {
        let p = parse_pattern("").unwrap();
        assert_eq!(normalize(&p), p);
    }
}
