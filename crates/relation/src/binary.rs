//! Low-level binary codec primitives for the on-disk snapshot format.
//!
//! Everything the snapshot layer persists is built from four primitives:
//!
//! * **varints** — LEB128-style `u64` encoding, 1–10 bytes;
//! * **length-prefixed strings** — varint byte length + UTF-8 payload;
//! * **front-coded string tables** — sorted string lists where each entry
//!   stores only the byte length it shares with its predecessor plus the
//!   fresh suffix, which compresses fragment vocabularies and per-column
//!   value dictionaries well;
//! * **delta-gap posting blocks** — a [`PostingList`] as universe + length +
//!   varint gaps between consecutive sorted row ids.
//!
//! On top of those sits the *section container*: a file starts with the
//! magic `PFDS`, a format version, and a section table of
//! `(id, offset, length, checksum)` entries followed by the raw section
//! payloads. Each section carries its own FNV-1a checksum, so readers can
//! validate and decode sections independently — and in parallel — without
//! touching the rest of the file.
//!
//! This module deliberately knows nothing about relations, PFDs, or
//! engines; the semantic layout lives in `pfd_core::snapshot`.

// Decode paths here run against arbitrary on-disk bytes; a panic in them is
// a recovery bug, so unwrapping is denied outright (tests opt back in).
#![deny(clippy::unwrap_used)]

use std::fmt;

use crate::io::SharedBytes;
use crate::postings::PostingList;

/// Magic bytes opening every snapshot file.
pub const MAGIC: [u8; 4] = *b"PFDS";

/// Current container format version. Bump on any incompatible layout change.
pub const FORMAT_VERSION: u32 = 1;

/// Errors surfaced while encoding or decoding binary snapshot data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinaryError {
    /// The file does not start with the `PFDS` magic.
    BadMagic,
    /// The container was written by an unsupported format version.
    UnsupportedVersion(u32),
    /// The input ended before a complete value could be decoded.
    Truncated,
    /// A section's stored checksum does not match its payload.
    Checksum {
        /// Section id whose payload failed validation.
        section: u32,
    },
    /// The data was structurally invalid (bad varint, non-UTF-8 string,
    /// out-of-order table, overlapping or out-of-bounds section, ...).
    Corrupt(String),
}

impl fmt::Display for BinaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinaryError::BadMagic => write!(f, "not a PFD snapshot (bad magic)"),
            BinaryError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot format version {v} (this build reads {FORMAT_VERSION})"
                )
            }
            BinaryError::Truncated => write!(f, "snapshot data is truncated"),
            BinaryError::Checksum { section } => {
                write!(f, "checksum mismatch in snapshot section {section}")
            }
            BinaryError::Corrupt(msg) => write!(f, "corrupt snapshot data: {msg}"),
        }
    }
}

impl std::error::Error for BinaryError {}

fn corrupt(msg: impl Into<String>) -> BinaryError {
    BinaryError::Corrupt(msg.into())
}

// ---------------------------------------------------------------------------
// Checksums
// ---------------------------------------------------------------------------

/// 64-bit FNV-1a hash of `data`, used as the per-section checksum.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Varints
// ---------------------------------------------------------------------------

/// Appends `value` to `out` as a LEB128 varint (7 bits per byte, high bit
/// marks continuation).
pub fn put_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// A cursor over a byte slice with primitive decoders.
///
/// All `get_*` methods advance past the value they decode and fail with
/// [`BinaryError::Truncated`] rather than panicking on short input.
pub struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Wraps `data` with the read position at the start.
    pub fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Byte offset of the read position from the start of the input —
    /// error reports use this to name where decoding failed.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// True once every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Reads exactly `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], BinaryError> {
        if self.remaining() < n {
            return Err(BinaryError::Truncated);
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Decodes a LEB128 varint.
    #[inline]
    pub fn get_varint(&mut self) -> Result<u64, BinaryError> {
        // Fast path for the overwhelmingly common single-byte values (cell
        // vocabulary indexes, posting gaps, small counts).
        if let Some(&byte) = self.data.get(self.pos) {
            if byte & 0x80 == 0 {
                self.pos += 1;
                return Ok(u64::from(byte));
            }
        }
        self.get_varint_slow()
    }

    fn get_varint_slow(&mut self) -> Result<u64, BinaryError> {
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let &byte = self.data.get(self.pos).ok_or(BinaryError::Truncated)?;
            self.pos += 1;
            if shift == 63 && byte > 1 {
                return Err(corrupt("varint overflows u64"));
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(corrupt("varint longer than 10 bytes"));
            }
        }
    }

    /// Decodes a varint *count* (of items still to be read from this
    /// cursor) and narrows it to `usize`, bounds-checked against the
    /// remaining input so hostile lengths cannot trigger huge allocations.
    /// For varints that are values rather than counts (row ids, vocabulary
    /// indexes), use [`Cursor::get_index`].
    pub fn get_len(&mut self) -> Result<usize, BinaryError> {
        let n = self.get_index()?;
        if n > self.remaining().saturating_mul(8) + 64 {
            return Err(corrupt(format!(
                "declared length {n} exceeds remaining input"
            )));
        }
        Ok(n)
    }

    /// Decodes a varint value as `usize` with no remaining-input bound —
    /// for indexes and ids whose magnitude is unrelated to the input size.
    pub fn get_index(&mut self) -> Result<usize, BinaryError> {
        let v = self.get_varint()?;
        usize::try_from(v).map_err(|_| corrupt("value does not fit usize"))
    }

    /// Decodes a length-prefixed UTF-8 string.
    pub fn get_string(&mut self) -> Result<String, BinaryError> {
        let n = self.get_len()?;
        let bytes = self.get_bytes(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("string is not valid UTF-8"))
    }

    /// Raw input bytes between two previously observed positions — lets a
    /// decoder validate a varint run and then adopt its bytes wholesale.
    pub(crate) fn bytes_between(&self, start: usize, end: usize) -> &'a [u8] {
        &self.data[start..end]
    }
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_string(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------------
// Front-coded string tables
// ---------------------------------------------------------------------------

/// Byte length of the longest common prefix of `a` and `b` that falls on a
/// UTF-8 character boundary of both.
fn shared_prefix(a: &str, b: &str) -> usize {
    let max = a
        .as_bytes()
        .iter()
        .zip(b.as_bytes())
        .take_while(|(x, y)| x == y)
        .count();
    let mut n = max;
    while n > 0 && (!a.is_char_boundary(n) || !b.is_char_boundary(n)) {
        n -= 1;
    }
    n
}

/// Encodes a **sorted** list of strings with front coding: each entry is
/// `(shared-prefix-len, suffix)` relative to its predecessor.
///
/// The caller must pass the strings in ascending order; [`decode_string_table`]
/// enforces that invariant on the way back in, which makes the encoding
/// canonical (one byte stream per string set).
pub fn encode_string_table<S: AsRef<str>>(out: &mut Vec<u8>, strings: &[S]) {
    put_varint(out, strings.len() as u64);
    let mut prev = "";
    for s in strings {
        let s = s.as_ref();
        let shared = shared_prefix(prev, s);
        put_varint(out, shared as u64);
        put_string(out, &s[shared..]);
        prev = s;
    }
}

/// Decodes a front-coded string table, verifying sortedness.
pub fn decode_string_table(cur: &mut Cursor<'_>) -> Result<Vec<String>, BinaryError> {
    let count = cur.get_len()?;
    let mut strings = Vec::with_capacity(count.min(1 << 20));
    let mut prev = String::new();
    for _ in 0..count {
        let shared = cur.get_index()?;
        if shared > prev.len() || !prev.is_char_boundary(shared) {
            return Err(corrupt("front-coded prefix exceeds previous entry"));
        }
        let suffix = cur.get_string()?;
        let mut s = String::with_capacity(shared + suffix.len());
        s.push_str(&prev[..shared]);
        s.push_str(&suffix);
        if !strings.is_empty() && s <= prev {
            return Err(corrupt("string table entries not strictly ascending"));
        }
        prev = s.clone();
        strings.push(s);
    }
    Ok(strings)
}

// ---------------------------------------------------------------------------
// Posting lists
// ---------------------------------------------------------------------------

/// Encodes a posting list as `universe, len, first, gap, gap, ...` varints.
///
/// Row ids are sorted and distinct, so every gap after the first id is at
/// least 1 and the stream is self-validating on decode. The stream is
/// independent of the in-memory representation: block-compressed lists
/// contribute their block payloads wholesale (one inter-block gap varint
/// per block, then a byte copy), so the bytes are identical to encoding the
/// plain sorted run id by id.
pub fn encode_postings(out: &mut Vec<u8>, list: &PostingList) {
    put_varint(out, list.universe() as u64);
    put_varint(out, list.len() as u64);
    list.write_wire_gaps(out);
}

/// Decodes a posting list written by [`encode_postings`].
///
/// Lists that would land in the block-compressed representation are built
/// directly from the wire bytes: each 128-entry run of gaps is validated
/// varint by varint and then adopted as a block payload without
/// re-encoding.
pub fn decode_postings(cur: &mut Cursor<'_>) -> Result<PostingList, BinaryError> {
    decode_postings_impl(cur, None)
}

/// Zero-copy variant of [`decode_postings`]: identical wire validation, but
/// a list that lands in the block-compressed representation *aliases* its
/// gap bytes inside `buf` instead of copying them, pinning the shared
/// buffer (typically an mmap'd snapshot) until the list is dropped or
/// mutated.
///
/// `base` is the byte offset of the cursor's underlying slice within
/// `buf` — i.e. the cursor must be reading `buf[base..base + n]` for some
/// `n`. Sparse and dense lists decode exactly as in [`decode_postings`];
/// only blocked payloads borrow.
pub fn decode_postings_shared(
    cur: &mut Cursor<'_>,
    buf: &SharedBytes,
    base: usize,
) -> Result<PostingList, BinaryError> {
    debug_assert!(
        base + cur.data.len() <= buf.len() && buf[base..].starts_with(cur.data),
        "cursor does not read from buf[base..]"
    );
    decode_postings_impl(cur, Some((buf, base)))
}

fn decode_postings_impl(
    cur: &mut Cursor<'_>,
    shared: Option<(&SharedBytes, usize)>,
) -> Result<PostingList, BinaryError> {
    // The universe is a bound, not an item count, so it must not go through
    // the `get_len` remaining-input guard.
    let universe = cur.get_index()?;
    let len = cur.get_len()?;
    if PostingList::wire_prefers_blocked(len as u64, universe as u64) {
        return decode_postings_blocked(cur, universe, len, shared);
    }
    let mut ids = Vec::with_capacity(len.min(1 << 22));
    let mut prev: Option<u32> = None;
    for _ in 0..len {
        let raw = cur.get_varint()?;
        let id = match prev {
            None => u32::try_from(raw).map_err(|_| corrupt("row id overflows u32"))?,
            Some(p) => {
                if raw == 0 {
                    return Err(corrupt("zero gap in posting list"));
                }
                let id = u64::from(p) + raw;
                u32::try_from(id).map_err(|_| corrupt("row id overflows u32"))?
            }
        };
        if id as usize >= universe {
            return Err(corrupt("posting id outside its universe"));
        }
        ids.push(id);
        prev = Some(id);
    }
    Ok(PostingList::from_sorted(ids, universe))
}

/// Blocked decode path: validates each 128-entry gap run with the same
/// checks (and error messages) as the id-by-id loop, then either copies the
/// run's bytes into an owned block buffer (`shared` is `None`) or records
/// its extent so the finished list aliases the wire bytes in place.
///
/// In the shared form the aliased window spans from the first block's
/// payload to the last's; the wire's inter-block gap varints sit *inside*
/// the window, between block extents — which is why [`BlockMeta`] carries
/// an explicit `bytes_len` instead of deriving payload ends from the next
/// block's offset.
fn decode_postings_blocked(
    cur: &mut Cursor<'_>,
    universe: usize,
    len: usize,
    shared: Option<(&SharedBytes, usize)>,
) -> Result<PostingList, BinaryError> {
    use crate::postings::{BlockMeta, BLOCK_LEN};
    let mut bytes: Vec<u8> = Vec::new();
    if shared.is_none() {
        bytes.reserve(len.min(1 << 22));
    }
    let mut metas: Vec<BlockMeta> = Vec::with_capacity(len.div_ceil(BLOCK_LEN).min(1 << 16));
    let mut prev: Option<u32> = None;
    let mut remaining = len;
    // Cursor position where the first block's payload begins — the origin
    // both of the aliased window and of shared-form block offsets.
    let mut region_start = 0usize;
    while remaining > 0 {
        let n = remaining.min(BLOCK_LEN);
        // Leading varint: absolute first id for the first block, the gap
        // from the previous block's last id otherwise.
        let raw = cur.get_varint()?;
        let first = match prev {
            None => u32::try_from(raw).map_err(|_| corrupt("row id overflows u32"))?,
            Some(p) => {
                if raw == 0 {
                    return Err(corrupt("zero gap in posting list"));
                }
                u32::try_from(u64::from(p) + raw).map_err(|_| corrupt("row id overflows u32"))?
            }
        };
        if first as usize >= universe {
            return Err(corrupt("posting id outside its universe"));
        }
        let start = cur.position();
        if prev.is_none() {
            region_start = start;
        }
        let mut last = first;
        for _ in 1..n {
            let gap = cur.get_varint()?;
            if gap == 0 {
                return Err(corrupt("zero gap in posting list"));
            }
            last = u32::try_from(u64::from(last) + gap)
                .map_err(|_| corrupt("row id overflows u32"))?;
            if last as usize >= universe {
                return Err(corrupt("posting id outside its universe"));
            }
        }
        let payload_len = cur.position() - start;
        let offset = if shared.is_some() {
            (start - region_start) as u32
        } else {
            let o = bytes.len() as u32;
            bytes.extend_from_slice(cur.bytes_between(start, cur.position()));
            o
        };
        metas.push(BlockMeta {
            first,
            last,
            offset,
            bytes_len: payload_len as u32,
            count: n as u32,
        });
        prev = Some(last);
        remaining -= n;
    }
    match shared {
        None => Ok(PostingList::from_blocked_raw(
            universe as u32,
            len as u32,
            bytes,
            metas,
        )),
        Some((buf, base)) => Ok(PostingList::from_blocked_shared(
            universe as u32,
            len as u32,
            buf.clone(),
            base + region_start,
            cur.position() - region_start,
            metas,
        )),
    }
}

// ---------------------------------------------------------------------------
// Section container
// ---------------------------------------------------------------------------

/// Reads a little-endian `u32` at `at` from a slice already known to be
/// long enough (callers bounds-check whole table rows up front).
fn read_u32_le(data: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([data[at], data[at + 1], data[at + 2], data[at + 3]])
}

/// Reads a little-endian `u64` at `at`; same contract as [`read_u32_le`].
fn read_u64_le(data: &[u8], at: usize) -> u64 {
    u64::from_le_bytes([
        data[at],
        data[at + 1],
        data[at + 2],
        data[at + 3],
        data[at + 4],
        data[at + 5],
        data[at + 6],
        data[at + 7],
    ])
}

/// One entry in the section table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SectionEntry {
    id: u32,
    offset: u64,
    len: u64,
    checksum: u64,
}

/// Builds a sectioned snapshot file: magic, version, section table, payloads.
///
/// Sections are laid out in the order they are added; ids must be unique.
pub struct SectionWriter {
    sections: Vec<(u32, Vec<u8>)>,
}

impl SectionWriter {
    /// Starts an empty container.
    pub fn new() -> Self {
        SectionWriter {
            sections: Vec::new(),
        }
    }

    /// Adds a section payload under `id`.
    ///
    /// # Panics
    /// Panics if `id` was already added — section ids are compile-time
    /// constants in the snapshot layer, so a duplicate is a programming
    /// error, not an input error.
    pub fn add(&mut self, id: u32, payload: Vec<u8>) {
        assert!(
            self.sections.iter().all(|(existing, _)| *existing != id),
            "duplicate snapshot section id {id}"
        );
        self.sections.push((id, payload));
    }

    /// Serializes the container to its final byte layout.
    pub fn finish(self) -> Vec<u8> {
        // Header: magic(4) + version(4) + count(4), then one fixed-width
        // table row per section (id:4, offset:8, len:8, checksum:8). Fixed
        // widths keep the payload offsets computable before writing them.
        let table_row = 4 + 8 + 8 + 8;
        let header_len = 4 + 4 + 4 + self.sections.len() * table_row;
        let total: usize = header_len + self.sections.iter().map(|(_, p)| p.len()).sum::<usize>();
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        let mut offset = header_len as u64;
        for (id, payload) in &self.sections {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&fnv1a(payload).to_le_bytes());
            offset += payload.len() as u64;
        }
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        out
    }
}

impl Default for SectionWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// Parses a sectioned snapshot file and serves checksum-validated payloads.
pub struct SectionReader<'a> {
    data: &'a [u8],
    entries: Vec<SectionEntry>,
}

impl<'a> SectionReader<'a> {
    /// Validates the magic, version, and section table of `data`.
    ///
    /// Payload checksums are validated lazily in [`SectionReader::section`],
    /// so opening a large file is cheap and sections can be verified in
    /// parallel by independent callers.
    pub fn open(data: &'a [u8]) -> Result<Self, BinaryError> {
        if data.len() < 12 {
            return Err(BinaryError::Truncated);
        }
        if data[..4] != MAGIC {
            return Err(BinaryError::BadMagic);
        }
        let version = read_u32_le(data, 4);
        if version != FORMAT_VERSION {
            return Err(BinaryError::UnsupportedVersion(version));
        }
        let count = read_u32_le(data, 8) as usize;
        let table_row = 4 + 8 + 8 + 8;
        let header_len = 12 + count * table_row;
        if data.len() < header_len {
            return Err(BinaryError::Truncated);
        }
        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            let row = &data[12 + i * table_row..12 + (i + 1) * table_row];
            let entry = SectionEntry {
                id: read_u32_le(row, 0),
                offset: read_u64_le(row, 4),
                len: read_u64_le(row, 12),
                checksum: read_u64_le(row, 20),
            };
            if entries.iter().any(|e: &SectionEntry| e.id == entry.id) {
                return Err(corrupt(format!("duplicate section id {}", entry.id)));
            }
            let end = entry
                .offset
                .checked_add(entry.len)
                .ok_or_else(|| corrupt("section extent overflows"))?;
            if entry.offset < header_len as u64 || end > data.len() as u64 {
                return Err(BinaryError::Truncated);
            }
            entries.push(entry);
        }
        Ok(SectionReader { data, entries })
    }

    /// Ids of every section present, in file order.
    pub fn section_ids(&self) -> Vec<u32> {
        self.entries.iter().map(|e| e.id).collect()
    }

    /// Returns the checksum-validated payload of section `id`, or `None`
    /// if the container has no such section.
    pub fn section(&self, id: u32) -> Result<Option<&'a [u8]>, BinaryError> {
        let Some(entry) = self.entries.iter().find(|e| e.id == id) else {
            return Ok(None);
        };
        let payload = &self.data[entry.offset as usize..(entry.offset + entry.len) as usize];
        if fnv1a(payload) != entry.checksum {
            return Err(BinaryError::Checksum { section: id });
        }
        Ok(Some(payload))
    }

    /// Like [`SectionReader::section`] but treats a missing section as
    /// corruption — for sections the format makes mandatory.
    pub fn require(&self, id: u32) -> Result<&'a [u8], BinaryError> {
        self.section(id)?
            .ok_or_else(|| corrupt(format!("missing required section {id}")))
    }
}

/// An owning [`SectionReader`] over a [`SharedBytes`] buffer — the entry
/// point of the zero-copy snapshot tier.
///
/// Where `SectionReader` borrows a byte slice, this reader holds the
/// (cheaply clonable, possibly mmap'd) buffer itself, and each section
/// lookup also reports the payload's absolute offset within the buffer, so
/// decoders like [`decode_postings_shared`] can alias posting payloads in
/// place instead of copying them out of the file image.
///
/// Checksum validation in [`section`](SharedSectionReader::section) reads
/// every payload byte, so an mmap'd file is paged in on first access — the
/// win of the shared tier is skipping the copy and the per-list
/// allocations, not skipping the read.
pub struct SharedSectionReader {
    data: SharedBytes,
    entries: Vec<SectionEntry>,
}

impl SharedSectionReader {
    /// Validates the magic, version, and section table of `data`; payload
    /// checksums are validated lazily per section, as in
    /// [`SectionReader::open`].
    pub fn open(data: SharedBytes) -> Result<Self, BinaryError> {
        let entries = SectionReader::open(&data)?.entries;
        Ok(SharedSectionReader { data, entries })
    }

    /// The underlying shared buffer.
    pub fn buffer(&self) -> &SharedBytes {
        &self.data
    }

    /// Ids of every section present, in file order.
    pub fn section_ids(&self) -> Vec<u32> {
        self.entries.iter().map(|e| e.id).collect()
    }

    /// Returns the checksum-validated payload of section `id` together
    /// with its absolute byte offset in [`buffer`](Self::buffer), or
    /// `None` if the container has no such section. The offset is the
    /// `base` to pass to [`decode_postings_shared`] when decoding from the
    /// start of the payload.
    pub fn section(&self, id: u32) -> Result<Option<(&[u8], usize)>, BinaryError> {
        let Some(entry) = self.entries.iter().find(|e| e.id == id) else {
            return Ok(None);
        };
        let offset = entry.offset as usize;
        let payload = &self.data[offset..offset + entry.len as usize];
        if fnv1a(payload) != entry.checksum {
            return Err(BinaryError::Checksum { section: id });
        }
        Ok(Some((payload, offset)))
    }

    /// Like [`SharedSectionReader::section`] but treats a missing section
    /// as corruption — for sections the format makes mandatory.
    pub fn require(&self, id: u32) -> Result<(&[u8], usize), BinaryError> {
        self.section(id)?
            .ok_or_else(|| corrupt(format!("missing required section {id}")))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_boundaries() {
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut buf = Vec::new();
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut cur = Cursor::new(&buf);
        for &v in &values {
            assert_eq!(cur.get_varint().unwrap(), v);
        }
        assert!(cur.is_empty());
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut cur = Cursor::new(&[0x80, 0x80]);
        assert_eq!(cur.get_varint(), Err(BinaryError::Truncated));
        // 11 continuation bytes can never be a valid u64.
        let bad = [0xffu8; 11];
        let mut cur = Cursor::new(&bad);
        assert!(matches!(cur.get_varint(), Err(BinaryError::Corrupt(_))));
    }

    #[test]
    fn string_round_trips_unicode() {
        let mut buf = Vec::new();
        put_string(&mut buf, "héllo, wörld");
        put_string(&mut buf, "");
        let mut cur = Cursor::new(&buf);
        assert_eq!(cur.get_string().unwrap(), "héllo, wörld");
        assert_eq!(cur.get_string().unwrap(), "");
    }

    #[test]
    fn string_table_front_codes_and_round_trips() {
        let strings: Vec<String> = ["", "a", "ab", "abc", "abd", "b", "ba"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut buf = Vec::new();
        encode_string_table(&mut buf, &strings);
        let mut cur = Cursor::new(&buf);
        assert_eq!(decode_string_table(&mut cur).unwrap(), strings);
        assert!(cur.is_empty());
    }

    #[test]
    fn string_table_prefix_respects_utf8_boundaries() {
        // "é" (2 bytes) vs "è" (2 bytes) share their first byte only, which
        // is not a char boundary; the encoder must back off to 0.
        let strings: Vec<String> = ["è", "é"].iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        encode_string_table(&mut buf, &strings);
        let mut cur = Cursor::new(&buf);
        assert_eq!(decode_string_table(&mut cur).unwrap(), strings);
    }

    #[test]
    fn string_table_rejects_unsorted_input_on_decode() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 2);
        put_varint(&mut buf, 0);
        put_string(&mut buf, "b");
        put_varint(&mut buf, 0);
        put_string(&mut buf, "a");
        let mut cur = Cursor::new(&buf);
        assert!(matches!(
            decode_string_table(&mut cur),
            Err(BinaryError::Corrupt(_))
        ));
    }

    #[test]
    fn postings_round_trip_dense_and_sparse() {
        for ids in [
            vec![],
            vec![0],
            vec![0, 1, 2, 3],
            vec![5, 100, 10_000, 10_001],
        ] {
            let list = PostingList::from_sorted(ids.clone(), 20_000);
            let mut buf = Vec::new();
            encode_postings(&mut buf, &list);
            let mut cur = Cursor::new(&buf);
            let back = decode_postings(&mut cur).unwrap();
            assert_eq!(back.to_vec(), ids);
            assert_eq!(back.universe(), 20_000);
        }
    }

    #[test]
    fn postings_blocked_round_trip_is_wholesale_and_canonical() {
        let ids: Vec<u32> = (0..1000u32).map(|i| i * 37).collect();
        let list = PostingList::from_sorted(ids.clone(), 1_000_000);
        assert!(list.is_blocked_repr());
        let mut buf = Vec::new();
        encode_postings(&mut buf, &list);
        // The wire bytes must match encoding the plain run id by id — the
        // stream is independent of block partitioning.
        let mut plain = Vec::new();
        put_varint(&mut plain, 1_000_000);
        put_varint(&mut plain, ids.len() as u64);
        let mut prev: Option<u32> = None;
        for &id in &ids {
            match prev {
                None => put_varint(&mut plain, u64::from(id)),
                Some(p) => put_varint(&mut plain, u64::from(id - p)),
            }
            prev = Some(id);
        }
        assert_eq!(buf, plain);
        // Decode builds the blocked form directly and re-encodes stably.
        let mut cur = Cursor::new(&buf);
        let back = decode_postings(&mut cur).unwrap();
        assert!(cur.is_empty());
        assert!(back.is_blocked_repr());
        assert_eq!(back.to_vec(), ids);
        assert_eq!(back, list);
        let mut buf2 = Vec::new();
        encode_postings(&mut buf2, &back);
        assert_eq!(buf, buf2, "save ∘ load ∘ save is byte-stable");
    }

    #[test]
    fn shared_postings_decode_aliases_wire_bytes() {
        let ids: Vec<u32> = (0..1000u32).map(|i| i * 37).collect();
        let list = PostingList::from_sorted(ids.clone(), 1_000_000);
        assert!(list.is_blocked_repr());
        // Embed the wire bytes mid-buffer so `base` arithmetic is exercised.
        let mut file = vec![0xEEu8; 13];
        let base = file.len();
        encode_postings(&mut file, &list);
        encode_postings(&mut file, &list); // second copy: cursor advances past the first
        let shared = SharedBytes::from_vec(file);

        let wire = &shared[base..];
        let mut cur = Cursor::new(wire);
        let a = decode_postings_shared(&mut cur, &shared, base).unwrap();
        let b = decode_postings_shared(&mut cur, &shared, base).unwrap();
        assert!(cur.is_empty());
        for back in [&a, &b] {
            assert!(back.is_shared_payload(), "blocked payload must alias");
            assert_eq!(*back, list);
            assert_eq!(back.to_vec(), ids);
            let mut re = Vec::new();
            encode_postings(&mut re, back);
            let mut owned = Vec::new();
            encode_postings(&mut owned, &list);
            assert_eq!(re, owned, "shared form re-encodes byte-identically");
        }

        // Sparse and dense tiers never alias — they decode to owned forms.
        let small = PostingList::from_sorted(vec![3, 9, 12], 50);
        let mut wire2 = Vec::new();
        encode_postings(&mut wire2, &small);
        let shared2 = SharedBytes::from_vec(wire2);
        let mut cur2 = Cursor::new(&shared2);
        let back2 = decode_postings_shared(&mut cur2, &shared2, 0).unwrap();
        assert!(!back2.is_shared_payload());
        assert_eq!(back2, small);
    }

    #[test]
    fn shared_postings_decode_rejects_the_same_corruption() {
        let ids: Vec<u32> = (0..300u32).map(|i| i * 5 + 1).collect();
        let list = PostingList::from_sorted(ids, 100_000);
        let mut wire = Vec::new();
        encode_postings(&mut wire, &list);
        // Truncate mid-stream: both decoders must agree on the error.
        let cut = wire.len() - 10;
        let shared = SharedBytes::from_vec(wire[..cut].to_vec());
        let mut cur = Cursor::new(&shared);
        let err = decode_postings_shared(&mut cur, &shared, 0);
        let mut cur2 = Cursor::new(&shared[..]);
        assert_eq!(err, decode_postings(&mut cur2));
        assert!(err.is_err());
    }

    #[test]
    fn shared_section_reader_serves_payloads_with_offsets() {
        let mut w = SectionWriter::new();
        w.add(7, b"alpha".to_vec());
        w.add(2, b"beta-payload".to_vec());
        let bytes = w.finish();
        let shared = SharedBytes::from_vec(bytes.clone());
        let r = SharedSectionReader::open(shared.clone()).unwrap();
        assert_eq!(r.section_ids(), vec![7, 2]);
        let (payload, offset) = r.require(2).unwrap();
        assert_eq!(payload, b"beta-payload");
        assert_eq!(&bytes[offset..offset + payload.len()], payload);
        assert!(r.section(99).unwrap().is_none());
        assert!(matches!(r.require(99), Err(BinaryError::Corrupt(_))));
        assert_eq!(r.buffer().len(), bytes.len());

        // A flipped payload byte fails that section's checksum lazily.
        let mut bad = bytes.clone();
        let n = bad.len();
        bad[n - 1] ^= 0x40;
        let r = SharedSectionReader::open(SharedBytes::from_vec(bad)).unwrap();
        assert!(r.require(7).is_ok());
        assert_eq!(r.require(2), Err(BinaryError::Checksum { section: 2 }));

        // Header damage fails at open, exactly like the borrowing reader.
        let r = SharedSectionReader::open(SharedBytes::from_vec(bytes[..8].to_vec()));
        assert!(matches!(r, Err(BinaryError::Truncated)));
    }

    #[test]
    fn blocked_decode_rejects_corrupt_gap_runs() {
        // A sparse 300-id list routes through the blocked decoder; corrupt
        // it three ways and check each is caught, not panicked on.
        let ids: Vec<u32> = (0..300u32).map(|i| i * 5 + 1).collect();
        let list = PostingList::from_sorted(ids, 100_000);
        assert!(list.is_blocked_repr());
        let mut buf = Vec::new();
        encode_postings(&mut buf, &list);

        // Zero gap in the middle of the second block (every gap is the
        // single byte 5; flip one well past the first block's 128 entries
        // plus the two header varints).
        let mut zero_gap = buf.clone();
        let target = zero_gap.len() - 10;
        assert_eq!(zero_gap[target], 5);
        zero_gap[target] = 0;
        let mut cur = Cursor::new(&zero_gap);
        assert_eq!(
            decode_postings(&mut cur),
            Err(BinaryError::Corrupt("zero gap in posting list".into()))
        );

        // Truncation mid-run: the cursor's bounded reads surface it.
        let mut cur = Cursor::new(&buf[..buf.len() - 5]);
        assert_eq!(decode_postings(&mut cur), Err(BinaryError::Truncated));

        // An id past the universe: shrink the declared universe below the
        // list's max id (299 * 5 + 1 = 1496) and keep the gap stream.
        let mut small_universe = Vec::new();
        put_varint(&mut small_universe, 1000); // universe below max id
        small_universe.extend_from_slice(&buf[3..]); // 100_000 is a 3-byte varint
        let mut cur = Cursor::new(&small_universe);
        assert_eq!(
            decode_postings(&mut cur),
            Err(BinaryError::Corrupt(
                "posting id outside its universe".into()
            ))
        );
    }

    #[test]
    fn postings_reject_out_of_universe_ids() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 4); // universe
        put_varint(&mut buf, 1); // len
        put_varint(&mut buf, 9); // id 9 >= universe 4
        let mut cur = Cursor::new(&buf);
        assert!(matches!(
            decode_postings(&mut cur),
            Err(BinaryError::Corrupt(_))
        ));
    }

    #[test]
    fn section_container_round_trips() {
        let mut w = SectionWriter::new();
        w.add(1, b"alpha".to_vec());
        w.add(7, b"".to_vec());
        w.add(3, vec![0, 1, 2, 3, 255]);
        let bytes = w.finish();
        let r = SectionReader::open(&bytes).unwrap();
        assert_eq!(r.section_ids(), vec![1, 7, 3]);
        assert_eq!(r.section(1).unwrap(), Some(&b"alpha"[..]));
        assert_eq!(r.section(7).unwrap(), Some(&b""[..]));
        assert_eq!(r.section(3).unwrap(), Some(&[0, 1, 2, 3, 255][..]));
        assert_eq!(r.section(99).unwrap(), None);
        assert!(r.require(99).is_err());
    }

    #[test]
    fn reader_rejects_bad_magic_and_version() {
        let bytes = SectionWriter::new().finish();
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            SectionReader::open(&bad_magic).err(),
            Some(BinaryError::BadMagic)
        );
        let mut bad_version = bytes.clone();
        bad_version[4] = 99;
        assert_eq!(
            SectionReader::open(&bad_version).err(),
            Some(BinaryError::UnsupportedVersion(99))
        );
        assert_eq!(
            SectionReader::open(&bytes[..8]).err(),
            Some(BinaryError::Truncated)
        );
    }

    #[test]
    fn reader_detects_flipped_payload_byte() {
        let mut w = SectionWriter::new();
        w.add(2, b"payload".to_vec());
        let mut bytes = w.finish();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        let r = SectionReader::open(&bytes).unwrap();
        assert_eq!(r.section(2), Err(BinaryError::Checksum { section: 2 }));
    }

    #[test]
    fn reader_rejects_truncated_payload() {
        let mut w = SectionWriter::new();
        w.add(2, vec![1; 64]);
        let bytes = w.finish();
        assert_eq!(
            SectionReader::open(&bytes[..bytes.len() - 10]).err(),
            Some(BinaryError::Truncated)
        );
    }
}
