//! Block-wise set-intersection kernels: a scalar merge, an SSE2 all-pairs
//! compare, and an AVX2 all-pairs compare at twice the width — all
//! property-pinned to produce identical output.
//!
//! SSE2 is part of the `x86_64` baseline ISA, so that path needs no
//! detection; AVX2 is not, so [`intersect_merge`] consults a
//! once-detected, cached CPU-feature flag (`is_x86_feature_detected!`)
//! and dispatches the widest kernel the hardware has. Every other
//! platform routes to the scalar twin; [`merge_kernel_name`] reports
//! which path a process resolved to (the bench artifacts record it).
//! All kernels expect strictly increasing inputs (the posting-list
//! invariant) and append the ascending intersection to `out`, so callers
//! can compose them over decoded posting blocks without clearing buffers
//! between blocks.
//!
//! Honesty note: the SIMD kernel wins on *balanced* inputs where the merge
//! advances both cursors in lockstep. Lopsided intersections are better
//! served by galloping, which `postings` dispatches before either kernel
//! is reached — the kernels only see the balanced regime. The
//! `postings_runtime` bench reports both paths so a regression on either
//! is visible.

/// Appends `a ∩ b` to `out` with a linear scalar merge — the reference
/// twin the SIMD kernel is pinned against (see `tests/proptests.rs`).
#[inline]
pub fn intersect_merge_scalar(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Appends `a ∩ b` to `out` using the widest kernel the CPU supports:
/// AVX2 when runtime detection finds it, the baseline SSE2 kernel
/// otherwise on `x86_64`, and the scalar merge everywhere else. Output is
/// byte-identical to [`intersect_merge_scalar`] on every platform.
#[inline]
pub fn intersect_merge(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    #[cfg(target_arch = "x86_64")]
    {
        if avx2_available() {
            // SAFETY: the cached runtime detection above confirmed AVX2.
            unsafe { intersect_merge_avx2(a, b, out) };
        } else {
            intersect_merge_sse2(a, b, out);
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        intersect_merge_scalar(a, b, out);
    }
}

/// The merge-kernel path [`intersect_merge`] resolves to on this machine:
/// `"avx2"`, `"sse2"` or `"scalar"`. Bench artifacts record it so a result
/// measured on one path is never compared against another unknowingly.
pub fn merge_kernel_name() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        if avx2_available() {
            "avx2"
        } else {
            "sse2"
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        "scalar"
    }
}

/// Cached `is_x86_feature_detected!("avx2")`: the cpuid probe runs once
/// per process, every later call is one relaxed atomic load.
#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    use std::sync::atomic::{AtomicU8, Ordering};
    // 0 = not yet probed, 1 = absent, 2 = present. A racing first call
    // probes twice; both writers store the same answer.
    static AVX2: AtomicU8 = AtomicU8::new(0);
    match AVX2.load(Ordering::Relaxed) {
        0 => {
            let present = is_x86_feature_detected!("avx2");
            AVX2.store(if present { 2 } else { 1 }, Ordering::Relaxed);
            present
        }
        state => state == 2,
    }
}

/// SSE2 quad-at-a-time intersection (Schlegel/Lemire style): compare one
/// 4-lane quad of `a` against all four rotations of a quad of `b`, push
/// the lanes that matched, then advance whichever quad has the smaller
/// maximum. Strictly increasing inputs guarantee each common value is
/// compared in exactly one quad pairing, so no hit is missed or doubled.
#[cfg(target_arch = "x86_64")]
fn intersect_merge_sse2(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    use std::arch::x86_64::{
        _mm_castsi128_ps, _mm_cmpeq_epi32, _mm_loadu_si128, _mm_movemask_ps, _mm_or_si128,
        _mm_shuffle_epi32,
    };
    let (mut i, mut j) = (0usize, 0usize);
    while i + 4 <= a.len() && j + 4 <= b.len() {
        // SAFETY: `i + 4 <= a.len()` and `j + 4 <= b.len()` bound the
        // 16-byte unaligned loads; SSE2 is unconditionally available on
        // x86_64.
        let mask = unsafe {
            let va = _mm_loadu_si128(a.as_ptr().add(i).cast());
            let vb = _mm_loadu_si128(b.as_ptr().add(j).cast());
            let e0 = _mm_cmpeq_epi32(va, vb);
            let e1 = _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0b00_11_10_01));
            let e2 = _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0b01_00_11_10));
            let e3 = _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0b10_01_00_11));
            let hits = _mm_or_si128(_mm_or_si128(e0, e1), _mm_or_si128(e2, e3));
            _mm_movemask_ps(_mm_castsi128_ps(hits)) as u32
        };
        let mut m = mask;
        while m != 0 {
            out.push(a[i + m.trailing_zeros() as usize]);
            m &= m - 1;
        }
        let (amax, bmax) = (a[i + 3], b[j + 3]);
        if amax <= bmax {
            i += 4;
        }
        if bmax <= amax {
            j += 4;
        }
    }
    intersect_merge_scalar(&a[i..], &b[j..], out);
}

/// AVX2 octet-at-a-time intersection — the SSE2 kernel at twice the lane
/// width: compare one 8-lane octet of `a` against all eight rotations of
/// an octet of `b` (rotation `r` pairs `a` lane `k` with `b` lane
/// `(k + r) % 8`, so the eight rotations cover all 64 lane pairs), push
/// the lanes that matched, then advance whichever octet has the smaller
/// maximum. The remainder hands off to the SSE2 kernel, whose own tail is
/// the scalar merge.
///
/// # Safety
/// The caller must have verified AVX2 support (see `avx2_available`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn intersect_merge_avx2(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    use std::arch::x86_64::{
        _mm256_castsi256_ps, _mm256_cmpeq_epi32, _mm256_loadu_si256, _mm256_movemask_ps,
        _mm256_or_si256, _mm256_permutevar8x32_epi32, _mm256_setr_epi32,
    };
    let (mut i, mut j) = (0usize, 0usize);
    while i + 8 <= a.len() && j + 8 <= b.len() {
        // SAFETY: `i + 8 <= a.len()` and `j + 8 <= b.len()` bound the
        // 32-byte unaligned loads; AVX2 is guaranteed by the caller.
        let mask = unsafe {
            let va = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            let vb = _mm256_loadu_si256(b.as_ptr().add(j).cast());
            let rotate1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
            let mut hits = _mm256_cmpeq_epi32(va, vb);
            let mut vr = vb;
            for _ in 0..7 {
                vr = _mm256_permutevar8x32_epi32(vr, rotate1);
                hits = _mm256_or_si256(hits, _mm256_cmpeq_epi32(va, vr));
            }
            _mm256_movemask_ps(_mm256_castsi256_ps(hits)) as u32
        };
        let mut m = mask;
        while m != 0 {
            out.push(a[i + m.trailing_zeros() as usize]);
            m &= m - 1;
        }
        let (amax, bmax) = (a[i + 7], b[j + 7]);
        if amax <= bmax {
            i += 8;
        }
        if bmax <= amax {
            j += 8;
        }
    }
    intersect_merge_sse2(&a[i..], &b[j..], out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both(a: &[u32], b: &[u32]) -> (Vec<u32>, Vec<u32>) {
        let mut s = Vec::new();
        let mut k = Vec::new();
        intersect_merge_scalar(a, b, &mut s);
        intersect_merge(a, b, &mut k);
        (s, k)
    }

    #[test]
    fn kernel_matches_scalar_on_fixed_shapes() {
        let cases: Vec<(Vec<u32>, Vec<u32>)> = vec![
            (vec![], vec![1, 2, 3]),
            (vec![1, 2, 3], vec![]),
            ((0..16).collect(), (0..16).collect()),
            (
                (0..64).map(|i| i * 2).collect(),
                (0..64).map(|i| i * 3).collect(),
            ),
            ((0..5).collect(), (3..40).collect()),
            (vec![7], vec![7]),
            (vec![0, 4, 8, 12, 16], vec![1, 4, 9, 12, 17, 20, 33, 34]),
        ];
        for (a, b) in cases {
            let (s, k) = both(&a, &b);
            assert_eq!(s, k, "a={a:?} b={b:?}");
            let (s2, k2) = both(&b, &a);
            assert_eq!(s2, k2, "commuted a={a:?} b={b:?}");
            assert_eq!(s, s2, "intersection is symmetric");
        }
    }

    #[test]
    fn kernel_handles_unaligned_tails() {
        // Lengths that are not multiples of 4 exercise the scalar tail.
        for la in 0..10usize {
            for lb in 0..10usize {
                let a: Vec<u32> = (0..la as u32).map(|i| i * 3).collect();
                let b: Vec<u32> = (0..lb as u32).map(|i| i * 2 + 1).collect();
                let (s, k) = both(&a, &b);
                assert_eq!(s, k, "la={la} lb={lb}");
            }
        }
    }

    #[test]
    fn kernel_appends_without_clearing() {
        let mut out = vec![999];
        intersect_merge(&[1, 2, 3], &[2, 3, 4], &mut out);
        assert_eq!(out, vec![999, 2, 3]);
    }

    #[test]
    fn kernel_name_matches_dispatch() {
        let name = merge_kernel_name();
        #[cfg(target_arch = "x86_64")]
        assert!(name == "avx2" || name == "sse2", "unexpected path {name}");
        #[cfg(not(target_arch = "x86_64"))]
        assert_eq!(name, "scalar");
        assert_eq!(name, merge_kernel_name(), "cached answer is stable");
    }

    /// All explicit kernel twins (not just whatever `intersect_merge`
    /// dispatches to) agree byte-for-byte on shapes crossing the 4- and
    /// 8-lane boundaries. The AVX2 twin is checked only where the CPU has
    /// it — on baseline containers this intentionally degrades to pinning
    /// SSE2, and the bench artifact records which path actually ran.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn explicit_simd_twins_match_scalar() {
        let shapes: Vec<(Vec<u32>, Vec<u32>)> = vec![
            ((0..7).collect(), (0..7).collect()),
            ((0..8).collect(), (4..12).collect()),
            ((0..9).collect(), (0..17).map(|i| i * 2).collect()),
            (
                (0..40).map(|i| i * 3).collect(),
                (0..40).map(|i| i * 5).collect(),
            ),
            ((0..100).collect(), (90..200).collect()),
            ((0..33).map(|i| i * 7).collect(), vec![0, 7, 230, 231]),
        ];
        for (a, b) in &shapes {
            let mut scalar = Vec::new();
            intersect_merge_scalar(a, b, &mut scalar);
            let mut sse2 = Vec::new();
            intersect_merge_sse2(a, b, &mut sse2);
            assert_eq!(scalar, sse2, "sse2 a={a:?} b={b:?}");
            if avx2_available() {
                let mut avx2 = Vec::new();
                // SAFETY: guarded by runtime detection.
                unsafe { intersect_merge_avx2(a, b, &mut avx2) };
                assert_eq!(scalar, avx2, "avx2 a={a:?} b={b:?}");
            }
        }
    }
}
