//! Block-wise set-intersection kernels: a scalar merge and an SSE2
//! all-pairs compare, property-pinned to produce identical output.
//!
//! The SIMD path is gated on `x86_64`, where SSE2 is part of the baseline
//! ISA, so no runtime feature detection is needed; every other platform
//! routes [`intersect_merge`] to the scalar twin. Both kernels expect
//! strictly increasing inputs (the posting-list invariant) and append the
//! ascending intersection to `out`, so callers can compose them over
//! decoded posting blocks without clearing buffers between blocks.
//!
//! Honesty note: the SIMD kernel wins on *balanced* inputs where the merge
//! advances both cursors in lockstep. Lopsided intersections are better
//! served by galloping, which `postings` dispatches before either kernel
//! is reached — the kernels only see the balanced regime. The
//! `postings_runtime` bench reports both paths so a regression on either
//! is visible.

/// Appends `a ∩ b` to `out` with a linear scalar merge — the reference
/// twin the SIMD kernel is pinned against (see `tests/proptests.rs`).
#[inline]
pub fn intersect_merge_scalar(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Appends `a ∩ b` to `out` using the SSE2 all-pairs kernel on `x86_64`
/// and the scalar merge everywhere else. Output is byte-identical to
/// [`intersect_merge_scalar`] on every platform.
#[inline]
pub fn intersect_merge(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    #[cfg(target_arch = "x86_64")]
    {
        intersect_merge_sse2(a, b, out);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        intersect_merge_scalar(a, b, out);
    }
}

/// SSE2 quad-at-a-time intersection (Schlegel/Lemire style): compare one
/// 4-lane quad of `a` against all four rotations of a quad of `b`, push
/// the lanes that matched, then advance whichever quad has the smaller
/// maximum. Strictly increasing inputs guarantee each common value is
/// compared in exactly one quad pairing, so no hit is missed or doubled.
#[cfg(target_arch = "x86_64")]
fn intersect_merge_sse2(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    use std::arch::x86_64::{
        _mm_castsi128_ps, _mm_cmpeq_epi32, _mm_loadu_si128, _mm_movemask_ps, _mm_or_si128,
        _mm_shuffle_epi32,
    };
    let (mut i, mut j) = (0usize, 0usize);
    while i + 4 <= a.len() && j + 4 <= b.len() {
        // SAFETY: `i + 4 <= a.len()` and `j + 4 <= b.len()` bound the
        // 16-byte unaligned loads; SSE2 is unconditionally available on
        // x86_64.
        let mask = unsafe {
            let va = _mm_loadu_si128(a.as_ptr().add(i).cast());
            let vb = _mm_loadu_si128(b.as_ptr().add(j).cast());
            let e0 = _mm_cmpeq_epi32(va, vb);
            let e1 = _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0b00_11_10_01));
            let e2 = _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0b01_00_11_10));
            let e3 = _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0b10_01_00_11));
            let hits = _mm_or_si128(_mm_or_si128(e0, e1), _mm_or_si128(e2, e3));
            _mm_movemask_ps(_mm_castsi128_ps(hits)) as u32
        };
        let mut m = mask;
        while m != 0 {
            out.push(a[i + m.trailing_zeros() as usize]);
            m &= m - 1;
        }
        let (amax, bmax) = (a[i + 3], b[j + 3]);
        if amax <= bmax {
            i += 4;
        }
        if bmax <= amax {
            j += 4;
        }
    }
    intersect_merge_scalar(&a[i..], &b[j..], out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both(a: &[u32], b: &[u32]) -> (Vec<u32>, Vec<u32>) {
        let mut s = Vec::new();
        let mut k = Vec::new();
        intersect_merge_scalar(a, b, &mut s);
        intersect_merge(a, b, &mut k);
        (s, k)
    }

    #[test]
    fn kernel_matches_scalar_on_fixed_shapes() {
        let cases: Vec<(Vec<u32>, Vec<u32>)> = vec![
            (vec![], vec![1, 2, 3]),
            (vec![1, 2, 3], vec![]),
            ((0..16).collect(), (0..16).collect()),
            (
                (0..64).map(|i| i * 2).collect(),
                (0..64).map(|i| i * 3).collect(),
            ),
            ((0..5).collect(), (3..40).collect()),
            (vec![7], vec![7]),
            (vec![0, 4, 8, 12, 16], vec![1, 4, 9, 12, 17, 20, 33, 34]),
        ];
        for (a, b) in cases {
            let (s, k) = both(&a, &b);
            assert_eq!(s, k, "a={a:?} b={b:?}");
            let (s2, k2) = both(&b, &a);
            assert_eq!(s2, k2, "commuted a={a:?} b={b:?}");
            assert_eq!(s, s2, "intersection is symmetric");
        }
    }

    #[test]
    fn kernel_handles_unaligned_tails() {
        // Lengths that are not multiples of 4 exercise the scalar tail.
        for la in 0..10usize {
            for lb in 0..10usize {
                let a: Vec<u32> = (0..la as u32).map(|i| i * 3).collect();
                let b: Vec<u32> = (0..lb as u32).map(|i| i * 2 + 1).collect();
                let (s, k) = both(&a, &b);
                assert_eq!(s, k, "la={la} lb={lb}");
            }
        }
    }

    #[test]
    fn kernel_appends_without_clearing() {
        let mut out = vec![999];
        intersect_merge(&[1, 2, 3], &[2, 3, 4], &mut out);
        assert_eq!(out, vec![999, 2, 3]);
    }
}
