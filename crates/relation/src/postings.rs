//! Compact row-set representation shared by the discovery index and the
//! incremental cleaning engine.
//!
//! Index entries and candidate row sets were plain `Vec<RowId>`; at scale
//! the discovery hot path is dominated by merging those lists and the
//! resident index is dominated by their storage. A [`PostingList`] now has
//! three tiers:
//!
//! - **Sorted** — plain strictly-increasing `u32` runs below
//!   `BLOCK_THRESHOLD` entries, where block bookkeeping would cost more
//!   than it saves.
//! - **Blocked** — delta-gap LEB128 varint blocks of `BLOCK_LEN` entries
//!   at build time (mutation may split them, bounded by `BLOCK_MAX`).
//!   Each block carries a skip pointer (`first`/`last` id) so galloping
//!   intersection and `is_subset` jump whole blocks without decoding them;
//!   only overlapping blocks are expanded, into a stack scratch buffer.
//!   Typical sparse sets compress from 4 bytes/row to ~1–2 bytes/row.
//! - **Dense** — a fixed-stride bitset once density crosses 1/16 of the
//!   row universe, so the frequent entries (column formats, shared
//!   prefixes) intersect word-at-a-time.
//!
//! Sorted × sorted intersections gallop when the lengths are lopsided —
//! the common shape when probing a rare pattern against a frequent one —
//! and use the [`crate::kernels`] merge (SSE2 on `x86_64`, scalar twin
//! elsewhere) when they are balanced.
//!
//! Equality and hashing are canonical over the *element sequence*, not the
//! representation, so row sets group identically regardless of which tier
//! they landed on.
//!
//! The list also supports point mutation ([`insert`](PostingList::insert),
//! [`remove`](PostingList::remove),
//! [`renumber_after_delete`](PostingList::renumber_after_delete)) so the
//! incremental engine's per-group row sets can track relation edits without
//! rebuilding. Mutating a blocked list re-encodes exactly one block. This
//! module lives in `pfd_relation` (rather than discovery, where it
//! originated) because both layers depend on it — and because the snapshot
//! codec (`relation::binary`) adopts blocked payloads wholesale: the wire
//! gap stream is independent of block partitioning, so encode is a
//! per-block memcpy and decode builds blocks directly.

use crate::binary::put_varint;
use crate::io::SharedBytes;
use crate::relation::RowId;
use std::hash::{Hash, Hasher};

/// Density numerator: a set is stored as a bitset when
/// `count * 16 >= DENSE_NUMERATOR * universe` (i.e. ≥ 1/16 of rows).
const DENSE_NUMERATOR: u64 = 1;

/// Sorted × sorted intersections gallop when one side is at least this many
/// times longer than the other.
const GALLOP_RATIO: usize = 8;

/// Entries per block when a blocked list is built from a sorted run.
pub(crate) const BLOCK_LEN: usize = 128;

/// Upper bound on a block's entry count: inserts grow a block until it
/// would exceed this, then it splits in half. Twice `BLOCK_LEN` so a
/// freshly built list absorbs inserts without immediate splits.
const BLOCK_MAX: usize = 256;

/// Sorted runs at or above this length switch to blocked storage (unless
/// density promotes them to the bitset first).
const BLOCK_THRESHOLD: usize = 256;

/// Skip pointer + directory entry for one compressed block.
///
/// The block's payload is `count - 1` LEB128 gap varints occupying
/// `bytes_len` bytes starting at `offset` in the shared byte buffer; the
/// first id lives here, not in the payload, so a block can be skipped or
/// range-checked without decoding. Payload extents are explicit rather than
/// derived from the next block's offset because a zero-copy list aliases
/// the snapshot wire stream, where block payloads are separated by the
/// inter-block gap varints of the wire format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BlockMeta {
    /// First (smallest) id in the block.
    pub(crate) first: u32,
    /// Last (largest) id in the block.
    pub(crate) last: u32,
    /// Byte offset of the block's gap payload.
    pub(crate) offset: u32,
    /// Byte length of the block's gap payload.
    pub(crate) bytes_len: u32,
    /// Number of ids in the block (≥ 1; empty blocks are removed).
    pub(crate) count: u32,
}

impl BlockMeta {
    /// End offset (exclusive) of this block's payload.
    fn end(&self) -> usize {
        self.offset as usize + self.bytes_len as usize
    }
}

/// The gap payload of a blocked list: owned bytes, or a borrowed window of
/// a [`SharedBytes`] buffer (typically an mmap'd snapshot section) that the
/// zero-copy loader aliases instead of copying.
///
/// Ownership rule (`Cow` semantics): every *read* path sees a plain
/// `&[u8]` through [`Deref`](std::ops::Deref) and cannot tell the variants
/// apart; every *mutation* path goes through [`to_mut`](BlockBytes::to_mut),
/// which copies a shared window into an owned `Vec` first — so a loaded
/// index is immutable-for-free and pays the copy only if it is ever edited,
/// at which point it stops pinning the backing buffer.
#[derive(Debug, Clone)]
pub(crate) enum BlockBytes {
    /// Heap-owned payload (built lists, mutated lists).
    Owned(Vec<u8>),
    /// `buf[start..start + len]` of a shared (possibly mmap'd) buffer.
    Shared {
        buf: SharedBytes,
        start: usize,
        len: usize,
    },
}

impl BlockBytes {
    fn as_slice(&self) -> &[u8] {
        match self {
            BlockBytes::Owned(v) => v,
            BlockBytes::Shared { buf, start, len } => &buf[*start..*start + *len],
        }
    }

    /// Converts to the owned variant (copying a shared window) and returns
    /// the vector — the single gate every mutation passes through.
    fn to_mut(&mut self) -> &mut Vec<u8> {
        if let BlockBytes::Shared { .. } = self {
            *self = BlockBytes::Owned(self.as_slice().to_vec());
        }
        match self {
            BlockBytes::Owned(v) => v,
            BlockBytes::Shared { .. } => unreachable!("converted above"),
        }
    }

    /// Heap bytes owned by this payload: a shared window owns none (the
    /// backing buffer is accounted by whoever holds it).
    fn owned_capacity(&self) -> usize {
        match self {
            BlockBytes::Owned(v) => v.capacity(),
            BlockBytes::Shared { .. } => 0,
        }
    }
}

impl std::ops::Deref for BlockBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

#[derive(Debug, Clone)]
enum Repr {
    /// Strictly increasing row ids.
    Sorted(Vec<u32>),
    /// Delta-gap varint blocks with per-block skip pointers.
    Blocked {
        /// Concatenated gap payloads of all blocks (owned or borrowed).
        bytes: BlockBytes,
        /// Block directory, ordered by `first` (blocks are disjoint).
        metas: Vec<BlockMeta>,
        /// Total id count across blocks.
        count: u32,
    },
    /// Fixed-stride bitset over the row universe; `count` caches the popcount.
    Dense { words: Vec<u64>, count: u32 },
}

/// A set of row ids over a fixed universe (the relation's row count).
///
/// ```
/// use pfd_relation::PostingList;
///
/// let a = PostingList::from_sorted(vec![0, 2, 4, 6], 10);
/// let b = PostingList::from_sorted(vec![2, 3, 4], 10);
/// assert_eq!(a.intersect(&b).to_vec(), vec![2, 4]);
/// assert!(PostingList::from_sorted(vec![2, 4], 10).is_subset(&a));
/// assert!(a.contains(4) && !a.contains(5));
/// ```
#[derive(Debug, Clone)]
pub struct PostingList {
    universe: u32,
    repr: Repr,
}

impl PostingList {
    /// Build from a strictly increasing, deduplicated id vector.
    pub fn from_sorted(ids: Vec<u32>, universe: usize) -> PostingList {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "ids must be sorted+deduped"
        );
        debug_assert!(ids.last().is_none_or(|&m| (m as usize) < universe.max(1)));
        let universe = universe as u32;
        if is_dense(ids.len(), universe) {
            let mut words = vec![0u64; universe.div_ceil(64) as usize];
            for &id in &ids {
                words[(id / 64) as usize] |= 1u64 << (id % 64);
            }
            PostingList {
                universe,
                repr: Repr::Dense {
                    words,
                    count: ids.len() as u32,
                },
            }
        } else if ids.len() >= BLOCK_THRESHOLD {
            build_blocked(&ids, universe)
        } else {
            PostingList {
                universe,
                repr: Repr::Sorted(ids),
            }
        }
    }

    /// Build from ids in any order, possibly with duplicates.
    pub fn from_unsorted(mut ids: Vec<u32>, universe: usize) -> PostingList {
        ids.sort_unstable();
        ids.dedup();
        PostingList::from_sorted(ids, universe)
    }

    /// The empty set over `universe` rows.
    pub fn empty(universe: usize) -> PostingList {
        PostingList::from_sorted(Vec::new(), universe)
    }

    /// Number of rows in the set.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Sorted(v) => v.len(),
            Repr::Blocked { count, .. } => *count as usize,
            Repr::Dense { count, .. } => *count as usize,
        }
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The row universe this set was built over.
    pub fn universe(&self) -> usize {
        self.universe as usize
    }

    /// Is the set stored as a bitset? (Exposed for tests and stats.)
    pub fn is_dense_repr(&self) -> bool {
        matches!(self.repr, Repr::Dense { .. })
    }

    /// Is the set stored as compressed blocks? (Exposed for tests and stats.)
    pub fn is_blocked_repr(&self) -> bool {
        matches!(self.repr, Repr::Blocked { .. })
    }

    /// Does the blocked payload alias a shared (possibly memory-mapped)
    /// buffer rather than owned heap bytes? False for every other tier.
    /// (Exposed for tests and the bench receipts.)
    pub fn is_shared_payload(&self) -> bool {
        matches!(
            self.repr,
            Repr::Blocked {
                bytes: BlockBytes::Shared { .. },
                ..
            }
        )
    }

    /// Heap bytes currently allocated by the id storage (capacity-based, so
    /// over-allocation counts). The memory-budget guard test and the
    /// `postings_runtime` bench report this.
    pub fn heap_bytes(&self) -> usize {
        match &self.repr {
            Repr::Sorted(v) => v.capacity() * std::mem::size_of::<u32>(),
            Repr::Blocked { bytes, metas, .. } => {
                bytes.owned_capacity() + metas.capacity() * std::mem::size_of::<BlockMeta>()
            }
            Repr::Dense { words, .. } => words.capacity() * std::mem::size_of::<u64>(),
        }
    }

    /// Membership test.
    pub fn contains(&self, id: RowId) -> bool {
        let id = id as u32;
        match &self.repr {
            Repr::Sorted(v) => v.binary_search(&id).is_ok(),
            Repr::Blocked { bytes, metas, .. } => {
                let p = metas.partition_point(|m| m.first <= id);
                if p == 0 {
                    return false;
                }
                let m = &metas[p - 1];
                if id > m.last {
                    return false;
                }
                if id == m.first || id == m.last {
                    return true;
                }
                let mut pos = m.offset as usize;
                let mut cur = m.first;
                for _ in 1..m.count {
                    cur += read_gap(bytes, &mut pos);
                    if cur >= id {
                        return cur == id;
                    }
                }
                false
            }
            Repr::Dense { words, .. } => {
                (id < self.universe) && words[(id / 64) as usize] & (1u64 << (id % 64)) != 0
            }
        }
    }

    /// Iterate the row ids in increasing order.
    pub fn iter(&self) -> PostingIter<'_> {
        PostingIter(match &self.repr {
            Repr::Sorted(v) => IterRepr::Sorted(v.iter()),
            Repr::Blocked { bytes, metas, .. } => IterRepr::Blocked {
                bytes,
                metas,
                block: 0,
                pos: 0,
                left: 0,
                prev: 0,
            },
            Repr::Dense { words, .. } => IterRepr::Dense {
                words,
                word_idx: 0,
                current: words.first().copied().unwrap_or(0),
            },
        })
    }

    /// The ids as a sorted vector.
    pub fn to_vec(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len());
        out.extend(self.iter());
        out
    }

    /// Set intersection. Gallops on lopsided sorted inputs, skips whole
    /// blocks on compressed ones, ANDs words on dense ones.
    pub fn intersect(&self, other: &PostingList) -> PostingList {
        let universe = self.universe.max(other.universe) as usize;
        if let (Repr::Dense { words: wa, .. }, Repr::Dense { words: wb, .. }) =
            (&self.repr, &other.repr)
        {
            // Zip truncates to the shorter word array (ids past the
            // smaller universe cannot be in both sets), then pad back to
            // the declared universe so the list stays self-consistent.
            let mut words: Vec<u64> = wa.iter().zip(wb).map(|(a, b)| a & b).collect();
            words.resize((universe as u32).div_ceil(64) as usize, 0);
            let count: u32 = words.iter().map(|w| w.count_ones()).sum();
            if is_dense(count as usize, universe as u32) {
                return PostingList {
                    universe: universe as u32,
                    repr: Repr::Dense { words, count },
                };
            }
            let ids = PostingList {
                universe: universe as u32,
                repr: Repr::Dense { words, count },
            }
            .to_vec();
            return PostingList::from_sorted(ids, universe);
        }
        let mut out = Vec::new();
        self.intersect_into(other, &mut out);
        PostingList::from_sorted(out, universe)
    }

    /// Set intersection into a caller-owned buffer: `out` is cleared and
    /// filled with the ascending intersection ids. Lets hot loops (the
    /// discovery lattice walk) probe many intersections through one pooled
    /// buffer and only materialize a [`PostingList`] for the survivors —
    /// rejected probes allocate nothing.
    pub fn intersect_into(&self, other: &PostingList, out: &mut Vec<u32>) {
        out.clear();
        match (&self.repr, &other.repr) {
            (Repr::Sorted(a), Repr::Sorted(b)) => intersect_sorted_into(a, b, out),
            (Repr::Sorted(a), Repr::Blocked { bytes, metas, .. }) => {
                intersect_sorted_blocked(a, bytes, metas, out);
            }
            (Repr::Blocked { bytes, metas, .. }, Repr::Sorted(b)) => {
                intersect_sorted_blocked(b, bytes, metas, out);
            }
            (
                Repr::Blocked {
                    bytes: ab,
                    metas: am,
                    ..
                },
                Repr::Blocked {
                    bytes: bb,
                    metas: bm,
                    ..
                },
            ) => intersect_blocked_blocked(ab, am, bb, bm, out),
            (Repr::Sorted(a), Repr::Dense { .. }) => {
                out.extend(a.iter().copied().filter(|&id| other.contains(id as RowId)));
            }
            (Repr::Dense { .. }, Repr::Sorted(b)) => {
                out.extend(b.iter().copied().filter(|&id| self.contains(id as RowId)));
            }
            (Repr::Blocked { .. }, Repr::Dense { .. }) => {
                out.extend(self.iter().filter(|&id| other.contains(id as RowId)));
            }
            (Repr::Dense { .. }, Repr::Blocked { .. }) => {
                out.extend(other.iter().filter(|&id| self.contains(id as RowId)));
            }
            (Repr::Dense { words: wa, .. }, Repr::Dense { words: wb, .. }) => {
                for (i, (a, b)) in wa.iter().zip(wb).enumerate() {
                    let mut w = a & b;
                    while w != 0 {
                        out.push(i as u32 * 64 + w.trailing_zeros());
                        w &= w - 1;
                    }
                }
            }
        }
    }

    /// Smallest row id, `None` when empty.
    pub fn min(&self) -> Option<u32> {
        match &self.repr {
            Repr::Sorted(v) => v.first().copied(),
            Repr::Blocked { metas, .. } => metas.first().map(|m| m.first),
            Repr::Dense { words, .. } => words
                .iter()
                .enumerate()
                .find(|(_, w)| **w != 0)
                .map(|(i, w)| i as u32 * 64 + w.trailing_zeros()),
        }
    }

    /// Largest row id, `None` when empty. O(1) on every representation
    /// (the canonical hash depends on this staying cheap).
    pub fn max(&self) -> Option<u32> {
        match &self.repr {
            Repr::Sorted(v) => v.last().copied(),
            Repr::Blocked { metas, .. } => metas.last().map(|m| m.last),
            Repr::Dense { words, .. } => words
                .iter()
                .enumerate()
                .rev()
                .find(|(_, w)| **w != 0)
                .map(|(i, w)| i as u32 * 64 + 63 - w.leading_zeros()),
        }
    }

    /// Insert one row id, growing the universe when `id` lies beyond it.
    /// Returns `true` when the id was newly added. Sorted runs promote to
    /// blocked storage past `BLOCK_THRESHOLD` and either form promotes to
    /// a bitset when the insert crosses the density threshold; removals
    /// never demote (hysteresis keeps edit sequences cheap). A blocked
    /// insert re-encodes one block, splitting it at `BLOCK_MAX` entries.
    pub fn insert(&mut self, id: RowId) -> bool {
        let id = id as u32;
        if id >= self.universe {
            self.universe = id + 1;
            if let Repr::Dense { words, .. } = &mut self.repr {
                words.resize(self.universe.div_ceil(64) as usize, 0);
            }
        }
        let added = match &mut self.repr {
            Repr::Sorted(v) => match v.binary_search(&id) {
                Ok(_) => false,
                Err(pos) => {
                    v.insert(pos, id);
                    true
                }
            },
            Repr::Blocked {
                bytes,
                metas,
                count,
            } => {
                if insert_blocked(bytes, metas, id) {
                    *count += 1;
                    true
                } else {
                    false
                }
            }
            Repr::Dense { words, count } => {
                let w = &mut words[(id / 64) as usize];
                let bit = 1u64 << (id % 64);
                return if *w & bit == 0 {
                    *w |= bit;
                    *count += 1;
                    true
                } else {
                    false
                };
            }
        };
        if added {
            let promote = match &self.repr {
                Repr::Sorted(v) => is_dense(v.len(), self.universe) || v.len() >= BLOCK_THRESHOLD,
                Repr::Blocked { count, .. } => is_dense(*count as usize, self.universe),
                Repr::Dense { .. } => false,
            };
            if promote {
                *self = PostingList::from_sorted(self.to_vec(), self.universe as usize);
            }
        }
        added
    }

    /// Remove one row id; returns `true` when it was present.
    pub fn remove(&mut self, id: RowId) -> bool {
        let id = id as u32;
        match &mut self.repr {
            Repr::Sorted(v) => match v.binary_search(&id) {
                Ok(pos) => {
                    v.remove(pos);
                    true
                }
                Err(_) => false,
            },
            Repr::Blocked {
                bytes,
                metas,
                count,
            } => {
                if remove_blocked(bytes, metas, id) {
                    *count -= 1;
                    true
                } else {
                    false
                }
            }
            Repr::Dense { words, count } => {
                if id >= self.universe {
                    return false;
                }
                let w = &mut words[(id / 64) as usize];
                let bit = 1u64 << (id % 64);
                if *w & bit != 0 {
                    *w &= !bit;
                    *count -= 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Renumber after row `removed` left the universe: the id itself is
    /// dropped (callers normally [`remove`](PostingList::remove) it first)
    /// and every id above it shifts down by one, mirroring
    /// `Relation::delete_row`'s renumbering.
    pub fn renumber_after_delete(&mut self, removed: RowId) {
        let removed = removed as u32;
        let ids: Vec<u32> = self
            .iter()
            .filter(|&id| id != removed)
            .map(|id| if id > removed { id - 1 } else { id })
            .collect();
        *self = PostingList::from_sorted(ids, self.universe.saturating_sub(1).max(1) as usize);
    }

    /// Is `self ⊆ other`?
    pub fn is_subset(&self, other: &PostingList) -> bool {
        if self.len() > other.len() {
            return false;
        }
        // Against a blocked superset there are two regimes: a small probe
        // set wants the per-id skip-pointer search, a large one (anything
        // past the gallop ratio) wants one linear merge walk — the probes
        // cost O(|self| log) while the merge streams both sides once.
        let prefer_merge = other.len() < self.len().saturating_mul(GALLOP_RATIO);
        match (&self.repr, &other.repr) {
            (Repr::Sorted(a), Repr::Sorted(b)) => is_subset_sorted(a, b),
            (Repr::Sorted(a), Repr::Blocked { bytes, metas, .. }) => {
                if prefer_merge {
                    is_subset_iter_merge(a.iter().copied(), other.iter())
                } else {
                    is_subset_sorted_blocked(a, bytes, metas)
                }
            }
            (Repr::Blocked { .. }, Repr::Sorted(b)) => is_subset_iter_sorted(self.iter(), b),
            (
                Repr::Blocked {
                    bytes: ab,
                    metas: am,
                    ..
                },
                Repr::Blocked {
                    bytes: bb,
                    metas: bm,
                    ..
                },
            ) => {
                if prefer_merge {
                    return is_subset_iter_merge(self.iter(), other.iter());
                }
                let mut buf = BlockBuf::new();
                for k in 0..am.len() {
                    decode_block(ab, am, k, &mut buf);
                    if !is_subset_sorted_blocked(buf.ids(), bb, bm) {
                        return false;
                    }
                }
                true
            }
            _ => self.iter().all(|id| other.contains(id as RowId)),
        }
    }

    /// Append this list's canonical wire gap stream (`first, gap, gap, …`)
    /// to `out`. The stream is independent of block partitioning, so the
    /// blocked form emits one inter-block gap varint per block and then
    /// copies the block's payload bytes wholesale — no re-encoding.
    pub(crate) fn write_wire_gaps(&self, out: &mut Vec<u8>) {
        if let Repr::Blocked { bytes, metas, .. } = &self.repr {
            let mut prev_last: Option<u32> = None;
            for m in metas.iter() {
                match prev_last {
                    None => put_varint(out, m.first as u64),
                    Some(p) => put_varint(out, (m.first - p) as u64),
                }
                out.extend_from_slice(&bytes[m.offset as usize..m.end()]);
                prev_last = Some(m.last);
            }
        } else {
            let mut prev: Option<u32> = None;
            for id in self.iter() {
                match prev {
                    None => put_varint(out, id as u64),
                    Some(p) => put_varint(out, (id - p) as u64),
                }
                prev = Some(id);
            }
        }
    }

    /// Would a decoded wire list of `len` ids over `universe` land in the
    /// blocked representation? Mirrors [`from_sorted`](Self::from_sorted)'s
    /// tier choice so the codec can build blocks directly off the wire.
    pub(crate) fn wire_prefers_blocked(len: u64, universe: u64) -> bool {
        len >= BLOCK_THRESHOLD as u64 && !(universe >= 64 && len * 16 >= DENSE_NUMERATOR * universe)
    }

    /// Assemble a blocked list from codec-validated parts (the snapshot
    /// decoder copies wire gap payloads wholesale into `bytes`).
    pub(crate) fn from_blocked_raw(
        universe: u32,
        count: u32,
        mut bytes: Vec<u8>,
        mut metas: Vec<BlockMeta>,
    ) -> PostingList {
        debug_assert_eq!(
            count as usize,
            metas.iter().map(|m| m.count as usize).sum::<usize>()
        );
        bytes.shrink_to_fit();
        metas.shrink_to_fit();
        PostingList {
            universe,
            repr: Repr::Blocked {
                bytes: BlockBytes::Owned(bytes),
                metas,
                count,
            },
        }
    }

    /// Assemble a blocked list whose gap payload *aliases*
    /// `buf[start..start + len]` instead of owning a copy — the zero-copy
    /// decode path for snapshot sections. The caller (the codec) has
    /// validated the gap stream; block offsets in `metas` are relative to
    /// `start`, exactly as in the owned form.
    pub(crate) fn from_blocked_shared(
        universe: u32,
        count: u32,
        buf: SharedBytes,
        start: usize,
        len: usize,
        mut metas: Vec<BlockMeta>,
    ) -> PostingList {
        debug_assert!(start + len <= buf.len());
        debug_assert_eq!(
            count as usize,
            metas.iter().map(|m| m.count as usize).sum::<usize>()
        );
        metas.shrink_to_fit();
        PostingList {
            universe,
            repr: Repr::Blocked {
                bytes: BlockBytes::Shared { buf, start, len },
                metas,
                count,
            },
        }
    }
}

/// Representation decision rule for the bitset tier.
fn is_dense(count: usize, universe: u32) -> bool {
    universe >= 64 && (count as u64) * 16 >= DENSE_NUMERATOR * universe as u64
}

/// Read one LEB128 varint gap from in-memory (trusted) block bytes.
#[inline]
fn read_gap(bytes: &[u8], pos: &mut usize) -> u32 {
    let b = bytes[*pos];
    *pos += 1;
    if b & 0x80 == 0 {
        return b as u32;
    }
    let mut acc = (b & 0x7f) as u32;
    let mut shift = 7u32;
    loop {
        let b = bytes[*pos];
        *pos += 1;
        acc |= ((b & 0x7f) as u32) << shift;
        if b & 0x80 == 0 {
            return acc;
        }
        shift += 7;
    }
}

/// Chunk a sorted run into `BLOCK_LEN`-entry gap blocks.
fn build_blocked(ids: &[u32], universe: u32) -> PostingList {
    let mut bytes = Vec::with_capacity(ids.len());
    let mut metas = Vec::with_capacity(ids.len().div_ceil(BLOCK_LEN));
    for chunk in ids.chunks(BLOCK_LEN) {
        let offset = bytes.len();
        for w in chunk.windows(2) {
            put_varint(&mut bytes, (w[1] - w[0]) as u64);
        }
        metas.push(BlockMeta {
            first: chunk[0],
            last: *chunk.last().expect("chunks are non-empty"),
            offset: offset as u32,
            bytes_len: (bytes.len() - offset) as u32,
            count: chunk.len() as u32,
        });
    }
    bytes.shrink_to_fit();
    metas.shrink_to_fit();
    PostingList {
        universe,
        repr: Repr::Blocked {
            bytes: BlockBytes::Owned(bytes),
            metas,
            count: ids.len() as u32,
        },
    }
}

/// Stack scratch for decoding one block — read paths expand blocks here so
/// intersections and subset checks never touch the heap per block.
struct BlockBuf {
    ids: [u32; BLOCK_MAX],
    len: usize,
}

impl BlockBuf {
    fn new() -> BlockBuf {
        BlockBuf {
            ids: [0; BLOCK_MAX],
            len: 0,
        }
    }

    fn ids(&self) -> &[u32] {
        &self.ids[..self.len]
    }
}

/// Decode block `k` into the scratch buffer.
fn decode_block(bytes: &[u8], metas: &[BlockMeta], k: usize, buf: &mut BlockBuf) {
    let m = &metas[k];
    debug_assert!(m.count as usize <= BLOCK_MAX);
    let mut pos = m.offset as usize;
    let mut cur = m.first;
    buf.ids[0] = cur;
    for slot in buf.ids[1..m.count as usize].iter_mut() {
        cur += read_gap(bytes, &mut pos);
        *slot = cur;
    }
    buf.len = m.count as usize;
}

/// Decode block `k` into a fresh vector (mutation path).
fn decode_block_vec(bytes: &[u8], metas: &[BlockMeta], k: usize) -> Vec<u32> {
    let m = &metas[k];
    let mut ids = Vec::with_capacity(m.count as usize + 1);
    let mut pos = m.offset as usize;
    let mut cur = m.first;
    ids.push(cur);
    for _ in 1..m.count {
        cur += read_gap(bytes, &mut pos);
        ids.push(cur);
    }
    ids
}

/// Re-encode block `k` from `ids`: removed when empty, split in half past
/// `BLOCK_MAX`, otherwise rewritten in place. Subsequent blocks' offsets
/// shift by the payload size delta; their payload bytes are untouched.
fn replace_block(bytes: &mut Vec<u8>, metas: &mut Vec<BlockMeta>, k: usize, ids: &[u32]) {
    let start = metas[k].offset as usize;
    let end = metas[k].end();
    let chunks: [&[u32]; 2] = if ids.len() > BLOCK_MAX {
        ids.split_at(ids.len() / 2).into()
    } else {
        [ids, &[]]
    };
    let mut payload: Vec<u8> = Vec::with_capacity(ids.len() * 2);
    let mut new_metas: Vec<BlockMeta> = Vec::with_capacity(2);
    for chunk in chunks {
        if chunk.is_empty() {
            continue;
        }
        let chunk_offset = payload.len();
        for w in chunk.windows(2) {
            put_varint(&mut payload, (w[1] - w[0]) as u64);
        }
        new_metas.push(BlockMeta {
            first: chunk[0],
            last: *chunk.last().expect("non-empty chunk"),
            offset: (start + chunk_offset) as u32,
            bytes_len: (payload.len() - chunk_offset) as u32,
            count: chunk.len() as u32,
        });
    }
    let n_new = new_metas.len();
    let delta = payload.len() as isize - (end - start) as isize;
    bytes.splice(start..end, payload);
    metas.splice(k..k + 1, new_metas);
    for m in metas.iter_mut().skip(k + n_new) {
        m.offset = (m.offset as isize + delta) as u32;
    }
}

/// Insert `id` into a blocked list; `false` when already present. A shared
/// payload converts to owned only when a block is actually rewritten.
fn insert_blocked(bytes: &mut BlockBytes, metas: &mut Vec<BlockMeta>, id: u32) -> bool {
    if metas.is_empty() {
        metas.push(BlockMeta {
            first: id,
            last: id,
            offset: 0,
            bytes_len: 0,
            count: 1,
        });
        return true;
    }
    // Last block starting at or before `id`; ids below every block land in
    // block 0 (binary_search then prepends).
    let k = metas.partition_point(|m| m.first <= id).saturating_sub(1);
    let mut ids = decode_block_vec(bytes, metas, k);
    match ids.binary_search(&id) {
        Ok(_) => false,
        Err(pos) => {
            ids.insert(pos, id);
            replace_block(bytes.to_mut(), metas, k, &ids);
            true
        }
    }
}

/// Remove `id` from a blocked list; `false` when absent. A shared payload
/// converts to owned only when a block is actually rewritten.
fn remove_blocked(bytes: &mut BlockBytes, metas: &mut Vec<BlockMeta>, id: u32) -> bool {
    let p = metas.partition_point(|m| m.first <= id);
    if p == 0 || id > metas[p - 1].last {
        return false;
    }
    let k = p - 1;
    let mut ids = decode_block_vec(bytes, metas, k);
    match ids.binary_search(&id) {
        Ok(pos) => {
            ids.remove(pos);
            replace_block(bytes.to_mut(), metas, k, &ids);
            true
        }
        Err(_) => false,
    }
}

/// Sorted ∩ blocked: skip pointers jump past non-overlapping blocks, then
/// each overlapping block decodes once into stack scratch and intersects
/// against its window of the sorted run.
fn intersect_sorted_blocked(sorted: &[u32], bytes: &[u8], metas: &[BlockMeta], out: &mut Vec<u32>) {
    let mut buf = BlockBuf::new();
    let mut s = sorted;
    let mut k = 0usize;
    while !s.is_empty() && k < metas.len() {
        // First block that can contain s[0].
        k += metas[k..].partition_point(|m| m.last < s[0]);
        if k >= metas.len() {
            return;
        }
        let m = &metas[k];
        let lo = s.partition_point(|&x| x < m.first);
        let hi = s.partition_point(|&x| x <= m.last);
        if lo < hi {
            decode_block(bytes, metas, k, &mut buf);
            intersect_sorted_into(&s[lo..hi], buf.ids(), out);
        }
        s = &s[hi..];
        k += 1;
    }
}

/// Blocked ∩ blocked: a two-cursor walk over the block directories.
/// Non-overlapping blocks advance by skip pointer alone; overlapping pairs
/// decode (cached per cursor) and intersect their overlapping windows.
/// Each common id lives in exactly one block per side, so exactly one pair
/// emits it, and pairs advance in ascending range order.
fn intersect_blocked_blocked(
    abytes: &[u8],
    ametas: &[BlockMeta],
    bbytes: &[u8],
    bmetas: &[BlockMeta],
    out: &mut Vec<u32>,
) {
    let mut abuf = BlockBuf::new();
    let mut bbuf = BlockBuf::new();
    let (mut adec, mut bdec) = (usize::MAX, usize::MAX);
    let (mut i, mut j) = (0usize, 0usize);
    while i < ametas.len() && j < bmetas.len() {
        let (ma, mb) = (&ametas[i], &bmetas[j]);
        if ma.last < mb.first {
            i += 1;
            continue;
        }
        if mb.last < ma.first {
            j += 1;
            continue;
        }
        if adec != i {
            decode_block(abytes, ametas, i, &mut abuf);
            adec = i;
        }
        if bdec != j {
            decode_block(bbytes, bmetas, j, &mut bbuf);
            bdec = j;
        }
        let a = abuf.ids();
        let b = bbuf.ids();
        let a_lo = a.partition_point(|&x| x < mb.first);
        let a_hi = a.partition_point(|&x| x <= mb.last);
        let b_lo = b.partition_point(|&x| x < ma.first);
        let b_hi = b.partition_point(|&x| x <= ma.last);
        intersect_sorted_into(&a[a_lo..a_hi], &b[b_lo..b_hi], out);
        if ma.last <= mb.last {
            i += 1;
        }
        if mb.last <= ma.last {
            j += 1;
        }
    }
}

/// Sorted intersection: linear merge for comparable lengths, galloping when
/// one side dominates.
#[cfg(test)]
fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    intersect_sorted_into(a, b, &mut out);
    out
}

/// Sorted intersection into a caller-owned buffer (not cleared): gallop on
/// lopsided lengths, otherwise the [`crate::kernels`] merge (SIMD where it
/// wins, scalar twin elsewhere).
fn intersect_sorted_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return;
    }
    if large.len() >= small.len().saturating_mul(GALLOP_RATIO) {
        // Gallop: advance through `large` with exponential probes from the
        // last hit, then binary-search the bracketed window.
        let mut base = 0usize;
        for &x in small {
            match gallop_search(&large[base..], x) {
                Ok(off) => {
                    out.push(x);
                    base += off + 1;
                }
                Err(off) => base += off,
            }
            if base >= large.len() {
                break;
            }
        }
    } else {
        crate::kernels::intersect_merge(small, large, out);
    }
}

/// Find `x` in sorted `hay` by exponential probing then binary search.
/// `Ok(i)`: found at `i`; `Err(i)`: not present, `i` is the insertion point.
fn gallop_search(hay: &[u32], x: u32) -> Result<usize, usize> {
    // Probe 1, 2, 4, … until hay[hi] ≥ x (or the end); x then lies within
    // hay[hi/2 ..= hi], inclusive of the probe that stopped the gallop.
    let mut hi = 1usize;
    while hi < hay.len() && hay[hi] < x {
        hi *= 2;
    }
    let lo = hi / 2;
    let hi = (hi + 1).min(hay.len());
    match hay[lo..hi].binary_search(&x) {
        Ok(i) => Ok(lo + i),
        Err(i) => Err(lo + i),
    }
}

/// Sorted subset check with a galloping scan through the superset.
fn is_subset_sorted(a: &[u32], b: &[u32]) -> bool {
    is_subset_iter_sorted(a.iter().copied(), b)
}

/// Merge-style subset check over two ascending id streams: one linear walk
/// of both sides, the right call when the candidate subset is a sizable
/// fraction of the superset and per-id probes would cost more than the
/// stream.
fn is_subset_iter_merge(a: impl Iterator<Item = u32>, mut b: impl Iterator<Item = u32>) -> bool {
    let mut cur = b.next();
    'outer: for x in a {
        while let Some(y) = cur {
            cur = if y < x {
                b.next()
            } else if y == x {
                continue 'outer;
            } else {
                return false;
            };
        }
        return false;
    }
    true
}

/// Streaming subset check: every id the iterator yields (ascending) must
/// appear in sorted `b`; the gallop cursor persists across ids.
fn is_subset_iter_sorted(ids: impl Iterator<Item = u32>, b: &[u32]) -> bool {
    let mut base = 0usize;
    for x in ids {
        if base >= b.len() {
            return false;
        }
        match gallop_search(&b[base..], x) {
            Ok(off) => base += off + 1,
            Err(_) => return false,
        }
    }
    true
}

/// Sorted ⊆ blocked: locate each id's candidate block via the skip
/// pointers; consecutive ids in one block reuse its decode.
fn is_subset_sorted_blocked(a: &[u32], bytes: &[u8], metas: &[BlockMeta]) -> bool {
    let mut buf = BlockBuf::new();
    let mut decoded = usize::MAX;
    for &x in a {
        let p = metas.partition_point(|m| m.first <= x);
        if p == 0 || x > metas[p - 1].last {
            return false;
        }
        let k = p - 1;
        if x == metas[k].first || x == metas[k].last {
            continue;
        }
        if decoded != k {
            decode_block(bytes, metas, k, &mut buf);
            decoded = k;
        }
        if buf.ids().binary_search(&x).is_err() {
            return false;
        }
    }
    true
}

impl PartialEq for PostingList {
    fn eq(&self, other: &Self) -> bool {
        match (&self.repr, &other.repr) {
            (Repr::Sorted(a), Repr::Sorted(b)) => a == b,
            (
                Repr::Dense {
                    words: a,
                    count: ca,
                },
                Repr::Dense {
                    words: b,
                    count: cb,
                },
            ) => ca == cb && a == b,
            (
                Repr::Blocked {
                    bytes: ab,
                    metas: am,
                    count: ca,
                },
                Repr::Blocked {
                    bytes: bb,
                    metas: bm,
                    count: cb,
                },
            ) => {
                // Identical block layout ⇒ identical sets, but mutation
                // history can partition one set two ways — unequal bytes
                // must still fall through to the element compare.
                ca == cb
                    && ((am == bm && ab.as_slice() == bb.as_slice())
                        || self.iter().eq(other.iter()))
            }
            _ => self.len() == other.len() && self.iter().eq(other.iter()),
        }
    }
}

impl Eq for PostingList {}

impl Hash for PostingList {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Canonical over the element *sequence prefix* plus (count, max) so
        // all three representations of one set hash alike without iterating
        // row sets that can span the whole relation. The bounded prefix
        // matters for discovery's RHS decision cache, which probes many
        // distinct joint row sets of equal size sharing min and max — a
        // summary-only hash would bucket those together and degrade every
        // probe to full `Eq` scans.
        state.write_usize(self.len());
        if !self.is_empty() {
            state.write_u32(self.max().expect("non-empty"));
            for id in self.iter().take(8) {
                state.write_u32(id);
            }
        }
    }
}

/// Iterator over a [`PostingList`]'s row ids, ascending. Opaque so the
/// compressed block layout stays an implementation detail.
pub struct PostingIter<'a>(IterRepr<'a>);

enum IterRepr<'a> {
    /// Sorted-vector cursor.
    Sorted(std::slice::Iter<'a, u32>),
    /// Compressed-block cursor: decodes gaps on the fly, no scratch buffer.
    Blocked {
        /// Concatenated block payloads.
        bytes: &'a [u8],
        /// Block directory.
        metas: &'a [BlockMeta],
        /// Index of the next block to enter.
        block: usize,
        /// Byte position within the current block's payload.
        pos: usize,
        /// Ids left to emit from the current block.
        left: u32,
        /// Last id emitted (gap base).
        prev: u32,
    },
    /// Bitset word scanner.
    Dense {
        /// The words being scanned.
        words: &'a [u64],
        /// Index of the word in `current`.
        word_idx: usize,
        /// Remaining bits of the current word.
        current: u64,
    },
}

impl Iterator for PostingIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        match &mut self.0 {
            IterRepr::Sorted(it) => it.next().copied(),
            IterRepr::Blocked {
                bytes,
                metas,
                block,
                pos,
                left,
                prev,
            } => {
                if *left == 0 {
                    let m = metas.get(*block)?;
                    *block += 1;
                    *pos = m.offset as usize;
                    *left = m.count - 1;
                    *prev = m.first;
                    Some(m.first)
                } else {
                    *prev += read_gap(bytes, pos);
                    *left -= 1;
                    Some(*prev)
                }
            }
            IterRepr::Dense {
                words,
                word_idx,
                current,
            } => loop {
                if *current != 0 {
                    let bit = current.trailing_zeros();
                    *current &= *current - 1;
                    return Some(*word_idx as u32 * 64 + bit);
                }
                *word_idx += 1;
                if *word_idx >= words.len() {
                    return None;
                }
                *current = words[*word_idx];
            },
        }
    }
}

/// A growable row-set accumulator for unions (coverage computations):
/// a bitset over the universe with a running count.
///
/// Unions go straight into the bitset word-at-a-time —
/// [`insert_all`](Self::insert_all) batches ascending ids sharing a word
/// into one read-modify-write (blocked lists decode per block into stack
/// scratch, dense lists OR whole words) — and
/// [`into_posting_list`](Self::into_posting_list) hands the accumulated
/// set to the tiered representation without materializing a sorted vector
/// when the result is dense.
#[derive(Debug, Clone)]
pub struct RowSetAccumulator {
    words: Vec<u64>,
    count: usize,
    universe: usize,
}

impl RowSetAccumulator {
    /// An empty accumulator over `universe` rows.
    pub fn new(universe: usize) -> RowSetAccumulator {
        RowSetAccumulator {
            words: vec![0u64; universe.div_ceil(64)],
            count: 0,
            universe,
        }
    }

    /// Insert one row id.
    pub fn insert(&mut self, id: RowId) {
        let w = &mut self.words[id / 64];
        let bit = 1u64 << (id % 64);
        if *w & bit == 0 {
            *w |= bit;
            self.count += 1;
        }
    }

    /// Union a whole posting list into the accumulator.
    pub fn insert_all(&mut self, list: &PostingList) {
        match &list.repr {
            Repr::Sorted(v) => self.insert_ascending(v),
            Repr::Blocked { bytes, metas, .. } => {
                // Decode each block into stack scratch and union it with
                // the word-batched path — no per-id branch, no heap.
                let mut buf = BlockBuf::new();
                for k in 0..metas.len() {
                    decode_block(bytes, metas, k, &mut buf);
                    self.insert_ascending(buf.ids());
                }
            }
            Repr::Dense { words, .. } => {
                for (dst, src) in self.words.iter_mut().zip(words) {
                    let merged = *dst | src;
                    self.count += (merged ^ *dst).count_ones() as usize;
                    *dst = merged;
                }
            }
        }
    }

    /// Union an ascending id run: consecutive ids landing in the same
    /// 64-bit word accumulate into one mask, so each touched word costs a
    /// single read-modify-write plus a popcount for the new bits.
    fn insert_ascending(&mut self, ids: &[u32]) {
        let mut it = ids.iter();
        let Some(&first) = it.next() else {
            return;
        };
        let mut word_idx = (first / 64) as usize;
        let mut mask = 1u64 << (first % 64);
        for &id in it {
            let w = (id / 64) as usize;
            if w == word_idx {
                mask |= 1u64 << (id % 64);
            } else {
                let dst = &mut self.words[word_idx];
                self.count += (mask & !*dst).count_ones() as usize;
                *dst |= mask;
                word_idx = w;
                mask = 1u64 << (id % 64);
            }
        }
        let dst = &mut self.words[word_idx];
        self.count += (mask & !*dst).count_ones() as usize;
        *dst |= mask;
    }

    /// Number of distinct rows inserted so far.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Is the accumulator empty?
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Consume the accumulator into a tiered [`PostingList`]. A dense
    /// result adopts the bitset words as-is (no id materialization at
    /// all); a sparse one scans set bits into the sorted/blocked tiers.
    pub fn into_posting_list(self) -> PostingList {
        let universe = self.universe as u32;
        if is_dense(self.count, universe) {
            return PostingList {
                universe,
                repr: Repr::Dense {
                    words: self.words,
                    count: self.count as u32,
                },
            };
        }
        let mut ids = Vec::with_capacity(self.count);
        for (i, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                ids.push(i as u32 * 64 + w.trailing_zeros());
                w &= w - 1;
            }
        }
        PostingList::from_sorted(ids, self.universe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pl(ids: &[u32], universe: usize) -> PostingList {
        PostingList::from_sorted(ids.to_vec(), universe)
    }

    /// Sparse ids guaranteed to land in the blocked tier.
    fn blocked(n: u32, stride: u32, universe: usize) -> PostingList {
        let list = PostingList::from_sorted((0..n).map(|i| i * stride).collect(), universe);
        assert!(list.is_blocked_repr(), "n={n} stride={stride} u={universe}");
        list
    }

    #[test]
    fn empty_intersections() {
        let a = pl(&[], 100);
        let b = pl(&[1, 2, 3], 100);
        assert!(a.intersect(&b).is_empty());
        assert!(b.intersect(&a).is_empty());
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
    }

    #[test]
    fn disjoint_sets() {
        let a = pl(&[0, 2, 4, 6], 100);
        let b = pl(&[1, 3, 5, 7], 100);
        assert!(a.intersect(&b).is_empty());
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn nested_sets() {
        let a = pl(&[10, 20, 30], 100);
        let b = pl(&[5, 10, 15, 20, 25, 30, 35], 100);
        assert_eq!(a.intersect(&b).to_vec(), vec![10, 20, 30]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
    }

    #[test]
    fn duplicates_are_deduped_by_from_unsorted() {
        let a = PostingList::from_unsorted(vec![3, 1, 3, 2, 1], 10);
        assert_eq!(a.to_vec(), vec![1, 2, 3]);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn galloping_matches_linear_on_lopsided_inputs() {
        // Universe 1M keeps both sides sparse; 4 needles vs 600 haystack
        // ids triggers the galloping intersection (hay stays below the
        // block threshold).
        const U: usize = 1_000_000;
        let needles = pl(&[0, 7, 300, 1111], U);
        let hay: Vec<u32> = (0..250).map(|i| i * 2).collect();
        let hay_pl = PostingList::from_sorted(hay.clone(), U);
        assert!(!needles.is_dense_repr() && !hay_pl.is_dense_repr());
        let expected: Vec<u32> = [0u32, 7, 300, 1111]
            .iter()
            .copied()
            .filter(|x| hay.contains(x))
            .collect();
        assert_eq!(expected, vec![0, 300]);
        assert_eq!(needles.intersect(&hay_pl).to_vec(), expected);
        assert_eq!(hay_pl.intersect(&needles).to_vec(), expected);
    }

    #[test]
    fn galloping_subset_checks_stay_sorted() {
        // Large universe, superset below the block threshold: the subset
        // checks run the galloping scan, not the bitset or block paths.
        const U: usize = 1_000_000;
        let small = pl(&[2, 40, 4000, 20_000], U);
        let big_ids: Vec<u32> = (0..250).map(|i| i * 100).collect(); // 0,100,…
        let big = PostingList::from_sorted(big_ids, U);
        assert!(!small.is_dense_repr() && !big.is_dense_repr() && !big.is_blocked_repr());
        assert!(pl(&[0, 400, 4000, 20_000], U).is_subset(&big));
        assert!(!small.is_subset(&big), "2 and 40 are not multiples of 100");
        // First and last elements of the superset are found.
        assert!(pl(&[0], U).is_subset(&big));
        assert!(pl(&[24_900], U).is_subset(&big));
        assert!(!pl(&[24_901], U).is_subset(&big));
    }

    #[test]
    fn dense_representation_kicks_in_and_agrees() {
        // 50 of 100 rows: well past the 1/16 density bar.
        let ids: Vec<u32> = (0..100).filter(|i| i % 2 == 0).collect();
        let dense = PostingList::from_sorted(ids.clone(), 100);
        assert!(dense.is_dense_repr());
        assert_eq!(dense.len(), 50);
        assert_eq!(dense.to_vec(), ids);
        let sparse = pl(&[2, 4, 96], 100);
        assert!(!sparse.is_dense_repr());
        assert_eq!(sparse.intersect(&dense).to_vec(), vec![2, 4, 96]);
        assert_eq!(dense.intersect(&sparse).to_vec(), vec![2, 4, 96]);
        assert!(sparse.is_subset(&dense));

        let other: Vec<u32> = (0..100).filter(|i| i % 3 == 0).collect();
        let dense2 = PostingList::from_sorted(other, 100);
        let both = dense.intersect(&dense2);
        let expected: Vec<u32> = (0..100).filter(|i| i % 6 == 0).collect();
        assert_eq!(both.to_vec(), expected);
    }

    #[test]
    fn blocked_representation_kicks_in_and_roundtrips() {
        let ids: Vec<u32> = (0..1000).map(|i| i * 37).collect();
        let list = PostingList::from_sorted(ids.clone(), 40_000);
        assert!(list.is_blocked_repr());
        assert_eq!(list.len(), 1000);
        assert_eq!(list.to_vec(), ids);
        assert_eq!(list.min(), Some(0));
        assert_eq!(list.max(), Some(999 * 37));
        for probe in [0u32, 37, 36, 38, 128 * 37, 128 * 37 + 1, 999 * 37, 39_999] {
            assert_eq!(
                list.contains(probe as usize),
                ids.binary_search(&probe).is_ok(),
                "probe {probe}"
            );
        }
        // Compression actually saves memory vs 4 bytes/id.
        assert!(
            list.heap_bytes() < ids.len() * 4,
            "blocked {} B ≥ sorted {} B",
            list.heap_bytes(),
            ids.len() * 4
        );
    }

    #[test]
    fn equality_and_hash_are_representation_independent() {
        use std::collections::hash_map::DefaultHasher;
        let h = |p: &PostingList| {
            let mut h = DefaultHasher::new();
            p.hash(&mut h);
            h.finish()
        };
        // Same elements, forced into different representations via universe.
        let ids: Vec<u32> = (0..32).collect();
        let dense = PostingList::from_sorted(ids.clone(), 64); // 32/64 → dense
        let sparse = PostingList {
            universe: 64,
            repr: Repr::Sorted(ids),
        };
        assert!(dense.is_dense_repr());
        assert!(!sparse.is_dense_repr());
        assert_eq!(dense, sparse);
        assert_eq!(h(&dense), h(&sparse));
        // Blocked vs forced-sorted of the same ids.
        let many: Vec<u32> = (0..400).map(|i| i * 50).collect();
        let blocked = PostingList::from_sorted(many.clone(), 20_000);
        let forced = PostingList {
            universe: 20_000,
            repr: Repr::Sorted(many),
        };
        assert!(blocked.is_blocked_repr());
        assert_eq!(blocked, forced);
        assert_eq!(forced, blocked);
        assert_eq!(h(&blocked), h(&forced));
    }

    #[test]
    fn contains_and_iter() {
        let a = pl(&[1, 5, 9], 100);
        assert!(a.contains(5));
        assert!(!a.contains(6));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 5, 9]);
    }

    #[test]
    fn accumulator_counts_unions() {
        let mut acc = RowSetAccumulator::new(200);
        acc.insert_all(&pl(&[1, 2, 3], 200));
        acc.insert_all(&pl(&[3, 4], 200));
        acc.insert(4);
        acc.insert(5);
        assert_eq!(acc.len(), 5);
        let dense = PostingList::from_sorted((0..100).collect(), 200);
        acc.insert_all(&dense);
        assert_eq!(acc.len(), 100, "{{1..=5}} ⊂ 0..100");
        acc.insert_all(&pl(&[150], 200));
        assert_eq!(acc.len(), 101);
    }

    #[test]
    fn accumulator_accepts_blocked_lists() {
        let mut acc = RowSetAccumulator::new(40_000);
        let b = blocked(500, 37, 40_000);
        acc.insert_all(&b);
        assert_eq!(acc.len(), 500);
        acc.insert_all(&b);
        assert_eq!(acc.len(), 500, "idempotent");
    }

    /// A blocked list whose payload aliases a [`SharedBytes`] buffer,
    /// byte-identical to `owned`'s payload (which must be blocked).
    fn share(owned: &PostingList) -> PostingList {
        let Repr::Blocked {
            bytes,
            metas,
            count,
        } = &owned.repr
        else {
            panic!("share() needs a blocked list");
        };
        // Embed the payload mid-buffer so non-zero `start` is exercised.
        let mut raw = vec![0xAAu8; 7];
        raw.extend_from_slice(bytes);
        raw.extend_from_slice(&[0xBB; 3]);
        let len = bytes.len();
        PostingList::from_blocked_shared(
            owned.universe,
            *count,
            SharedBytes::from_vec(raw),
            7,
            len,
            metas.clone(),
        )
    }

    #[test]
    fn shared_payload_reads_like_owned() {
        const U: usize = 1_000_000;
        let owned = blocked(1200, 17, U);
        let shared = share(&owned);
        assert!(shared.is_shared_payload() && !owned.is_shared_payload());
        assert_eq!(shared, owned);
        assert_eq!(shared.to_vec(), owned.to_vec());
        assert_eq!(shared.len(), owned.len());
        assert_eq!(shared.heap_bytes(), {
            let Repr::Blocked { metas, .. } = &owned.repr else {
                unreachable!()
            };
            metas.capacity() * std::mem::size_of::<BlockMeta>()
        });
        for probe in [0usize, 17, 18, 599 * 17, 1199 * 17, 999_999] {
            assert_eq!(shared.contains(probe), owned.contains(probe));
        }
        let probe = blocked(900, 23, U);
        assert_eq!(
            shared.intersect(&probe).to_vec(),
            owned.intersect(&probe).to_vec()
        );
        assert!(blocked(600, 34, U).is_subset(&shared) == blocked(600, 34, U).is_subset(&owned));
        let mut wire_shared = Vec::new();
        let mut wire_owned = Vec::new();
        shared.write_wire_gaps(&mut wire_shared);
        owned.write_wire_gaps(&mut wire_owned);
        assert_eq!(wire_shared, wire_owned, "wire encode is payload-identical");
    }

    #[test]
    fn shared_payload_copies_on_first_write_only() {
        const U: usize = 1_000_000;
        let owned = blocked(1000, 13, U);
        let mut shared = share(&owned);
        // Reads and a no-op mutation keep the payload shared.
        assert!(!shared.remove(14), "absent id");
        assert!(shared.is_shared_payload(), "failed remove must not copy");
        // A real mutation converts to owned and matches the owned twin.
        let mut owned_twin = owned.clone();
        assert!(shared.insert(14));
        assert!(owned_twin.insert(14));
        assert!(!shared.is_shared_payload(), "mutation copies out");
        assert_eq!(shared, owned_twin);
        assert!(shared.remove(14) && owned_twin.remove(14));
        assert_eq!(shared.to_vec(), owned.to_vec());
    }

    #[test]
    fn accumulator_into_posting_list_matches_model() {
        // Sparse result: collects ids; dense result: adopts the bitset.
        let mut sparse = RowSetAccumulator::new(100_000);
        sparse.insert_all(&pl(&[5, 70, 100, 65_000], 100_000));
        sparse.insert(70);
        sparse.insert(71);
        let list = sparse.into_posting_list();
        assert_eq!(list.to_vec(), vec![5, 70, 71, 100, 65_000]);
        assert_eq!(list.universe(), 100_000);

        let mut dense = RowSetAccumulator::new(256);
        dense.insert_all(&PostingList::from_sorted((0..128).collect(), 256));
        let list = dense.into_posting_list();
        assert!(list.is_dense_repr(), "128/256 crosses the density bar");
        assert_eq!(list.to_vec(), (0..128).collect::<Vec<u32>>());

        // Blocked input unions through the word-batched path.
        let mut acc = RowSetAccumulator::new(1_000_000);
        let b = blocked(2000, 9, 1_000_000);
        acc.insert_all(&b);
        acc.insert_all(&b);
        assert_eq!(acc.len(), 2000);
        assert_eq!(acc.into_posting_list().to_vec(), b.to_vec());
    }

    #[test]
    fn mixed_universe_dense_intersection_stays_consistent() {
        // Both dense, different universes: the result must carry word
        // storage matching its declared universe so `contains` never
        // indexes past the array.
        let a = PostingList::from_sorted((0..16).collect(), 64);
        let b = PostingList::from_sorted((0..16).collect(), 128);
        assert!(a.is_dense_repr() && b.is_dense_repr());
        let c = a.intersect(&b);
        assert_eq!(c.to_vec(), (0..16).collect::<Vec<u32>>());
        assert_eq!(c.universe(), 128);
        assert!(!c.contains(100));
        assert!(c.contains(15));
    }

    #[test]
    fn insert_remove_roundtrip_sparse() {
        let mut a = pl(&[2, 8], 1000);
        assert!(a.insert(5));
        assert!(!a.insert(5), "already present");
        assert_eq!(a.to_vec(), vec![2, 5, 8]);
        assert!(a.remove(2));
        assert!(!a.remove(2), "already gone");
        assert_eq!(a.to_vec(), vec![5, 8]);
    }

    #[test]
    fn insert_grows_universe_and_promotes_to_dense() {
        let mut a = pl(&[0], 64);
        assert!(!a.is_dense_repr());
        for id in 1..8 {
            assert!(a.insert(id));
        }
        // 8 of 64 = 1/8 ≥ 1/16: the insert crossing the bar promoted it.
        assert!(a.is_dense_repr());
        assert!(a.insert(100), "id beyond the universe grows it");
        assert_eq!(a.universe(), 101);
        assert!(a.contains(100));
        assert!(a.remove(100));
        assert_eq!(a.len(), 8);
        assert_eq!(a.to_vec(), (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn sorted_promotes_to_blocked_past_threshold() {
        const U: usize = 1_000_000;
        let mut a = PostingList::from_sorted((0..255).map(|i| i * 10).collect(), U);
        assert!(!a.is_blocked_repr(), "255 ids stay sorted");
        assert!(a.insert(255 * 10));
        assert!(a.is_blocked_repr(), "256th id crosses the block threshold");
        assert_eq!(a.to_vec(), (0..256).map(|i| i * 10).collect::<Vec<u32>>());
    }

    #[test]
    fn blocked_insert_remove_match_model_across_boundaries() {
        const U: usize = 1_000_000;
        let base: Vec<u32> = (0..640).map(|i| i * 7).collect();
        let mut list = PostingList::from_sorted(base.clone(), U);
        assert!(list.is_blocked_repr());
        let mut model: std::collections::BTreeSet<u32> = base.into_iter().collect();
        // Edits straddling the 128-entry block edges: ids around positions
        // 0, 127/128, 255/256, and past the end.
        let edits: Vec<u32> = vec![
            3,           // interior of block 0
            0,           // existing first id
            127 * 7,     // last id of block 0
            127 * 7 + 1, // gap straddling blocks 0/1
            128 * 7,     // first id of block 1
            255 * 7 + 3,
            256 * 7,
            639 * 7,     // global last
            639 * 7 + 5, // beyond the last block
        ];
        for &id in &edits {
            assert_eq!(list.insert(id as usize), model.insert(id), "insert {id}");
        }
        assert_eq!(list.to_vec(), model.iter().copied().collect::<Vec<_>>());
        for &id in &edits {
            assert_eq!(list.remove(id as usize), model.remove(&id), "remove {id}");
        }
        assert_eq!(list.to_vec(), model.iter().copied().collect::<Vec<_>>());
        assert!(list.is_blocked_repr(), "removals never demote");
    }

    #[test]
    fn blocked_front_insert_lands_before_first_block() {
        const U: usize = 1_000_000;
        let mut list = blocked(300, 10, U);
        // All existing ids are multiples of 10 starting at 0; 5 sorts
        // between blocks' firsts... actually before none: smallest is 0.
        // Remove 0 so an insert below the new first block head exercises
        // the p == 0 prepend path.
        assert!(list.remove(0));
        assert!(list.insert(5));
        assert_eq!(list.min(), Some(5));
        assert!(list.contains(5));
    }

    #[test]
    fn blocked_split_keeps_blocks_bounded() {
        const U: usize = 10_000_000;
        // Widely spaced base so inserted ids fall inside block 0's range.
        let mut list = blocked(400, 20_000, U);
        for id in 1..300u32 {
            assert!(list.insert(id as usize), "insert {id}");
        }
        let expected: std::collections::BTreeSet<u32> =
            (0..400u32).map(|i| i * 20_000).chain(1..300).collect();
        assert_eq!(list.to_vec(), expected.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn blocked_can_empty_out_and_refill() {
        const U: usize = 1_000_000;
        let ids: Vec<u32> = (0..300).map(|i| i * 11).collect();
        let mut list = PostingList::from_sorted(ids.clone(), U);
        assert!(list.is_blocked_repr());
        for &id in &ids {
            assert!(list.remove(id as usize));
        }
        assert!(list.is_empty());
        assert_eq!(list.min(), None);
        assert_eq!(list.max(), None);
        assert_eq!(list.iter().count(), 0);
        assert!(list.insert(42));
        assert_eq!(list.to_vec(), vec![42]);
    }

    #[test]
    fn blocked_intersections_agree_with_naive() {
        const U: usize = 1_000_000;
        let naive = |a: &PostingList, b: &PostingList| -> Vec<u32> {
            let bv = b.to_vec();
            a.to_vec()
                .into_iter()
                .filter(|x| bv.binary_search(x).is_ok())
                .collect()
        };
        let shapes: Vec<(PostingList, PostingList)> = vec![
            // blocked × blocked, interleaved strides
            (blocked(2000, 6, U), blocked(1500, 10, U)),
            // blocked × blocked, disjoint ranges
            (
                PostingList::from_sorted((0..400).collect(), U),
                PostingList::from_sorted((500_000..500_400).collect(), U),
            ),
            // blocked × sorted (both directions exercised below)
            (blocked(3000, 8, U), pl(&[0, 8, 9, 16, 23_000, 999_999], U)),
            // blocked × dense
            (
                blocked(1000, 13, U),
                PostingList::from_sorted((0..2000).collect(), 20_000),
            ),
        ];
        let mut buf = Vec::new();
        for (a, b) in &shapes {
            let expected = naive(a, b);
            assert_eq!(a.intersect(b).to_vec(), expected);
            assert_eq!(b.intersect(a).to_vec(), expected, "commuted");
            a.intersect_into(b, &mut buf);
            assert_eq!(buf, expected, "intersect_into");
            b.intersect_into(a, &mut buf);
            assert_eq!(buf, expected, "intersect_into commuted");
        }
    }

    #[test]
    fn blocked_subset_checks_agree_with_naive() {
        const U: usize = 1_000_000;
        let every_3rd: Vec<u32> = (0..3000).map(|i| i * 3).collect();
        let every_6th: Vec<u32> = (0..1500).map(|i| i * 6).collect();
        let big = PostingList::from_sorted(every_3rd, U);
        let half = PostingList::from_sorted(every_6th, U);
        assert!(big.is_blocked_repr() && half.is_blocked_repr());
        assert!(half.is_subset(&big));
        assert!(!big.is_subset(&half));
        // sorted ⊆ blocked and blocked ⊆ sorted
        assert!(pl(&[0, 3, 8997], U).is_subset(&big));
        assert!(!pl(&[0, 4], U).is_subset(&big));
        let small_blocked = blocked(300, 30, 1_000_000);
        let superset_sorted = PostingList {
            universe: 1_000_000,
            repr: Repr::Sorted((0..1200u32).map(|i| i * 15).collect()),
        };
        assert!(small_blocked.is_subset(&superset_sorted));
        let gap = PostingList {
            universe: 1_000_000,
            repr: Repr::Sorted((0..1200u32).map(|i| i * 15).filter(|&x| x != 60).collect()),
        };
        assert!(!small_blocked.is_subset(&gap));
    }

    #[test]
    fn renumber_after_delete_shifts_higher_ids() {
        let mut a = pl(&[1, 4, 9], 10);
        a.remove(4);
        a.renumber_after_delete(4);
        assert_eq!(a.to_vec(), vec![1, 8]);
        assert_eq!(a.universe(), 9);
        // Dense form too.
        let mut d = PostingList::from_sorted((0..50).collect(), 100);
        assert!(d.is_dense_repr());
        d.remove(10);
        d.renumber_after_delete(10);
        let expected: Vec<u32> = (0..49).collect();
        assert_eq!(d.to_vec(), expected);
        // Blocked form: ids above the removed row shift down by one.
        let mut b = blocked(400, 9, 1_000_000);
        b.remove(9);
        b.renumber_after_delete(9);
        let expected: Vec<u32> = (0..400u32)
            .map(|i| i * 9)
            .filter(|&x| x != 9)
            .map(|x| if x > 9 { x - 1 } else { x })
            .collect();
        assert_eq!(b.to_vec(), expected);
    }

    #[test]
    fn intersect_into_agrees_with_intersect_across_reprs() {
        // Sparse × sparse (merge + gallop), sparse × dense, dense × dense,
        // blocked × each.
        let cases: Vec<(PostingList, PostingList)> = vec![
            (pl(&[1, 5, 9, 20], 1000), pl(&[5, 6, 9, 21], 1000)),
            (
                pl(&[0, 7, 300, 1111], 1_000_000),
                PostingList::from_sorted((0..250).map(|i| i * 2).collect(), 1_000_000),
            ),
            (
                pl(&[2, 4, 96], 100),
                PostingList::from_sorted((0..100).filter(|i| i % 2 == 0).collect(), 100),
            ),
            (
                PostingList::from_sorted((0..100).filter(|i| i % 2 == 0).collect(), 100),
                PostingList::from_sorted((0..100).filter(|i| i % 3 == 0).collect(), 100),
            ),
            (pl(&[], 100), pl(&[1, 2], 100)),
            (blocked(1000, 4, 1_000_000), blocked(800, 6, 1_000_000)),
            (
                blocked(1000, 4, 1_000_000),
                PostingList::from_sorted((0..1000).collect(), 1001),
            ),
        ];
        let mut buf = vec![99u32]; // stale content must be cleared
        for (a, b) in &cases {
            a.intersect_into(b, &mut buf);
            assert_eq!(buf, a.intersect(b).to_vec(), "{:?} ∩ {:?}", a, b);
            b.intersect_into(a, &mut buf);
            assert_eq!(buf, a.intersect(b).to_vec(), "commuted");
        }
    }

    #[test]
    fn merge_and_gallop_agree() {
        // The kernel-backed merge and the gallop path must produce the same
        // sequence; force each by shaping lengths around GALLOP_RATIO.
        let a: Vec<u32> = (0..64).map(|i| i * 5).collect();
        let balanced: Vec<u32> = (0..64).map(|i| i * 3).collect();
        let lopsided: Vec<u32> = (0..1024).map(|i| i * 3).collect();
        let expect = |b: &[u32]| -> Vec<u32> {
            a.iter()
                .copied()
                .filter(|x| b.binary_search(x).is_ok())
                .collect()
        };
        assert_eq!(intersect_sorted(&a, &balanced), expect(&balanced));
        assert_eq!(intersect_sorted(&a, &lopsided), expect(&lopsided));
    }

    #[test]
    fn gallop_search_brackets() {
        let hay: Vec<u32> = vec![2, 4, 6, 8, 10, 12, 14, 16];
        assert_eq!(gallop_search(&hay, 2), Ok(0));
        assert_eq!(gallop_search(&hay, 16), Ok(7));
        assert_eq!(gallop_search(&hay, 7), Err(3));
        assert_eq!(gallop_search(&hay, 100), Err(8));
    }
}
