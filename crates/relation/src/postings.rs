//! Compact row-set representation shared by the discovery index and the
//! incremental cleaning engine.
//!
//! Index entries and candidate row sets were plain `Vec<RowId>`; at scale
//! the discovery hot path is dominated by merging those lists. A
//! [`PostingList`] keeps the sorted-`u32` form for sparse sets and switches
//! to a fixed-stride bitset once density crosses 1/16 of
//! the row universe, so the frequent entries (column formats, shared
//! prefixes) intersect word-at-a-time. Sorted × sorted intersections gallop
//! when the lengths are lopsided — the common shape when probing a rare
//! pattern against a frequent one.
//!
//! Equality and hashing are canonical over the *element sequence*, not the
//! representation, so row sets group identically regardless of which side
//! of the density threshold they landed on.
//!
//! The list also supports point mutation ([`insert`](PostingList::insert),
//! [`remove`](PostingList::remove),
//! [`renumber_after_delete`](PostingList::renumber_after_delete)) so the
//! incremental engine's per-group row sets can track relation edits without
//! rebuilding. This module lives in `pfd_relation` (rather than discovery,
//! where it originated) because both layers depend on it.

use crate::relation::RowId;
use std::hash::{Hash, Hasher};

/// Density numerator: a set is stored as a bitset when
/// `count * 16 >= DENSE_NUMERATOR * universe` (i.e. ≥ 1/16 of rows).
const DENSE_NUMERATOR: u64 = 1;

/// Sorted × sorted intersections gallop when one side is at least this many
/// times longer than the other.
const GALLOP_RATIO: usize = 8;

#[derive(Debug, Clone)]
enum Repr {
    /// Strictly increasing row ids.
    Sorted(Vec<u32>),
    /// Fixed-stride bitset over the row universe; `count` caches the popcount.
    Dense { words: Vec<u64>, count: u32 },
}

/// A set of row ids over a fixed universe (the relation's row count).
///
/// ```
/// use pfd_relation::PostingList;
///
/// let a = PostingList::from_sorted(vec![0, 2, 4, 6], 10);
/// let b = PostingList::from_sorted(vec![2, 3, 4], 10);
/// assert_eq!(a.intersect(&b).to_vec(), vec![2, 4]);
/// assert!(PostingList::from_sorted(vec![2, 4], 10).is_subset(&a));
/// assert!(a.contains(4) && !a.contains(5));
/// ```
#[derive(Debug, Clone)]
pub struct PostingList {
    universe: u32,
    repr: Repr,
}

impl PostingList {
    /// Build from a strictly increasing, deduplicated id vector.
    pub fn from_sorted(ids: Vec<u32>, universe: usize) -> PostingList {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "ids must be sorted+deduped"
        );
        debug_assert!(ids.last().is_none_or(|&m| (m as usize) < universe.max(1)));
        let universe = universe as u32;
        if is_dense(ids.len(), universe) {
            let mut words = vec![0u64; universe.div_ceil(64) as usize];
            for &id in &ids {
                words[(id / 64) as usize] |= 1u64 << (id % 64);
            }
            PostingList {
                universe,
                repr: Repr::Dense {
                    words,
                    count: ids.len() as u32,
                },
            }
        } else {
            PostingList {
                universe,
                repr: Repr::Sorted(ids),
            }
        }
    }

    /// Build from ids in any order, possibly with duplicates.
    pub fn from_unsorted(mut ids: Vec<u32>, universe: usize) -> PostingList {
        ids.sort_unstable();
        ids.dedup();
        PostingList::from_sorted(ids, universe)
    }

    /// The empty set over `universe` rows.
    pub fn empty(universe: usize) -> PostingList {
        PostingList::from_sorted(Vec::new(), universe)
    }

    /// Number of rows in the set.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Sorted(v) => v.len(),
            Repr::Dense { count, .. } => *count as usize,
        }
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The row universe this set was built over.
    pub fn universe(&self) -> usize {
        self.universe as usize
    }

    /// Is the set stored as a bitset? (Exposed for tests and stats.)
    pub fn is_dense_repr(&self) -> bool {
        matches!(self.repr, Repr::Dense { .. })
    }

    /// Membership test.
    pub fn contains(&self, id: RowId) -> bool {
        let id = id as u32;
        match &self.repr {
            Repr::Sorted(v) => v.binary_search(&id).is_ok(),
            Repr::Dense { words, .. } => {
                (id < self.universe) && words[(id / 64) as usize] & (1u64 << (id % 64)) != 0
            }
        }
    }

    /// Iterate the row ids in increasing order.
    pub fn iter(&self) -> PostingIter<'_> {
        match &self.repr {
            Repr::Sorted(v) => PostingIter::Sorted(v.iter()),
            Repr::Dense { words, .. } => PostingIter::Dense {
                words,
                word_idx: 0,
                current: words.first().copied().unwrap_or(0),
            },
        }
    }

    /// The ids as a sorted vector.
    pub fn to_vec(&self) -> Vec<u32> {
        self.iter().collect()
    }

    /// Set intersection. Gallops on lopsided sorted inputs, ANDs words on
    /// dense ones.
    pub fn intersect(&self, other: &PostingList) -> PostingList {
        let universe = self.universe.max(other.universe) as usize;
        match (&self.repr, &other.repr) {
            (Repr::Sorted(a), Repr::Sorted(b)) => {
                PostingList::from_sorted(intersect_sorted(a, b), universe)
            }
            (Repr::Sorted(a), Repr::Dense { .. }) => PostingList::from_sorted(
                a.iter()
                    .copied()
                    .filter(|&id| other.contains(id as RowId))
                    .collect(),
                universe,
            ),
            (Repr::Dense { .. }, Repr::Sorted(b)) => PostingList::from_sorted(
                b.iter()
                    .copied()
                    .filter(|&id| self.contains(id as RowId))
                    .collect(),
                universe,
            ),
            (Repr::Dense { words: wa, .. }, Repr::Dense { words: wb, .. }) => {
                // Zip truncates to the shorter word array (ids past the
                // smaller universe cannot be in both sets), then pad back to
                // the declared universe so the list stays self-consistent.
                let mut words: Vec<u64> = wa.iter().zip(wb).map(|(a, b)| a & b).collect();
                words.resize((universe as u32).div_ceil(64) as usize, 0);
                let count: u32 = words.iter().map(|w| w.count_ones()).sum();
                if is_dense(count as usize, universe as u32) {
                    PostingList {
                        universe: universe as u32,
                        repr: Repr::Dense { words, count },
                    }
                } else {
                    let ids = PostingList {
                        universe: universe as u32,
                        repr: Repr::Dense { words, count },
                    }
                    .to_vec();
                    PostingList::from_sorted(ids, universe)
                }
            }
        }
    }

    /// Set intersection into a caller-owned buffer: `out` is cleared and
    /// filled with the ascending intersection ids. Lets hot loops (the
    /// discovery lattice walk) probe many intersections through one pooled
    /// buffer and only materialize a [`PostingList`] for the survivors —
    /// rejected probes allocate nothing.
    pub fn intersect_into(&self, other: &PostingList, out: &mut Vec<u32>) {
        out.clear();
        match (&self.repr, &other.repr) {
            (Repr::Sorted(a), Repr::Sorted(b)) => intersect_sorted_into(a, b, out),
            (Repr::Sorted(a), Repr::Dense { .. }) => {
                out.extend(a.iter().copied().filter(|&id| other.contains(id as RowId)));
            }
            (Repr::Dense { .. }, Repr::Sorted(b)) => {
                out.extend(b.iter().copied().filter(|&id| self.contains(id as RowId)));
            }
            (Repr::Dense { words: wa, .. }, Repr::Dense { words: wb, .. }) => {
                for (i, (a, b)) in wa.iter().zip(wb).enumerate() {
                    let mut w = a & b;
                    while w != 0 {
                        out.push(i as u32 * 64 + w.trailing_zeros());
                        w &= w - 1;
                    }
                }
            }
        }
    }

    /// Smallest row id, `None` when empty.
    pub fn min(&self) -> Option<u32> {
        match &self.repr {
            Repr::Sorted(v) => v.first().copied(),
            Repr::Dense { words, .. } => words
                .iter()
                .enumerate()
                .find(|(_, w)| **w != 0)
                .map(|(i, w)| i as u32 * 64 + w.trailing_zeros()),
        }
    }

    /// Largest row id, `None` when empty.
    pub fn max(&self) -> Option<u32> {
        match &self.repr {
            Repr::Sorted(v) => v.last().copied(),
            Repr::Dense { words, .. } => words
                .iter()
                .enumerate()
                .rev()
                .find(|(_, w)| **w != 0)
                .map(|(i, w)| i as u32 * 64 + 63 - w.leading_zeros()),
        }
    }

    /// Insert one row id, growing the universe when `id` lies beyond it.
    /// Returns `true` when the id was newly added. The representation is
    /// promoted to a bitset when the insert crosses the density threshold;
    /// removals never demote (hysteresis keeps edit sequences cheap).
    pub fn insert(&mut self, id: RowId) -> bool {
        let id = id as u32;
        if id >= self.universe {
            self.universe = id + 1;
            if let Repr::Dense { words, .. } = &mut self.repr {
                words.resize(self.universe.div_ceil(64) as usize, 0);
            }
        }
        match &mut self.repr {
            Repr::Sorted(v) => match v.binary_search(&id) {
                Ok(_) => false,
                Err(pos) => {
                    v.insert(pos, id);
                    if is_dense(v.len(), self.universe) {
                        *self = PostingList::from_sorted(std::mem::take(v), self.universe as usize);
                    }
                    true
                }
            },
            Repr::Dense { words, count } => {
                let w = &mut words[(id / 64) as usize];
                let bit = 1u64 << (id % 64);
                if *w & bit == 0 {
                    *w |= bit;
                    *count += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Remove one row id; returns `true` when it was present.
    pub fn remove(&mut self, id: RowId) -> bool {
        let id = id as u32;
        match &mut self.repr {
            Repr::Sorted(v) => match v.binary_search(&id) {
                Ok(pos) => {
                    v.remove(pos);
                    true
                }
                Err(_) => false,
            },
            Repr::Dense { words, count } => {
                if id >= self.universe {
                    return false;
                }
                let w = &mut words[(id / 64) as usize];
                let bit = 1u64 << (id % 64);
                if *w & bit != 0 {
                    *w &= !bit;
                    *count -= 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Renumber after row `removed` left the universe: the id itself is
    /// dropped (callers normally [`remove`](PostingList::remove) it first)
    /// and every id above it shifts down by one, mirroring
    /// `Relation::delete_row`'s renumbering.
    pub fn renumber_after_delete(&mut self, removed: RowId) {
        let removed = removed as u32;
        let ids: Vec<u32> = self
            .iter()
            .filter(|&id| id != removed)
            .map(|id| if id > removed { id - 1 } else { id })
            .collect();
        *self = PostingList::from_sorted(ids, self.universe.saturating_sub(1).max(1) as usize);
    }

    /// Is `self ⊆ other`?
    pub fn is_subset(&self, other: &PostingList) -> bool {
        if self.len() > other.len() {
            return false;
        }
        match (&self.repr, &other.repr) {
            (Repr::Sorted(a), Repr::Sorted(b)) => is_subset_sorted(a, b),
            _ => self.iter().all(|id| other.contains(id as RowId)),
        }
    }
}

/// Representation decision rule.
fn is_dense(count: usize, universe: u32) -> bool {
    universe >= 64 && (count as u64) * 16 >= DENSE_NUMERATOR * universe as u64
}

/// Sorted intersection: linear merge for comparable lengths, galloping when
/// one side dominates.
fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    intersect_sorted_into(a, b, &mut out);
    out
}

/// [`intersect_sorted`] writing into a caller-owned buffer (not cleared).
fn intersect_sorted_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return;
    }
    if large.len() >= small.len().saturating_mul(GALLOP_RATIO) {
        // Gallop: advance through `large` with exponential probes from the
        // last hit, then binary-search the bracketed window.
        let mut base = 0usize;
        for &x in small {
            match gallop_search(&large[base..], x) {
                Ok(off) => {
                    out.push(x);
                    base += off + 1;
                }
                Err(off) => base += off,
            }
            if base >= large.len() {
                break;
            }
        }
    } else {
        let (mut i, mut j) = (0, 0);
        while i < small.len() && j < large.len() {
            match small[i].cmp(&large[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(small[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
}

/// Find `x` in sorted `hay` by exponential probing then binary search.
/// `Ok(i)`: found at `i`; `Err(i)`: not present, `i` is the insertion point.
fn gallop_search(hay: &[u32], x: u32) -> Result<usize, usize> {
    // Probe 1, 2, 4, … until hay[hi] ≥ x (or the end); x then lies within
    // hay[hi/2 ..= hi], inclusive of the probe that stopped the gallop.
    let mut hi = 1usize;
    while hi < hay.len() && hay[hi] < x {
        hi *= 2;
    }
    let lo = hi / 2;
    let hi = (hi + 1).min(hay.len());
    match hay[lo..hi].binary_search(&x) {
        Ok(i) => Ok(lo + i),
        Err(i) => Err(lo + i),
    }
}

/// Sorted subset check with a galloping scan through the superset.
fn is_subset_sorted(a: &[u32], b: &[u32]) -> bool {
    let mut base = 0usize;
    for &x in a {
        if base >= b.len() {
            return false;
        }
        match gallop_search(&b[base..], x) {
            Ok(off) => base += off + 1,
            Err(_) => return false,
        }
    }
    true
}

impl PartialEq for PostingList {
    fn eq(&self, other: &Self) -> bool {
        match (&self.repr, &other.repr) {
            (Repr::Sorted(a), Repr::Sorted(b)) => a == b,
            (
                Repr::Dense {
                    words: a,
                    count: ca,
                },
                Repr::Dense {
                    words: b,
                    count: cb,
                },
            ) => ca == cb && a == b,
            _ => self.len() == other.len() && self.iter().eq(other.iter()),
        }
    }
}

impl Eq for PostingList {}

impl Hash for PostingList {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Canonical over the element *sequence prefix* plus (count, max) so
        // Sorted and Dense forms of one set hash alike without iterating
        // row sets that can span the whole relation. The bounded prefix
        // matters for discovery's RHS decision cache, which probes many
        // distinct joint row sets of equal size sharing min and max — a
        // summary-only hash would bucket those together and degrade every
        // probe to full `Eq` scans.
        state.write_usize(self.len());
        if !self.is_empty() {
            state.write_u32(self.max().expect("non-empty"));
            for id in self.iter().take(8) {
                state.write_u32(id);
            }
        }
    }
}

/// Iterator over a [`PostingList`]'s row ids, ascending.
pub enum PostingIter<'a> {
    /// Sorted-vector cursor.
    Sorted(std::slice::Iter<'a, u32>),
    /// Bitset word scanner.
    Dense {
        /// The words being scanned.
        words: &'a [u64],
        /// Index of the word in `current`.
        word_idx: usize,
        /// Remaining bits of the current word.
        current: u64,
    },
}

impl Iterator for PostingIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        match self {
            PostingIter::Sorted(it) => it.next().copied(),
            PostingIter::Dense {
                words,
                word_idx,
                current,
            } => loop {
                if *current != 0 {
                    let bit = current.trailing_zeros();
                    *current &= *current - 1;
                    return Some(*word_idx as u32 * 64 + bit);
                }
                *word_idx += 1;
                if *word_idx >= words.len() {
                    return None;
                }
                *current = words[*word_idx];
            },
        }
    }
}

/// A growable row-set accumulator for unions (coverage computations):
/// a bitset over the universe with a running count.
#[derive(Debug, Clone)]
pub struct RowSetAccumulator {
    words: Vec<u64>,
    count: usize,
}

impl RowSetAccumulator {
    /// An empty accumulator over `universe` rows.
    pub fn new(universe: usize) -> RowSetAccumulator {
        RowSetAccumulator {
            words: vec![0u64; universe.div_ceil(64)],
            count: 0,
        }
    }

    /// Insert one row id.
    pub fn insert(&mut self, id: RowId) {
        let w = &mut self.words[id / 64];
        let bit = 1u64 << (id % 64);
        if *w & bit == 0 {
            *w |= bit;
            self.count += 1;
        }
    }

    /// Union a whole posting list into the accumulator.
    pub fn insert_all(&mut self, list: &PostingList) {
        match &list.repr {
            Repr::Sorted(v) => {
                for &id in v {
                    self.insert(id as usize);
                }
            }
            Repr::Dense { words, .. } => {
                let mut count = 0usize;
                for (dst, src) in self.words.iter_mut().zip(words) {
                    *dst |= src;
                    count += dst.count_ones() as usize;
                }
                // Words beyond the zipped prefix keep their bits.
                for dst in self.words.iter().skip(words.len()) {
                    count += dst.count_ones() as usize;
                }
                self.count = count;
            }
        }
    }

    /// Number of distinct rows inserted so far.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Is the accumulator empty?
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pl(ids: &[u32], universe: usize) -> PostingList {
        PostingList::from_sorted(ids.to_vec(), universe)
    }

    #[test]
    fn empty_intersections() {
        let a = pl(&[], 100);
        let b = pl(&[1, 2, 3], 100);
        assert!(a.intersect(&b).is_empty());
        assert!(b.intersect(&a).is_empty());
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
    }

    #[test]
    fn disjoint_sets() {
        let a = pl(&[0, 2, 4, 6], 100);
        let b = pl(&[1, 3, 5, 7], 100);
        assert!(a.intersect(&b).is_empty());
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn nested_sets() {
        let a = pl(&[10, 20, 30], 100);
        let b = pl(&[5, 10, 15, 20, 25, 30, 35], 100);
        assert_eq!(a.intersect(&b).to_vec(), vec![10, 20, 30]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
    }

    #[test]
    fn duplicates_are_deduped_by_from_unsorted() {
        let a = PostingList::from_unsorted(vec![3, 1, 3, 2, 1], 10);
        assert_eq!(a.to_vec(), vec![1, 2, 3]);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn galloping_matches_linear_on_lopsided_inputs() {
        // Universe 1M keeps both sides in sorted form; 4 needles vs 600
        // haystack ids triggers the galloping intersection.
        const U: usize = 1_000_000;
        let needles = pl(&[0, 7, 300, 1111], U);
        let hay: Vec<u32> = (0..600).map(|i| i * 2).collect();
        let hay_pl = PostingList::from_sorted(hay.clone(), U);
        assert!(!needles.is_dense_repr() && !hay_pl.is_dense_repr());
        let expected: Vec<u32> = [0u32, 7, 300, 1111]
            .iter()
            .copied()
            .filter(|x| hay.contains(x))
            .collect();
        assert_eq!(expected, vec![0, 300]);
        assert_eq!(needles.intersect(&hay_pl).to_vec(), expected);
        assert_eq!(hay_pl.intersect(&needles).to_vec(), expected);
    }

    #[test]
    fn galloping_subset_checks_stay_sorted() {
        // Large universe: the subset checks below run the galloping scan,
        // not the bitset path.
        const U: usize = 1_000_000;
        let small = pl(&[2, 40, 4000, 400_000], U);
        let big_ids: Vec<u32> = (0..5000).map(|i| i * 100).collect(); // 0,100,…
        let big = PostingList::from_sorted(big_ids, U);
        assert!(!small.is_dense_repr() && !big.is_dense_repr());
        assert!(pl(&[0, 400, 4000, 400_000], U).is_subset(&big));
        assert!(!small.is_subset(&big), "2 and 40 are not multiples of 100");
        // First and last elements of the superset are found.
        assert!(pl(&[0], U).is_subset(&big));
        assert!(pl(&[499_900], U).is_subset(&big));
        assert!(!pl(&[499_901], U).is_subset(&big));
    }

    #[test]
    fn dense_representation_kicks_in_and_agrees() {
        // 50 of 100 rows: well past the 1/16 density bar.
        let ids: Vec<u32> = (0..100).filter(|i| i % 2 == 0).collect();
        let dense = PostingList::from_sorted(ids.clone(), 100);
        assert!(dense.is_dense_repr());
        assert_eq!(dense.len(), 50);
        assert_eq!(dense.to_vec(), ids);
        let sparse = pl(&[2, 4, 96], 100);
        assert!(!sparse.is_dense_repr());
        assert_eq!(sparse.intersect(&dense).to_vec(), vec![2, 4, 96]);
        assert_eq!(dense.intersect(&sparse).to_vec(), vec![2, 4, 96]);
        assert!(sparse.is_subset(&dense));

        let other: Vec<u32> = (0..100).filter(|i| i % 3 == 0).collect();
        let dense2 = PostingList::from_sorted(other, 100);
        let both = dense.intersect(&dense2);
        let expected: Vec<u32> = (0..100).filter(|i| i % 6 == 0).collect();
        assert_eq!(both.to_vec(), expected);
    }

    #[test]
    fn equality_and_hash_are_representation_independent() {
        use std::collections::hash_map::DefaultHasher;
        // Same elements, forced into different representations via universe.
        let ids: Vec<u32> = (0..32).collect();
        let dense = PostingList::from_sorted(ids.clone(), 64); // 32/64 → dense
        let sparse = PostingList {
            universe: 64,
            repr: Repr::Sorted(ids),
        };
        assert!(dense.is_dense_repr());
        assert!(!sparse.is_dense_repr());
        assert_eq!(dense, sparse);
        let h = |p: &PostingList| {
            let mut h = DefaultHasher::new();
            p.hash(&mut h);
            h.finish()
        };
        assert_eq!(h(&dense), h(&sparse));
    }

    #[test]
    fn contains_and_iter() {
        let a = pl(&[1, 5, 9], 100);
        assert!(a.contains(5));
        assert!(!a.contains(6));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 5, 9]);
    }

    #[test]
    fn accumulator_counts_unions() {
        let mut acc = RowSetAccumulator::new(200);
        acc.insert_all(&pl(&[1, 2, 3], 200));
        acc.insert_all(&pl(&[3, 4], 200));
        acc.insert(4);
        acc.insert(5);
        assert_eq!(acc.len(), 5);
        let dense = PostingList::from_sorted((0..100).collect(), 200);
        acc.insert_all(&dense);
        assert_eq!(acc.len(), 100, "{{1..=5}} ⊂ 0..100");
        acc.insert_all(&pl(&[150], 200));
        assert_eq!(acc.len(), 101);
    }

    #[test]
    fn mixed_universe_dense_intersection_stays_consistent() {
        // Both dense, different universes: the result must carry word
        // storage matching its declared universe so `contains` never
        // indexes past the array.
        let a = PostingList::from_sorted((0..16).collect(), 64);
        let b = PostingList::from_sorted((0..16).collect(), 128);
        assert!(a.is_dense_repr() && b.is_dense_repr());
        let c = a.intersect(&b);
        assert_eq!(c.to_vec(), (0..16).collect::<Vec<u32>>());
        assert_eq!(c.universe(), 128);
        assert!(!c.contains(100));
        assert!(c.contains(15));
    }

    #[test]
    fn insert_remove_roundtrip_sparse() {
        let mut a = pl(&[2, 8], 1000);
        assert!(a.insert(5));
        assert!(!a.insert(5), "already present");
        assert_eq!(a.to_vec(), vec![2, 5, 8]);
        assert!(a.remove(2));
        assert!(!a.remove(2), "already gone");
        assert_eq!(a.to_vec(), vec![5, 8]);
    }

    #[test]
    fn insert_grows_universe_and_promotes_to_dense() {
        let mut a = pl(&[0], 64);
        assert!(!a.is_dense_repr());
        for id in 1..8 {
            assert!(a.insert(id));
        }
        // 8 of 64 = 1/8 ≥ 1/16: the insert crossing the bar promoted it.
        assert!(a.is_dense_repr());
        assert!(a.insert(100), "id beyond the universe grows it");
        assert_eq!(a.universe(), 101);
        assert!(a.contains(100));
        assert!(a.remove(100));
        assert_eq!(a.len(), 8);
        assert_eq!(a.to_vec(), (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn renumber_after_delete_shifts_higher_ids() {
        let mut a = pl(&[1, 4, 9], 10);
        a.remove(4);
        a.renumber_after_delete(4);
        assert_eq!(a.to_vec(), vec![1, 8]);
        assert_eq!(a.universe(), 9);
        // Dense form too.
        let mut d = PostingList::from_sorted((0..50).collect(), 100);
        assert!(d.is_dense_repr());
        d.remove(10);
        d.renumber_after_delete(10);
        let expected: Vec<u32> = (0..49).collect();
        assert_eq!(d.to_vec(), expected);
    }

    #[test]
    fn intersect_into_agrees_with_intersect_across_reprs() {
        // Sparse × sparse (merge + gallop), sparse × dense, dense × dense.
        let cases: Vec<(PostingList, PostingList)> = vec![
            (pl(&[1, 5, 9, 20], 1000), pl(&[5, 6, 9, 21], 1000)),
            (
                pl(&[0, 7, 300, 1111], 1_000_000),
                PostingList::from_sorted((0..600).map(|i| i * 2).collect(), 1_000_000),
            ),
            (
                pl(&[2, 4, 96], 100),
                PostingList::from_sorted((0..100).filter(|i| i % 2 == 0).collect(), 100),
            ),
            (
                PostingList::from_sorted((0..100).filter(|i| i % 2 == 0).collect(), 100),
                PostingList::from_sorted((0..100).filter(|i| i % 3 == 0).collect(), 100),
            ),
            (pl(&[], 100), pl(&[1, 2], 100)),
        ];
        let mut buf = vec![99u32]; // stale content must be cleared
        for (a, b) in &cases {
            a.intersect_into(b, &mut buf);
            assert_eq!(buf, a.intersect(b).to_vec(), "{:?} ∩ {:?}", a, b);
            b.intersect_into(a, &mut buf);
            assert_eq!(buf, a.intersect(b).to_vec(), "commuted");
        }
    }

    #[test]
    fn gallop_search_brackets() {
        let hay: Vec<u32> = vec![2, 4, 6, 8, 10, 12, 14, 16];
        assert_eq!(gallop_search(&hay, 2), Ok(0));
        assert_eq!(gallop_search(&hay, 16), Ok(7));
        assert_eq!(gallop_search(&hay, 7), Err(3));
        assert_eq!(gallop_search(&hay, 100), Err(8));
    }
}
