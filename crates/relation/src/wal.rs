//! Record-framed write-ahead log with per-record checksums.
//!
//! PR 6's session delta log was raw JSONL appended to a text file: a crash
//! mid-append left a torn last line that the replayer could only reject
//! wholesale, and nothing detected a flipped byte or a duplicated flush.
//! This module replaces that with a binary framing every record passes
//! through:
//!
//! ```text
//! file   := header record*
//! header := "PFDL" version:u32le
//! record := len:u32le seq:u64le checksum:u64le payload[len]
//! ```
//!
//! * `len` is the payload byte length;
//! * `seq` is a monotonically increasing sequence number (+1 per record,
//!   continuing across file generations) — replay can skip records a
//!   snapshot already covers, which is what makes the checkpoint sequence
//!   *(write snapshot, then truncate log)* crash-safe: a crash between the
//!   two can no longer double-apply deltas;
//! * `checksum` is FNV-1a64 over the seq bytes and the payload.
//!
//! [`read_wal_bytes`] never fails: it decodes the longest valid prefix and
//! reports *why* it stopped as a [`WalTail`] — a clean end, a torn record
//! (crash mid-append), a checksum mismatch (bit rot), or a broken sequence
//! (duplicated or reordered records). The recovery supervisor in
//! `pfd_core::snapshot` decides what each tail kind means under the chosen
//! recovery policy; [`WalWriter::open`] truncates invalid tails before
//! appending so a salvaged log never grows garbage in the middle.

// Log recovery runs against arbitrary crashed-file bytes; a panic here is a
// recovery bug, so unwrapping is denied outright (tests opt back in).
#![deny(clippy::unwrap_used)]

use std::io;
use std::path::{Path, PathBuf};

use crate::binary::fnv1a;
use crate::io::Io;

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: [u8; 4] = *b"PFDL";

/// Current WAL format version.
pub const WAL_VERSION: u32 = 1;

/// Byte length of the file header (magic + version).
pub const WAL_HEADER_LEN: u64 = 8;

/// Byte length of a record frame before its payload (len + seq + checksum).
pub const RECORD_HEADER_LEN: u64 = 4 + 8 + 8;

/// One decoded log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Monotonic sequence number.
    pub seq: u64,
    /// The record payload (for session logs: one JSONL command line).
    pub payload: Vec<u8>,
}

/// Why [`read_wal_bytes`] stopped decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalTail {
    /// Every byte decoded; the log ends on a record boundary.
    Clean,
    /// The file is shorter than the 8-byte header or its magic/version is
    /// wrong — a crash during creation, or not a WAL at all.
    BadHeader {
        /// Bytes present in the file.
        len: u64,
    },
    /// The file ends inside a record (frame or payload) — the signature of
    /// a crash mid-append.
    Torn {
        /// Offset of the incomplete record.
        offset: u64,
        /// Bytes present after `offset`.
        have: u64,
        /// Bytes a complete record would need.
        need: u64,
    },
    /// A structurally complete record whose checksum does not match its
    /// payload — bit rot or a torn write that landed inside old data.
    BadChecksum {
        /// Offset of the corrupt record.
        offset: u64,
        /// Its (untrusted) sequence number.
        seq: u64,
    },
    /// A record whose sequence number is not the predecessor's + 1 — a
    /// duplicated or reordered flush.
    BadSequence {
        /// Offset of the offending record.
        offset: u64,
        /// The sequence number continuity requires.
        expected: u64,
        /// The sequence number found.
        found: u64,
    },
}

impl WalTail {
    /// True when the log decoded completely.
    pub fn is_clean(&self) -> bool {
        matches!(self, WalTail::Clean)
    }

    /// Short lowercase label for reports and JSON events.
    pub fn label(&self) -> &'static str {
        match self {
            WalTail::Clean => "clean",
            WalTail::BadHeader { .. } => "bad_header",
            WalTail::Torn { .. } => "torn",
            WalTail::BadChecksum { .. } => "bad_checksum",
            WalTail::BadSequence { .. } => "bad_sequence",
        }
    }
}

impl std::fmt::Display for WalTail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalTail::Clean => write!(f, "clean"),
            WalTail::BadHeader { len } => {
                write!(f, "invalid log header ({len} bytes present)")
            }
            WalTail::Torn { offset, have, need } => {
                write!(
                    f,
                    "torn record at offset {offset} ({have} of {need} bytes present)"
                )
            }
            WalTail::BadChecksum { offset, seq } => {
                write!(f, "checksum mismatch at offset {offset} (record seq {seq})")
            }
            WalTail::BadSequence {
                offset,
                expected,
                found,
            } => {
                write!(
                    f,
                    "sequence break at offset {offset} (expected {expected}, found {found})"
                )
            }
        }
    }
}

/// Result of decoding a log image: the valid record prefix, the byte
/// length of that prefix, and why decoding stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalReadOutcome {
    /// Records of the valid prefix, in order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (0 when even the header is bad —
    /// a writer reinitializes such a file from scratch).
    pub valid_len: u64,
    /// Why decoding stopped.
    pub tail: WalTail,
}

impl WalReadOutcome {
    /// Sequence number of the last valid record.
    pub fn last_seq(&self) -> Option<u64> {
        self.records.last().map(|r| r.seq)
    }

    /// Bytes past the valid prefix, given the file's total length.
    pub fn lost_bytes(&self, file_len: u64) -> u64 {
        file_len.saturating_sub(self.valid_len)
    }
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

/// Checksum of one record: FNV-1a64 over seq (little-endian) ++ payload.
fn record_checksum(seq: u64, payload: &[u8]) -> u64 {
    let mut buf = Vec::with_capacity(8 + payload.len());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(payload);
    fnv1a(&buf)
}

/// Appends one framed record to `out`.
pub fn encode_record(out: &mut Vec<u8>, seq: u64, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&record_checksum(seq, payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Appends the file header to `out`.
pub fn encode_header(out: &mut Vec<u8>) {
    out.extend_from_slice(&WAL_MAGIC);
    out.extend_from_slice(&WAL_VERSION.to_le_bytes());
}

/// Decodes a log image into its longest valid record prefix.
///
/// Never fails: corruption is reported through [`WalReadOutcome::tail`]
/// and everything before it is returned. An empty image is a clean,
/// record-less log (the state before a writer ever opened it).
pub fn read_wal_bytes(data: &[u8]) -> WalReadOutcome {
    if data.is_empty() {
        return WalReadOutcome {
            records: Vec::new(),
            valid_len: 0,
            tail: WalTail::Clean,
        };
    }
    if (data.len() as u64) < WAL_HEADER_LEN
        || data[..4] != WAL_MAGIC
        || le_u32(&data[4..8]) != WAL_VERSION
    {
        return WalReadOutcome {
            records: Vec::new(),
            valid_len: 0,
            tail: WalTail::BadHeader {
                len: data.len() as u64,
            },
        };
    }
    let mut records = Vec::new();
    let mut pos = WAL_HEADER_LEN as usize;
    let mut expected_seq: Option<u64> = None;
    let tail = loop {
        if pos == data.len() {
            break WalTail::Clean;
        }
        let remaining = (data.len() - pos) as u64;
        if remaining < RECORD_HEADER_LEN {
            break WalTail::Torn {
                offset: pos as u64,
                have: remaining,
                need: RECORD_HEADER_LEN,
            };
        }
        let len = u64::from(le_u32(&data[pos..pos + 4]));
        let need = RECORD_HEADER_LEN + len;
        if remaining < need {
            break WalTail::Torn {
                offset: pos as u64,
                have: remaining,
                need,
            };
        }
        let seq = le_u64(&data[pos + 4..pos + 12]);
        let checksum = le_u64(&data[pos + 12..pos + 20]);
        let payload = &data[pos + 20..pos + 20 + len as usize];
        if record_checksum(seq, payload) != checksum {
            break WalTail::BadChecksum {
                offset: pos as u64,
                seq,
            };
        }
        if let Some(expected) = expected_seq {
            if seq != expected {
                break WalTail::BadSequence {
                    offset: pos as u64,
                    expected,
                    found: seq,
                };
            }
        }
        expected_seq = Some(seq + 1);
        records.push(WalRecord {
            seq,
            payload: payload.to_vec(),
        });
        pos += need as usize;
    };
    WalReadOutcome {
        records,
        valid_len: pos as u64,
        tail,
    }
}

/// When appended records are forced to durable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `sync` after every record — an acknowledged append survives a crash.
    Always,
    /// Never sync — for benchmarks measuring the fsync overhead itself.
    Never,
}

/// Appends framed records to a log file through an [`Io`] handle.
pub struct WalWriter<'io> {
    io: &'io dyn Io,
    path: PathBuf,
    next_seq: u64,
    sync: SyncPolicy,
}

impl<'io> WalWriter<'io> {
    /// Opens (creating if needed) the log at `path` for appending.
    ///
    /// An existing file is scanned first: an invalid tail is truncated away
    /// so new records only ever extend a valid prefix, and the next
    /// sequence number continues after the larger of the last on-disk
    /// record and `start_after` (the sequence the current snapshot already
    /// covers). Returns the writer and the scan outcome.
    pub fn open(
        io: &'io dyn Io,
        path: &Path,
        start_after: u64,
        sync: SyncPolicy,
    ) -> io::Result<(Self, WalReadOutcome)> {
        let data = if io.exists(path) {
            io.read(path)?
        } else {
            Vec::new()
        };
        let outcome = read_wal_bytes(&data);
        if outcome.valid_len == 0 {
            // Fresh file, or one whose header never made it to disk:
            // (re)initialize it.
            let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
            encode_header(&mut header);
            io.write(path, &header)?;
            io.sync(path)?;
        } else if outcome.valid_len < data.len() as u64 {
            io.truncate(path, outcome.valid_len)?;
            io.sync(path)?;
        }
        let next_seq = outcome.last_seq().unwrap_or(0).max(start_after) + 1;
        Ok((
            WalWriter {
                io,
                path: path.to_path_buf(),
                next_seq,
                sync,
            },
            outcome,
        ))
    }

    /// Resumes appending to a log this process already validated, without
    /// re-reading it: the next record gets sequence `next_seq`.
    ///
    /// [`WalWriter::open`] scans the whole file to find the valid prefix —
    /// right after a crash, wrong on every reopen of a live log (a server
    /// draining a tenant thousands of times would re-read the log
    /// quadratically). The caller owns the contract that the file exists
    /// with a valid tail and that its last record is `next_seq - 1`; the
    /// multi-tenant server caches that from its previous open or append.
    pub fn continue_at(io: &'io dyn Io, path: &Path, next_seq: u64, sync: SyncPolicy) -> Self {
        WalWriter {
            io,
            path: path.to_path_buf(),
            next_seq,
            sync,
        }
    }

    /// Appends one record, returning its sequence number. With
    /// [`SyncPolicy::Always`] the record is durable when this returns.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<u64> {
        let seq = self.next_seq;
        let mut frame = Vec::with_capacity(RECORD_HEADER_LEN as usize + payload.len());
        encode_record(&mut frame, seq, payload);
        self.io.append(&self.path, &frame)?;
        if self.sync == SyncPolicy::Always {
            self.io.sync(&self.path)?;
        }
        self.next_seq = seq + 1;
        Ok(seq)
    }

    /// Sequence number of the most recently appended record (or the
    /// `start_after`/on-disk floor when nothing was appended yet).
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Adapts a [`WalWriter`] to [`io::Write`] for line-oriented producers:
/// every `\n`-terminated chunk becomes one record (without the newline).
///
/// This is the bridge to the session layer, which logs one JSONL command
/// per applied edit through a `&mut dyn Write` seam.
pub struct WalLineSink<'a, 'io> {
    writer: &'a mut WalWriter<'io>,
    buf: Vec<u8>,
}

impl<'a, 'io> WalLineSink<'a, 'io> {
    /// Frames lines written through `io::Write` into `writer`.
    pub fn new(writer: &'a mut WalWriter<'io>) -> Self {
        WalLineSink {
            writer,
            buf: Vec::new(),
        }
    }
}

impl io::Write for WalLineSink<'_, '_> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        for &b in data {
            if b == b'\n' {
                let line = std::mem::take(&mut self.buf);
                self.writer.append(&line)?;
            } else {
                self.buf.push(b);
            }
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::io::MemIo;

    fn log_with(payloads: &[&[u8]]) -> Vec<u8> {
        let mut data = Vec::new();
        encode_header(&mut data);
        for (i, p) in payloads.iter().enumerate() {
            encode_record(&mut data, i as u64 + 1, p);
        }
        data
    }

    #[test]
    fn clean_log_round_trips() {
        let data = log_with(&[b"one", b"", b"three"]);
        let outcome = read_wal_bytes(&data);
        assert_eq!(outcome.tail, WalTail::Clean);
        assert_eq!(outcome.valid_len, data.len() as u64);
        assert_eq!(outcome.records.len(), 3);
        assert_eq!(outcome.records[0].seq, 1);
        assert_eq!(outcome.records[2].payload, b"three");
        assert_eq!(outcome.last_seq(), Some(3));
    }

    #[test]
    fn continue_at_extends_without_rescanning() {
        let io = MemIo::new();
        let path = Path::new("t.log");
        let first_next = {
            let (mut wal, _) = WalWriter::open(&io, path, 0, SyncPolicy::Always).unwrap();
            wal.append(b"one").unwrap();
            wal.append(b"two").unwrap();
            wal.last_seq() + 1
        };
        // Resume with the cached sequence: appends continue the chain and a
        // fresh full open sees one contiguous valid log.
        let mut wal = WalWriter::continue_at(&io, path, first_next, SyncPolicy::Always);
        assert_eq!(wal.append(b"three").unwrap(), 3);
        let (_, outcome) = WalWriter::open(&io, path, 0, SyncPolicy::Always).unwrap();
        assert_eq!(outcome.tail, WalTail::Clean);
        assert_eq!(outcome.last_seq(), Some(3));
        assert_eq!(outcome.records[2].payload, b"three");
    }

    #[test]
    fn empty_and_headerless_images_are_handled() {
        let outcome = read_wal_bytes(b"");
        assert_eq!(outcome.tail, WalTail::Clean);
        assert!(outcome.records.is_empty());
        // A crash during header creation leaves < 8 bytes.
        let outcome = read_wal_bytes(b"PFD");
        assert_eq!(outcome.tail, WalTail::BadHeader { len: 3 });
        assert_eq!(outcome.valid_len, 0);
        // A non-WAL file of sufficient length is also a bad header.
        let outcome = read_wal_bytes(b"not a wal file");
        assert!(matches!(outcome.tail, WalTail::BadHeader { .. }));
    }

    #[test]
    fn every_truncation_yields_the_complete_prefix() {
        let payloads: &[&[u8]] = &[b"alpha", b"bravo-longer", b"c"];
        let data = log_with(payloads);
        // Record boundaries for deciding how many records survive a cut.
        let mut boundaries = vec![WAL_HEADER_LEN];
        for p in payloads {
            boundaries.push(boundaries.last().unwrap() + RECORD_HEADER_LEN + p.len() as u64);
        }
        for cut in 0..data.len() {
            let outcome = read_wal_bytes(&data[..cut]);
            let expect_records = boundaries
                .iter()
                .filter(|&&b| b > 0 && b <= cut as u64)
                .count()
                - usize::from(cut as u64 >= WAL_HEADER_LEN);
            assert_eq!(
                outcome.records.len(),
                expect_records,
                "cut at {cut}: complete prefix only"
            );
            if cut == 0 {
                assert_eq!(outcome.tail, WalTail::Clean, "empty image is clean");
            } else if (cut as u64) < WAL_HEADER_LEN {
                assert!(matches!(outcome.tail, WalTail::BadHeader { .. }));
            } else if boundaries.contains(&(cut as u64)) {
                assert_eq!(outcome.tail, WalTail::Clean, "cut at {cut}");
            } else {
                assert!(
                    matches!(outcome.tail, WalTail::Torn { .. }),
                    "cut at {cut}: {:?}",
                    outcome.tail
                );
            }
            for (i, r) in outcome.records.iter().enumerate() {
                assert_eq!(r.payload, payloads[i]);
            }
        }
    }

    #[test]
    fn bit_flips_stop_at_the_flipped_record() {
        let data = log_with(&[b"alpha", b"bravo"]);
        // Flip a byte inside the second record's payload.
        let second_start = WAL_HEADER_LEN + RECORD_HEADER_LEN + 5;
        let mut flipped = data.clone();
        let pos = (second_start + RECORD_HEADER_LEN + 2) as usize;
        flipped[pos] ^= 0x40;
        let outcome = read_wal_bytes(&flipped);
        assert_eq!(outcome.records.len(), 1, "first record survives");
        assert_eq!(
            outcome.tail,
            WalTail::BadChecksum {
                offset: second_start,
                seq: 2
            }
        );
        assert_eq!(outcome.valid_len, second_start);
    }

    #[test]
    fn duplicated_and_reordered_records_break_the_sequence() {
        let mut dup = Vec::new();
        encode_header(&mut dup);
        encode_record(&mut dup, 1, b"a");
        let boundary = dup.len() as u64;
        encode_record(&mut dup, 1, b"a"); // duplicated flush
        let outcome = read_wal_bytes(&dup);
        assert_eq!(outcome.records.len(), 1);
        assert_eq!(
            outcome.tail,
            WalTail::BadSequence {
                offset: boundary,
                expected: 2,
                found: 1
            }
        );

        let mut skip = Vec::new();
        encode_header(&mut skip);
        encode_record(&mut skip, 1, b"a");
        encode_record(&mut skip, 3, b"b"); // lost record 2
        let outcome = read_wal_bytes(&skip);
        assert_eq!(outcome.records.len(), 1);
        assert!(matches!(
            outcome.tail,
            WalTail::BadSequence {
                expected: 2,
                found: 3,
                ..
            }
        ));
    }

    #[test]
    fn writer_appends_continue_the_sequence() {
        let mem = MemIo::new();
        let path = Path::new("/session.log");
        let (mut w, outcome) = WalWriter::open(&mem, path, 0, SyncPolicy::Always).unwrap();
        assert_eq!(outcome.records.len(), 0);
        assert_eq!(w.append(b"one").unwrap(), 1);
        assert_eq!(w.append(b"two").unwrap(), 2);
        assert_eq!(w.last_seq(), 2);
        drop(w);
        // Reopen: sequence continues.
        let (mut w, outcome) = WalWriter::open(&mem, path, 0, SyncPolicy::Always).unwrap();
        assert_eq!(outcome.records.len(), 2);
        assert_eq!(w.append(b"three").unwrap(), 3);
        // After a checkpoint covering seq 5 the log restarts empty but the
        // sequence does not go backwards.
        mem.remove(path).unwrap();
        let (mut w, _) = WalWriter::open(&mem, path, 5, SyncPolicy::Always).unwrap();
        assert_eq!(w.append(b"six").unwrap(), 6);
    }

    #[test]
    fn writer_truncates_a_torn_tail_before_appending() {
        let mem = MemIo::new();
        let path = Path::new("/session.log");
        let mut data = log_with(&[b"good"]);
        let valid = data.len() as u64;
        data.extend_from_slice(&[9, 0, 0, 0, 7]); // torn frame
        mem.write(path, &data).unwrap();
        let (mut w, outcome) = WalWriter::open(&mem, path, 0, SyncPolicy::Always).unwrap();
        assert!(matches!(outcome.tail, WalTail::Torn { .. }));
        assert_eq!(mem.read(path).unwrap().len() as u64, valid);
        w.append(b"next").unwrap();
        let reread = read_wal_bytes(&mem.read(path).unwrap());
        assert_eq!(reread.tail, WalTail::Clean);
        assert_eq!(reread.records.len(), 2);
        assert_eq!(reread.records[1].seq, 2);
    }

    #[test]
    fn line_sink_frames_one_record_per_line() {
        use std::io::Write as _;
        let mem = MemIo::new();
        let path = Path::new("/session.log");
        let (mut w, _) = WalWriter::open(&mem, path, 0, SyncPolicy::Never).unwrap();
        {
            let mut sink = WalLineSink::new(&mut w);
            // Split writes must still frame on newlines only.
            sink.write_all(b"{\"op\":").unwrap();
            sink.write_all(b"\"set\"}\n{\"op\":\"delete\"}\n").unwrap();
            sink.flush().unwrap();
        }
        let outcome = read_wal_bytes(&mem.read(path).unwrap());
        assert_eq!(outcome.records.len(), 2);
        assert_eq!(outcome.records[0].payload, b"{\"op\":\"set\"}");
        assert_eq!(outcome.records[1].payload, b"{\"op\":\"delete\"}");
    }
}
