//! Minimal RFC-4180 CSV reader/writer.
//!
//! The evaluation datasets (synthetic equivalents of the paper's data.gov /
//! ChEMBL / university-warehouse tables) are exchanged as CSV. We implement
//! the format directly: quoted fields, embedded commas, escaped quotes and
//! embedded newlines — enough for real open-data exports — without pulling
//! in an external dependency.

use crate::relation::{Relation, RelationError};
use crate::schema::Schema;
use std::fmt;
use std::io::{BufRead, Write};

/// CSV errors carry 1-based line numbers for diagnostics.
#[derive(Debug)]
pub enum CsvError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A quoted field that never closes.
    UnterminatedQuote {
        /// 1-based line where the quote opened.
        line: usize,
    },
    /// Garbage after a closing quote, e.g. `"ab"c`.
    TrailingAfterQuote {
        /// 1-based line the offending field *started* on (a multi-line
        /// quoted field may close several lines later).
        line: usize,
    },
    /// Header missing or empty.
    EmptyInput,
    /// The parsed rows do not form a valid relation.
    Relation(RelationError),
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "I/O error: {e}"),
            CsvError::UnterminatedQuote { line } => {
                write!(f, "unterminated quoted field starting on line {line}")
            }
            CsvError::TrailingAfterQuote { line } => {
                write!(
                    f,
                    "unexpected character after closing quote in the field starting on line {line}"
                )
            }
            CsvError::EmptyInput => write!(f, "empty CSV input (missing header)"),
            CsvError::Relation(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

impl From<RelationError> for CsvError {
    fn from(e: RelationError) -> Self {
        CsvError::Relation(e)
    }
}

/// One parsed logical record. `blank` marks a record produced by a
/// physically empty line (no characters before the terminator) — the only
/// kind of record [`read_csv`] may skip, and only when it is truly trailing.
/// A quoted empty field (`""`) on its own line is *not* blank.
struct Record {
    fields: Vec<String>,
    blank: bool,
}

/// Streaming CSV record parser over arbitrary `BufRead` input.
struct Records<R: BufRead> {
    input: R,
    line: usize,
    buf: String,
    done: bool,
}

/// Split one physical line into its content and its terminator bytes.
/// Recognized terminators: `\r\n`, `\n`, and a lone trailing `\r` (which
/// `read_line` can only produce at EOF). The terminator is returned intact
/// so quoted continuations can preserve the field's original bytes.
fn split_terminator(line: &str) -> (&str, &str) {
    if let Some(content) = line.strip_suffix("\r\n") {
        (content, "\r\n")
    } else if let Some(content) = line.strip_suffix('\n') {
        (content, "\n")
    } else if let Some(content) = line.strip_suffix('\r') {
        (content, "\r")
    } else {
        (line, "")
    }
}

impl<R: BufRead> Records<R> {
    fn new(input: R) -> Self {
        Records {
            input,
            line: 0,
            buf: String::new(),
            done: false,
        }
    }

    /// Read one logical record (which may span physical lines when quoted).
    fn next_record(&mut self) -> Result<Option<Record>, CsvError> {
        if self.done {
            return Ok(None);
        }
        self.buf.clear();
        let n = self.input.read_line(&mut self.buf)?;
        if n == 0 {
            self.done = true;
            return Ok(None);
        }
        self.line += 1;

        let mut fields: Vec<String> = Vec::new();
        let mut field = String::new();
        let mut in_quotes = false;
        let mut after_quote = false;
        // Line the current field started on (trailing-garbage diagnostics
        // point here, not at the line the closing quote landed on).
        let mut field_start_line = self.line;
        // Line the currently open quote was opened on.
        let mut quote_open_line = self.line;
        let mut blank = true;

        loop {
            // Work on the line content without its terminator, but keep the
            // terminator: inside quotes it is field content, not framing.
            let (line, terminator) = split_terminator(&self.buf);
            if !line.is_empty() {
                blank = false;
            }
            let mut chars = line.chars().peekable();
            while let Some(c) = chars.next() {
                if in_quotes {
                    match c {
                        '"' => {
                            if chars.peek() == Some(&'"') {
                                chars.next();
                                field.push('"');
                            } else {
                                in_quotes = false;
                                after_quote = true;
                            }
                        }
                        _ => field.push(c),
                    }
                } else {
                    match c {
                        ',' => {
                            fields.push(std::mem::take(&mut field));
                            after_quote = false;
                            field_start_line = self.line;
                        }
                        '"' if field.is_empty() && !after_quote => {
                            in_quotes = true;
                            quote_open_line = self.line;
                        }
                        _ if after_quote => {
                            return Err(CsvError::TrailingAfterQuote {
                                line: field_start_line,
                            })
                        }
                        _ => field.push(c),
                    }
                }
            }
            if !in_quotes {
                break;
            }
            // Quoted field continues on the next physical line: the
            // terminator bytes (`\n` or `\r\n`) belong to the field.
            field.push_str(terminator);
            self.buf.clear();
            let n = self.input.read_line(&mut self.buf)?;
            if n == 0 {
                return Err(CsvError::UnterminatedQuote {
                    line: quote_open_line,
                });
            }
            self.line += 1;
        }
        fields.push(field);
        Ok(Some(Record { fields, blank }))
    }
}

/// Read a relation from CSV. The first record is the header; `relation` is
/// the logical relation name.
pub fn read_csv<R: BufRead>(relation: &str, input: R) -> Result<Relation, CsvError> {
    let mut records = Records::new(input);
    let header = records.next_record()?.ok_or(CsvError::EmptyInput)?;
    let schema = Schema::new(relation, header.fields)
        .map_err(|e| CsvError::Relation(RelationError::Schema(e)))?;
    let mut rel = Relation::empty(schema);
    // Blank physical lines are held back: a blank line followed by more
    // records is data (a valid empty row in a single-column relation, an
    // arity error otherwise), while the file's truly trailing blank line —
    // the optional final CRLF of RFC 4180 — is tolerated and dropped.
    let mut pending_blanks = 0usize;
    while let Some(record) = records.next_record()? {
        if record.blank {
            pending_blanks += 1;
            continue;
        }
        for _ in 0..pending_blanks {
            rel.push_row(vec![String::new()])?;
        }
        pending_blanks = 0;
        rel.push_row(record.fields)?;
    }
    // Only the very last blank line is the tolerated trailing one; any
    // blank lines before it are data.
    if pending_blanks > 1 {
        for _ in 0..pending_blanks - 1 {
            rel.push_row(vec![String::new()])?;
        }
    }
    Ok(rel)
}

/// Parse CSV from a string.
pub fn read_csv_str(relation: &str, data: &str) -> Result<Relation, CsvError> {
    read_csv(relation, data.as_bytes())
}

fn needs_quoting(field: &str) -> bool {
    field
        .chars()
        .any(|c| c == ',' || c == '"' || c == '\n' || c == '\r')
}

fn write_field<W: Write>(out: &mut W, field: &str) -> std::io::Result<()> {
    if needs_quoting(field) {
        write!(out, "\"{}\"", field.replace('"', "\"\""))
    } else {
        write!(out, "{field}")
    }
}

/// Write one record. A record consisting of a single empty field is written
/// as `""`: an unquoted empty sole field would be a blank line, which the
/// reader must treat as a tolerated trailing blank — quoting keeps
/// single-column relations with empty cells round-trippable.
fn write_record<W: Write, S: AsRef<str>>(out: &mut W, cells: &[S]) -> std::io::Result<()> {
    if cells.len() == 1 && cells[0].as_ref().is_empty() {
        return writeln!(out, "\"\"");
    }
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            write!(out, ",")?;
        }
        write_field(out, cell.as_ref())?;
    }
    writeln!(out)
}

/// Write a relation as CSV (header + rows).
pub fn write_csv<W: Write>(relation: &Relation, out: &mut W) -> std::io::Result<()> {
    write_record(out, relation.schema().attribute_names())?;
    for (_, row) in relation.iter_rows() {
        write_record(out, &row.to_vec())?;
    }
    Ok(())
}

/// Serialize a relation to a CSV string.
pub fn write_csv_string(relation: &Relation) -> String {
    let mut buf = Vec::new();
    write_csv(relation, &mut buf).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("CSV output is UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_roundtrip() {
        let csv = "zip,city\n90001,Los Angeles\n90002,Los Angeles\n";
        let rel = read_csv_str("Zip", csv).unwrap();
        assert_eq!(rel.num_rows(), 2);
        assert_eq!(rel.schema().attribute_names(), ["zip", "city"]);
        assert_eq!(write_csv_string(&rel), csv);
    }

    #[test]
    fn quoted_fields_with_commas() {
        let csv = "name,city\n\"Holloway, Donald E.\",Boston\n";
        let rel = read_csv_str("T", csv).unwrap();
        let name = rel.schema().attr("name").unwrap();
        assert_eq!(rel.cell(0, name), "Holloway, Donald E.");
        // Round-trip preserves the quoting need.
        assert_eq!(write_csv_string(&rel), csv);
    }

    #[test]
    fn escaped_quotes() {
        let csv = "a\n\"say \"\"hi\"\"\"\n";
        let rel = read_csv_str("T", csv).unwrap();
        assert_eq!(rel.cell(0, rel.schema().attr("a").unwrap()), "say \"hi\"");
        assert_eq!(write_csv_string(&rel), csv);
    }

    #[test]
    fn embedded_newline() {
        let csv = "a,b\n\"line1\nline2\",x\n";
        let rel = read_csv_str("T", csv).unwrap();
        assert_eq!(rel.cell(0, rel.schema().attr("a").unwrap()), "line1\nline2");
    }

    #[test]
    fn crlf_line_endings() {
        let csv = "a,b\r\n1,2\r\n";
        let rel = read_csv_str("T", csv).unwrap();
        assert_eq!(rel.cell(0, rel.schema().attr("b").unwrap()), "2");
    }

    #[test]
    fn empty_fields() {
        let csv = "a,b,c\n,,\nx,,z\n";
        let rel = read_csv_str("T", csv).unwrap();
        assert_eq!(rel.num_rows(), 2);
        assert_eq!(rel.cell(0, rel.schema().attr("a").unwrap()), "");
        assert_eq!(rel.cell(1, rel.schema().attr("b").unwrap()), "");
    }

    #[test]
    fn blank_trailing_line_ignored() {
        let csv = "a\nx\n\n";
        let rel = read_csv_str("T", csv).unwrap();
        assert_eq!(rel.num_rows(), 1);
    }

    #[test]
    fn unterminated_quote_is_error() {
        let csv = "a\n\"never closed\n";
        assert!(matches!(
            read_csv_str("T", csv),
            Err(CsvError::UnterminatedQuote { .. })
        ));
    }

    #[test]
    fn trailing_after_quote_is_error() {
        let csv = "a\n\"ab\"c\n";
        assert!(matches!(
            read_csv_str("T", csv),
            Err(CsvError::TrailingAfterQuote { .. })
        ));
    }

    // Regression: `read_csv` used to drop *every* record that parsed to a
    // single empty field, losing valid empty-cell rows in single-column
    // relations and silently swallowing blank lines mid-file.
    #[test]
    fn single_column_empty_rows_survive() {
        // A blank line mid-file is an empty row; only the trailing one is
        // the tolerated final newline.
        let csv = "a\nx\n\ny\n";
        let rel = read_csv_str("T", csv).unwrap();
        let a = rel.schema().attr("a").unwrap();
        assert_eq!(rel.num_rows(), 3);
        assert_eq!(rel.cell(0, a), "x");
        assert_eq!(rel.cell(1, a), "");
        assert_eq!(rel.cell(2, a), "y");

        // Writer quotes the sole empty field, so the round trip is exact.
        let rel2 = Relation::from_rows("T", &["a"], vec![vec!["x"], vec![""], vec!["y"]]).unwrap();
        let written = write_csv_string(&rel2);
        assert_eq!(written, "a\nx\n\"\"\ny\n");
        assert_eq!(read_csv_str("T", &written).unwrap(), rel2);

        // An empty row in final position round-trips too.
        let rel3 = Relation::from_rows("T", &["a"], vec![vec!["x"], vec![""]]).unwrap();
        assert_eq!(read_csv_str("T", &write_csv_string(&rel3)).unwrap(), rel3);
    }

    #[test]
    fn consecutive_blank_lines_keep_all_but_the_trailing_one() {
        let csv = "a\nx\n\n\n";
        let rel = read_csv_str("T", csv).unwrap();
        assert_eq!(rel.num_rows(), 2, "one mid-file blank + one trailing");
        let a = rel.schema().attr("a").unwrap();
        assert_eq!(rel.cell(1, a), "");
    }

    #[test]
    fn blank_line_mid_file_is_an_arity_error_for_wider_schemas() {
        // Previously swallowed; a blank line inside a two-column file is a
        // malformed row, not noise.
        let csv = "a,b\n1,2\n\n3,4\n";
        assert!(matches!(
            read_csv_str("T", csv),
            Err(CsvError::Relation(RelationError::ArityMismatch { .. }))
        ));
    }

    // Regression: quoted fields spanning physical lines had their CRLF
    // terminators normalized to a bare `\n`, breaking byte fidelity.
    #[test]
    fn crlf_inside_quoted_field_is_preserved() {
        let csv = "a,b\r\n\"x\r\ny\",z\r\n";
        let rel = read_csv_str("T", csv).unwrap();
        let a = rel.schema().attr("a").unwrap();
        assert_eq!(rel.cell(0, a), "x\r\ny");
    }

    #[test]
    fn multi_line_field_round_trip_keeps_line_ending_bytes() {
        for cell in ["x\r\ny", "x\ny", "x\r\n\r\ny", "ends with cr\r", "\r\n"] {
            let rel = Relation::from_rows("T", &["a", "b"], vec![vec![cell, "z"]]).unwrap();
            let written = write_csv_string(&rel);
            let back = read_csv_str("T", &written).unwrap();
            assert_eq!(back, rel, "round trip of {cell:?} via {written:?}");
        }
    }

    // Regression: `UnterminatedQuote` used to report the record's first
    // line, not the line the quote actually opened on.
    #[test]
    fn unterminated_quote_reports_the_quote_open_line() {
        // Record starts on line 2; its second field's quote opens on line 3.
        let csv = "a,b\n\"x\ny\",\"open\n";
        match read_csv_str("T", csv) {
            Err(CsvError::UnterminatedQuote { line }) => assert_eq!(line, 3),
            other => panic!("expected UnterminatedQuote, got {other:?}"),
        }
    }

    // Regression: `TrailingAfterQuote` pointed at the line the closing
    // quote landed on, not where the offending field started.
    #[test]
    fn trailing_after_quote_reports_the_field_start_line() {
        let csv = "a\n\"x\ny\"z\n";
        match read_csv_str("T", csv) {
            Err(CsvError::TrailingAfterQuote { line }) => assert_eq!(line, 2),
            other => panic!("expected TrailingAfterQuote, got {other:?}"),
        }
    }

    #[test]
    fn empty_input_is_error() {
        assert!(matches!(read_csv_str("T", ""), Err(CsvError::EmptyInput)));
    }

    #[test]
    fn arity_mismatch_reported() {
        let csv = "a,b\n1,2,3\n";
        assert!(matches!(
            read_csv_str("T", csv),
            Err(CsvError::Relation(RelationError::ArityMismatch { .. }))
        ));
    }
}
