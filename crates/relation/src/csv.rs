//! Minimal RFC-4180 CSV reader/writer.
//!
//! The evaluation datasets (synthetic equivalents of the paper's data.gov /
//! ChEMBL / university-warehouse tables) are exchanged as CSV. We implement
//! the format directly: quoted fields, embedded commas, escaped quotes and
//! embedded newlines — enough for real open-data exports — without pulling
//! in an external dependency.

use crate::relation::{Relation, RelationError};
use crate::schema::Schema;
use std::fmt;
use std::io::{BufRead, Write};

/// CSV errors carry 1-based line numbers for diagnostics.
#[derive(Debug)]
pub enum CsvError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A quoted field that never closes.
    UnterminatedQuote {
        /// 1-based line where the quote opened.
        line: usize,
    },
    /// Garbage after a closing quote, e.g. `"ab"c`.
    TrailingAfterQuote {
        /// 1-based line of the offending field.
        line: usize,
    },
    /// Header missing or empty.
    EmptyInput,
    /// The parsed rows do not form a valid relation.
    Relation(RelationError),
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "I/O error: {e}"),
            CsvError::UnterminatedQuote { line } => {
                write!(f, "unterminated quoted field starting on line {line}")
            }
            CsvError::TrailingAfterQuote { line } => {
                write!(f, "unexpected character after closing quote on line {line}")
            }
            CsvError::EmptyInput => write!(f, "empty CSV input (missing header)"),
            CsvError::Relation(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

impl From<RelationError> for CsvError {
    fn from(e: RelationError) -> Self {
        CsvError::Relation(e)
    }
}

/// Streaming CSV record parser over arbitrary `BufRead` input.
struct Records<R: BufRead> {
    input: R,
    line: usize,
    buf: String,
    done: bool,
}

impl<R: BufRead> Records<R> {
    fn new(input: R) -> Self {
        Records {
            input,
            line: 0,
            buf: String::new(),
            done: false,
        }
    }

    /// Read one logical record (which may span physical lines when quoted).
    fn next_record(&mut self) -> Result<Option<Vec<String>>, CsvError> {
        if self.done {
            return Ok(None);
        }
        self.buf.clear();
        let n = self.input.read_line(&mut self.buf)?;
        if n == 0 {
            self.done = true;
            return Ok(None);
        }
        self.line += 1;
        let start_line = self.line;

        let mut fields: Vec<String> = Vec::new();
        let mut field = String::new();
        let mut in_quotes = false;
        let mut after_quote = false;

        loop {
            // Work on the line content without its terminator.
            let line = self.buf.trim_end_matches(['\n', '\r']);
            let mut chars = line.chars().peekable();
            while let Some(c) = chars.next() {
                if in_quotes {
                    match c {
                        '"' => {
                            if chars.peek() == Some(&'"') {
                                chars.next();
                                field.push('"');
                            } else {
                                in_quotes = false;
                                after_quote = true;
                            }
                        }
                        _ => field.push(c),
                    }
                } else {
                    match c {
                        ',' => {
                            fields.push(std::mem::take(&mut field));
                            after_quote = false;
                        }
                        '"' if field.is_empty() && !after_quote => in_quotes = true,
                        _ if after_quote => {
                            return Err(CsvError::TrailingAfterQuote { line: self.line })
                        }
                        _ => field.push(c),
                    }
                }
            }
            if !in_quotes {
                break;
            }
            // Quoted field continues on the next physical line.
            field.push('\n');
            self.buf.clear();
            let n = self.input.read_line(&mut self.buf)?;
            if n == 0 {
                return Err(CsvError::UnterminatedQuote { line: start_line });
            }
            self.line += 1;
        }
        fields.push(field);
        Ok(Some(fields))
    }
}

/// Read a relation from CSV. The first record is the header; `relation` is
/// the logical relation name.
pub fn read_csv<R: BufRead>(relation: &str, input: R) -> Result<Relation, CsvError> {
    let mut records = Records::new(input);
    let header = records.next_record()?.ok_or(CsvError::EmptyInput)?;
    let schema =
        Schema::new(relation, header).map_err(|e| CsvError::Relation(RelationError::Schema(e)))?;
    let mut rel = Relation::empty(schema);
    while let Some(record) = records.next_record()? {
        // Tolerate fully blank trailing lines.
        if record.len() == 1 && record[0].is_empty() {
            continue;
        }
        rel.push_row(record)?;
    }
    Ok(rel)
}

/// Parse CSV from a string.
pub fn read_csv_str(relation: &str, data: &str) -> Result<Relation, CsvError> {
    read_csv(relation, data.as_bytes())
}

fn needs_quoting(field: &str) -> bool {
    field
        .chars()
        .any(|c| c == ',' || c == '"' || c == '\n' || c == '\r')
}

fn write_field<W: Write>(out: &mut W, field: &str) -> std::io::Result<()> {
    if needs_quoting(field) {
        write!(out, "\"{}\"", field.replace('"', "\"\""))
    } else {
        write!(out, "{field}")
    }
}

/// Write a relation as CSV (header + rows).
pub fn write_csv<W: Write>(relation: &Relation, out: &mut W) -> std::io::Result<()> {
    let names = relation.schema().attribute_names();
    for (i, name) in names.iter().enumerate() {
        if i > 0 {
            write!(out, ",")?;
        }
        write_field(out, name)?;
    }
    writeln!(out)?;
    for (_, row) in relation.iter_rows() {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                write!(out, ",")?;
            }
            write_field(out, cell)?;
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Serialize a relation to a CSV string.
pub fn write_csv_string(relation: &Relation) -> String {
    let mut buf = Vec::new();
    write_csv(relation, &mut buf).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("CSV output is UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_roundtrip() {
        let csv = "zip,city\n90001,Los Angeles\n90002,Los Angeles\n";
        let rel = read_csv_str("Zip", csv).unwrap();
        assert_eq!(rel.num_rows(), 2);
        assert_eq!(rel.schema().attribute_names(), ["zip", "city"]);
        assert_eq!(write_csv_string(&rel), csv);
    }

    #[test]
    fn quoted_fields_with_commas() {
        let csv = "name,city\n\"Holloway, Donald E.\",Boston\n";
        let rel = read_csv_str("T", csv).unwrap();
        let name = rel.schema().attr("name").unwrap();
        assert_eq!(rel.cell(0, name), "Holloway, Donald E.");
        // Round-trip preserves the quoting need.
        assert_eq!(write_csv_string(&rel), csv);
    }

    #[test]
    fn escaped_quotes() {
        let csv = "a\n\"say \"\"hi\"\"\"\n";
        let rel = read_csv_str("T", csv).unwrap();
        assert_eq!(rel.cell(0, rel.schema().attr("a").unwrap()), "say \"hi\"");
        assert_eq!(write_csv_string(&rel), csv);
    }

    #[test]
    fn embedded_newline() {
        let csv = "a,b\n\"line1\nline2\",x\n";
        let rel = read_csv_str("T", csv).unwrap();
        assert_eq!(rel.cell(0, rel.schema().attr("a").unwrap()), "line1\nline2");
    }

    #[test]
    fn crlf_line_endings() {
        let csv = "a,b\r\n1,2\r\n";
        let rel = read_csv_str("T", csv).unwrap();
        assert_eq!(rel.cell(0, rel.schema().attr("b").unwrap()), "2");
    }

    #[test]
    fn empty_fields() {
        let csv = "a,b,c\n,,\nx,,z\n";
        let rel = read_csv_str("T", csv).unwrap();
        assert_eq!(rel.num_rows(), 2);
        assert_eq!(rel.cell(0, rel.schema().attr("a").unwrap()), "");
        assert_eq!(rel.cell(1, rel.schema().attr("b").unwrap()), "");
    }

    #[test]
    fn blank_trailing_line_ignored() {
        let csv = "a\nx\n\n";
        let rel = read_csv_str("T", csv).unwrap();
        assert_eq!(rel.num_rows(), 1);
    }

    #[test]
    fn unterminated_quote_is_error() {
        let csv = "a\n\"never closed\n";
        assert!(matches!(
            read_csv_str("T", csv),
            Err(CsvError::UnterminatedQuote { .. })
        ));
    }

    #[test]
    fn trailing_after_quote_is_error() {
        let csv = "a\n\"ab\"c\n";
        assert!(matches!(
            read_csv_str("T", csv),
            Err(CsvError::TrailingAfterQuote { .. })
        ));
    }

    #[test]
    fn empty_input_is_error() {
        assert!(matches!(read_csv_str("T", ""), Err(CsvError::EmptyInput)));
    }

    #[test]
    fn arity_mismatch_reported() {
        let csv = "a,b\n1,2,3\n";
        assert!(matches!(
            read_csv_str("T", csv),
            Err(CsvError::Relation(RelationError::ArityMismatch { .. }))
        ));
    }
}
