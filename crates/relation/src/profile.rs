//! Column profiling.
//!
//! The first step of the discovery algorithm (Fig. 4, line 1–3) profiles the
//! table to (a) prune attributes on which PFDs cannot be found and (b) decide
//! per attribute whether partial patterns are extracted by **tokenization**
//! or by **n-grams**.
//!
//! Following §2.1's Remark and §5.4: quantitative columns (measurements,
//! counts) are dropped — functional dependencies make no sense on them — but
//! integer columns that represent *codes* (zip codes, phone numbers, IDs) are
//! kept: "the number of different lengths of the numerical values in
//! attributes that represent code is significantly small and in most cases
//! values have the same length".

use crate::relation::Relation;
use crate::schema::AttrId;
use std::collections::BTreeSet;

/// What kind of data a column holds, for discovery purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnKind {
    /// Numeric measurements/counts — pruned from PFD discovery.
    Quantitative,
    /// Digit strings with few distinct lengths: zip codes, phones, IDs.
    Code,
    /// Few distinct values relative to rows (gender, state, …).
    Categorical,
    /// General qualitative text.
    Text,
}

/// How partial patterns are extracted from the column's values (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Extraction {
    /// Split on separator symbols, keeping token positions (restriction i).
    Tokenize,
    /// Enumerate n-grams up to the length of the longest value.
    NGrams,
}

/// Per-column statistics plus the derived decisions.
#[derive(Debug, Clone)]
pub struct ColumnProfile {
    /// The profiled attribute.
    pub attr: AttrId,
    /// Attribute name.
    pub name: String,
    /// Total rows in the relation.
    pub rows: usize,
    /// Rows with a non-empty value.
    pub non_empty: usize,
    /// Distinct non-empty values.
    pub distinct: usize,
    /// Average value length in characters.
    pub avg_len: f64,
    /// Longest value length in characters.
    pub max_len: usize,
    /// Fraction of non-empty values that parse as numbers (int or decimal).
    pub numeric_fraction: f64,
    /// Fraction of non-empty values that are pure digit strings.
    pub digit_fraction: f64,
    /// Number of distinct lengths among pure digit values.
    pub digit_length_variety: usize,
    /// Fraction of non-empty values containing a separator symbol.
    pub separator_fraction: f64,
    /// The derived column classification.
    pub kind: ColumnKind,
    /// The derived pattern-extraction mode.
    pub extraction: Extraction,
}

impl ColumnProfile {
    /// Should this column participate in PFD discovery?
    pub fn is_candidate(&self) -> bool {
        self.kind != ColumnKind::Quantitative && self.non_empty > 0
    }
}

fn is_pure_digits(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| c.is_ascii_digit())
}

fn is_numeric(s: &str) -> bool {
    // Integer or decimal with optional sign; this is the "quantitative"
    // shape we want to prune (heights, amounts, ratios).
    let t = s.strip_prefix(['-', '+']).unwrap_or(s);
    if t.is_empty() {
        return false;
    }
    let mut dots = 0;
    for c in t.chars() {
        match c {
            '0'..='9' => {}
            '.' => dots += 1,
            _ => return false,
        }
    }
    dots <= 1 && t.chars().any(|c| c.is_ascii_digit())
}

fn has_separator(s: &str) -> bool {
    s.chars()
        .any(|c| !c.is_alphanumeric() && !matches!(c, '\'' | '’'))
}

/// Maximum distinct digit lengths for a digit column to count as a code
/// (e.g. zips are 5 or 9 digits; phones are 10).
const CODE_LENGTH_VARIETY: usize = 3;

/// Fraction of values that must contain separators to prefer tokenization.
const TOKENIZE_THRESHOLD: f64 = 0.5;

/// Distinct/rows ratio below which a column counts as categorical.
const CATEGORICAL_RATIO: f64 = 0.05;

/// Profile one column.
pub fn profile_column(rel: &Relation, attr: AttrId) -> ColumnProfile {
    let name = rel
        .schema()
        .name_of(attr)
        .unwrap_or("<invalid>")
        .to_string();
    let rows = rel.num_rows();

    let mut non_empty = 0usize;
    let mut total_len = 0usize;
    let mut max_len = 0usize;
    let mut numeric = 0usize;
    let mut digits = 0usize;
    let mut with_sep = 0usize;
    let mut digit_lengths: BTreeSet<usize> = BTreeSet::new();
    let mut distinct: BTreeSet<&str> = BTreeSet::new();

    for v in rel.column(attr) {
        if v.is_empty() {
            continue;
        }
        non_empty += 1;
        let len = v.chars().count();
        total_len += len;
        max_len = max_len.max(len);
        if is_numeric(v) {
            numeric += 1;
        }
        if is_pure_digits(v) {
            digits += 1;
            digit_lengths.insert(len);
        }
        if has_separator(v) {
            with_sep += 1;
        }
        distinct.insert(v);
    }

    let frac = |n: usize| {
        if non_empty == 0 {
            0.0
        } else {
            n as f64 / non_empty as f64
        }
    };
    let numeric_fraction = frac(numeric);
    let digit_fraction = frac(digits);
    let separator_fraction = frac(with_sep);
    let distinct_count = distinct.len();

    let kind = if non_empty == 0 {
        ColumnKind::Text
    } else if digit_fraction > 0.95 && digit_lengths.len() <= CODE_LENGTH_VARIETY {
        ColumnKind::Code
    } else if numeric_fraction > 0.95 {
        ColumnKind::Quantitative
    } else if (distinct_count as f64) < CATEGORICAL_RATIO * rows as f64 || distinct_count <= 2 {
        ColumnKind::Categorical
    } else {
        ColumnKind::Text
    };

    let extraction = if separator_fraction >= TOKENIZE_THRESHOLD && kind != ColumnKind::Code {
        Extraction::Tokenize
    } else {
        Extraction::NGrams
    };

    ColumnProfile {
        attr,
        name,
        rows,
        non_empty,
        distinct: distinct_count,
        avg_len: if non_empty == 0 {
            0.0
        } else {
            total_len as f64 / non_empty as f64
        },
        max_len,
        numeric_fraction,
        digit_fraction,
        digit_length_variety: digit_lengths.len(),
        separator_fraction,
        kind,
        extraction,
    }
}

/// Profile every column of a relation.
pub fn profile_relation(rel: &Relation) -> Vec<ColumnProfile> {
    rel.schema()
        .attr_ids()
        .map(|a| profile_column(rel, a))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(cols: &[(&str, Vec<&str>)]) -> Relation {
        let names: Vec<&str> = cols.iter().map(|(n, _)| *n).collect();
        let nrows = cols[0].1.len();
        let rows: Vec<Vec<&str>> = (0..nrows)
            .map(|i| cols.iter().map(|(_, vs)| vs[i]).collect())
            .collect();
        Relation::from_rows("T", &names, rows).unwrap()
    }

    #[test]
    fn zip_column_is_code() {
        let r = rel(&[("zip", vec!["90001", "90002", "60601", "606036263"])]);
        let p = profile_column(&r, AttrId(0));
        assert_eq!(p.kind, ColumnKind::Code);
        assert!(p.is_candidate());
        assert_eq!(p.extraction, Extraction::NGrams);
        assert_eq!(p.digit_length_variety, 2);
    }

    #[test]
    fn measurement_column_is_quantitative() {
        let r = rel(&[(
            "height",
            vec![
                "1.82", "1.75", "1.9", "2.01", "1.68", "1.77", "1.64", "1.81",
            ],
        )]);
        let p = profile_column(&r, AttrId(0));
        assert_eq!(p.kind, ColumnKind::Quantitative);
        assert!(!p.is_candidate());
    }

    #[test]
    fn integers_with_many_lengths_are_quantitative() {
        // Counts: 3, 17, 245, 8, 19384, 1, 52, 999923 — six distinct lengths.
        let r = rel(&[(
            "shares",
            vec!["3", "17", "245", "8", "19384", "1", "52", "999923"],
        )]);
        let p = profile_column(&r, AttrId(0));
        assert_eq!(p.kind, ColumnKind::Quantitative);
    }

    #[test]
    fn name_column_tokenizes() {
        let r = rel(&[(
            "name",
            vec!["John Charles", "John Bosco", "Susan Orlean", "Susan Boyle"],
        )]);
        let p = profile_column(&r, AttrId(0));
        assert_eq!(p.extraction, Extraction::Tokenize);
        assert!(p.is_candidate());
    }

    #[test]
    fn gender_column_is_categorical_ngrams() {
        let values: Vec<&str> = std::iter::repeat_n(["M", "F"], 50).flatten().collect();
        let r = rel(&[("gender", values)]);
        let p = profile_column(&r, AttrId(0));
        assert_eq!(p.kind, ColumnKind::Categorical);
        assert_eq!(p.extraction, Extraction::NGrams);
    }

    #[test]
    fn empty_column_not_candidate() {
        let r = rel(&[("x", vec!["", "", ""])]);
        let p = profile_column(&r, AttrId(0));
        assert!(!p.is_candidate());
        assert_eq!(p.non_empty, 0);
    }

    #[test]
    fn profile_relation_covers_all_columns() {
        let r = rel(&[
            ("zip", vec!["90001", "90002"]),
            ("city", vec!["Los Angeles", "Los Angeles"]),
        ]);
        let ps = profile_relation(&r);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].name, "zip");
        assert_eq!(ps[1].name, "city");
    }

    #[test]
    fn negative_and_decimal_are_numeric() {
        assert!(is_numeric("-3.5"));
        assert!(is_numeric("+7"));
        assert!(!is_numeric("1.2.3"));
        assert!(!is_numeric("12a"));
        assert!(!is_numeric("-"));
        assert!(!is_numeric(""));
    }

    #[test]
    fn apostrophes_do_not_count_as_separators() {
        assert!(!has_separator("O'Brien"));
        assert!(has_separator("O Brien"));
        assert!(has_separator("a-b"));
    }
}
