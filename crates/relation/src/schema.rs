//! Relational schemas: named attribute lists with index lookup.

use std::fmt;

/// An attribute identifier: its position in the schema. Using a newtype keeps
/// attribute indices from being confused with row indices in the dependency
/// and discovery code, where both fly around together.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub usize);

impl AttrId {
    /// The zero-based position in the schema.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A relation schema: an ordered list of attribute names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    relation: String,
    attributes: Vec<String>,
}

/// Errors from schema construction and lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// Attribute names must be unique within a schema.
    DuplicateAttribute(String),
    /// Lookup of an attribute that does not exist.
    NoSuchAttribute(String),
    /// An [`AttrId`] out of range for this schema.
    AttrIdOutOfRange(AttrId),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::DuplicateAttribute(a) => write!(f, "duplicate attribute {a:?}"),
            SchemaError::NoSuchAttribute(a) => write!(f, "no such attribute {a:?}"),
            SchemaError::AttrIdOutOfRange(id) => write!(f, "attribute id {id} out of range"),
        }
    }
}

impl std::error::Error for SchemaError {}

impl Schema {
    /// Build a schema; attribute names must be unique.
    pub fn new<S: Into<String>, A: Into<String>>(
        relation: S,
        attributes: impl IntoIterator<Item = A>,
    ) -> Result<Schema, SchemaError> {
        let attributes: Vec<String> = attributes.into_iter().map(Into::into).collect();
        for (i, a) in attributes.iter().enumerate() {
            if attributes[..i].contains(a) {
                return Err(SchemaError::DuplicateAttribute(a.clone()));
            }
        }
        Ok(Schema {
            relation: relation.into(),
            attributes,
        })
    }

    /// The relation name (`Name`, `Zip`, … in the paper's notation).
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Attribute names in schema order.
    pub fn attribute_names(&self) -> &[String] {
        &self.attributes
    }

    /// Name of an attribute by id.
    pub fn name_of(&self, id: AttrId) -> Result<&str, SchemaError> {
        self.attributes
            .get(id.0)
            .map(String::as_str)
            .ok_or(SchemaError::AttrIdOutOfRange(id))
    }

    /// Resolve an attribute name to its id.
    pub fn attr(&self, name: &str) -> Result<AttrId, SchemaError> {
        self.attributes
            .iter()
            .position(|a| a == name)
            .map(AttrId)
            .ok_or_else(|| SchemaError::NoSuchAttribute(name.to_string()))
    }

    /// Resolve several names at once.
    pub fn attrs(&self, names: &[&str]) -> Result<Vec<AttrId>, SchemaError> {
        names.iter().map(|n| self.attr(n)).collect()
    }

    /// All attribute ids in schema order.
    pub fn attr_ids(&self) -> impl Iterator<Item = AttrId> + '_ {
        (0..self.attributes.len()).map(AttrId)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.relation, self.attributes.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let s = Schema::new("Name", ["name", "gender"]).unwrap();
        assert_eq!(s.relation(), "Name");
        assert_eq!(s.arity(), 2);
        assert_eq!(s.attr("name").unwrap(), AttrId(0));
        assert_eq!(s.attr("gender").unwrap(), AttrId(1));
        assert_eq!(s.name_of(AttrId(1)).unwrap(), "gender");
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = Schema::new("R", ["a", "b", "a"]).unwrap_err();
        assert_eq!(err, SchemaError::DuplicateAttribute("a".into()));
    }

    #[test]
    fn missing_attribute() {
        let s = Schema::new("R", ["a"]).unwrap();
        assert!(matches!(
            s.attr("zzz"),
            Err(SchemaError::NoSuchAttribute(_))
        ));
        assert!(matches!(
            s.name_of(AttrId(9)),
            Err(SchemaError::AttrIdOutOfRange(_))
        ));
    }

    #[test]
    fn attrs_bulk_lookup() {
        let s = Schema::new("R", ["a", "b", "c"]).unwrap();
        assert_eq!(s.attrs(&["c", "a"]).unwrap(), vec![AttrId(2), AttrId(0)]);
        assert!(s.attrs(&["a", "nope"]).is_err());
    }

    #[test]
    fn display() {
        let s = Schema::new("Zip", ["zip", "city"]).unwrap();
        assert_eq!(s.to_string(), "Zip(zip, city)");
    }
}
