//! # `pfd-relation` — relational substrate for PFD data cleaning
//!
//! String-valued relations with schemas, CSV I/O and column profiling. PFDs
//! operate on *qualitative* values (§2.1 of the paper), so cells are stored
//! as strings; the profiler classifies columns (quantitative / code /
//! categorical / text) and decides the pattern-extraction mode used by
//! discovery.
//!
//! ```
//! use pfd_relation::{Relation, profile_relation, ColumnKind};
//!
//! let rel = Relation::from_rows(
//!     "Zip",
//!     &["zip", "city"],
//!     vec![vec!["90001", "Los Angeles"], vec!["90002", "Los Angeles"]],
//! ).unwrap();
//!
//! let profiles = profile_relation(&rel);
//! assert_eq!(profiles[0].kind, ColumnKind::Code); // zips are codes, kept
//! ```

#![warn(missing_docs)]

pub mod binary;
pub mod csv;
pub mod io;
pub mod kernels;
pub mod postings;
pub mod profile;
#[allow(clippy::module_inception)]
pub mod relation;
pub mod schema;
pub mod wal;

pub use binary::{BinaryError, Cursor, SectionReader, SectionWriter, SharedSectionReader};
pub use csv::{read_csv, read_csv_str, write_csv, write_csv_string, CsvError};
pub use io::{FailpointIo, Io, MemIo, SharedBytes, StdIo};
pub use postings::{PostingList, RowSetAccumulator};
pub use profile::{profile_column, profile_relation, ColumnKind, ColumnProfile, Extraction};
pub use relation::{Relation, RelationError, RowDelta, RowId, RowView};
pub use schema::{AttrId, Schema, SchemaError};
pub use wal::{
    read_wal_bytes, SyncPolicy, WalLineSink, WalReadOutcome, WalRecord, WalTail, WalWriter,
};
