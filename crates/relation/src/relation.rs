//! String-valued relations.
//!
//! PFDs are defined on *qualitative* values (§2.1 Remark): names, codes,
//! cities — values where patterns carry meaning. We therefore store every
//! cell as a string; quantitative columns are recognized (and pruned) by the
//! profiler, mirroring the paper's discovery pipeline.

use crate::schema::{AttrId, Schema, SchemaError};
use std::collections::HashMap;
use std::fmt;

/// A row identifier: index into the relation's row vector.
pub type RowId = usize;

/// One column of the relation: a distinct-value vocabulary (in first-seen
/// interning order) plus one vocabulary index per row.
///
/// Qualitative columns repeat values heavily (codes, cities, categories), so
/// interning stores each distinct string once and makes a cell a `u32`. The
/// layout is also exactly what the binary snapshot's `ROWS` section holds,
/// so a snapshot load rebuilds columns without per-cell allocations.
/// Overwrites can strand vocabulary entries no live cell references; they
/// stay in place (indexes are stable) and are skipped when enumerating
/// distinct values.
#[derive(Debug, Clone)]
struct Column {
    /// Distinct values in first-seen order; may contain dead entries.
    vocab: Vec<String>,
    /// value → vocabulary index, for interning writes. Built lazily: a
    /// bulk-constructed column ([`Relation::from_columns`]) defers it until
    /// the first write, so read-only consumers (check, discover) never pay
    /// for it.
    lookup: HashMap<String, u32>,
    /// Is `lookup` in sync with `vocab`?
    lookup_built: bool,
    /// One vocabulary index per row.
    cells: Vec<u32>,
}

impl Default for Column {
    fn default() -> Self {
        Column {
            vocab: Vec::new(),
            lookup: HashMap::new(),
            lookup_built: true,
            cells: Vec::new(),
        }
    }
}

impl Column {
    fn intern(&mut self, value: String) -> u32 {
        if !self.lookup_built {
            self.lookup = self
                .vocab
                .iter()
                .enumerate()
                .map(|(i, v)| (v.clone(), i as u32))
                .collect();
            self.lookup_built = true;
        }
        if let Some(&i) = self.lookup.get(&value) {
            return i;
        }
        let i = self.vocab.len() as u32;
        self.lookup.insert(value.clone(), i);
        self.vocab.push(value);
        i
    }

    fn value(&self, row: RowId) -> &str {
        &self.vocab[self.cells[row] as usize]
    }
}

/// A relation instance: a schema plus rows of string cells, stored
/// column-wise with per-column value interning (each column keeps a
/// vocabulary of distinct strings and one `u32` index per row).
///
/// Every mutation bumps a monotonic [`version`](Relation::version) counter
/// and is describable as a [`RowDelta`], so downstream structures (violation
/// caches, group indexes) can subscribe to the edit stream instead of
/// diffing whole relations.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Schema,
    columns: Vec<Column>,
    num_rows: usize,
    /// Monotonic mutation counter; not part of value equality.
    version: u64,
}

/// Two relations are equal when schema and cells agree; the mutation
/// [`version`](Relation::version) is provenance, not value. Cells compare
/// by value, so two relations whose vocabularies were built in different
/// orders (say, CSV ingestion vs a snapshot load) still compare equal.
impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        if self.schema != other.schema || self.num_rows != other.num_rows {
            return false;
        }
        self.columns
            .iter()
            .zip(&other.columns)
            .all(|(a, b)| columns_equal(a, b, self.num_rows))
    }
}

/// Value-wise column comparison, memoizing the index correspondence so each
/// distinct value's strings are compared once and the per-row work is an
/// integer check (interning guarantees distinct indexes hold distinct
/// values within a column).
fn columns_equal(a: &Column, b: &Column, num_rows: usize) -> bool {
    let mut pair: Vec<Option<u32>> = vec![None; a.vocab.len()];
    for row in 0..num_rows {
        let (ai, bi) = (a.cells[row], b.cells[row]);
        match pair[ai as usize] {
            Some(expected) => {
                if expected != bi {
                    return false;
                }
            }
            None => {
                if a.vocab[ai as usize] != b.vocab[bi as usize] {
                    return false;
                }
                pair[ai as usize] = Some(bi);
            }
        }
    }
    true
}

impl Eq for Relation {}

/// A borrowed view of one row: cheap to construct (no allocation), lazily
/// resolving cells against the column vocabularies.
#[derive(Clone, Copy)]
pub struct RowView<'a> {
    rel: &'a Relation,
    row: RowId,
}

impl<'a> RowView<'a> {
    /// Number of cells (the relation's arity).
    pub fn len(&self) -> usize {
        self.rel.schema.arity()
    }

    /// Is the row empty (arity-0 relation)?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cell at column position `i`.
    pub fn get(&self, i: usize) -> &'a str {
        self.rel.columns[i].value(self.row)
    }

    /// Iterate over the row's cells in schema order.
    pub fn iter(&self) -> impl Iterator<Item = &'a str> + '_ {
        let row = self.row;
        self.rel.columns.iter().map(move |c| c.value(row))
    }

    /// Materialize the row as a vector of borrowed cells.
    pub fn to_vec(&self) -> Vec<&'a str> {
        self.iter().collect()
    }
}

/// One applied mutation, in the order it happened. `version` is the
/// relation's counter *after* the mutation, so a consumer replaying deltas
/// can detect gaps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RowDelta {
    /// A single cell was overwritten.
    CellSet {
        /// Relation version after the write.
        version: u64,
        /// The written row.
        row: RowId,
        /// The written attribute.
        attr: AttrId,
        /// The value that was replaced.
        old: String,
    },
    /// A row was appended at id `row` (always the current tail).
    RowInserted {
        /// Relation version after the insert.
        version: u64,
        /// Id of the new row (`num_rows() - 1` after the insert).
        row: RowId,
    },
    /// Row `row` was removed; every row id above it shifted down by one.
    RowDeleted {
        /// Relation version after the delete.
        version: u64,
        /// The removed row's pre-delete id.
        row: RowId,
        /// The removed row's cells.
        cells: Vec<String>,
    },
}

impl RowDelta {
    /// The relation version after this mutation.
    pub fn version(&self) -> u64 {
        match self {
            RowDelta::CellSet { version, .. }
            | RowDelta::RowInserted { version, .. }
            | RowDelta::RowDeleted { version, .. } => *version,
        }
    }

    /// The row the mutation targeted (pre-delete id for deletions).
    pub fn row(&self) -> RowId {
        match self {
            RowDelta::CellSet { row, .. }
            | RowDelta::RowInserted { row, .. }
            | RowDelta::RowDeleted { row, .. } => *row,
        }
    }
}

/// Errors from relation construction/mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationError {
    /// An underlying schema error.
    Schema(SchemaError),
    /// A row whose arity does not match the schema.
    ArityMismatch {
        /// Index of the offending row.
        row: usize,
        /// The schema's arity.
        expected: usize,
        /// The row's cell count.
        got: usize,
    },
    /// Row index out of range.
    RowOutOfRange(RowId),
    /// Inconsistent bulk-construction input
    /// ([`from_columns`](Relation::from_columns)).
    Columns(String),
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::Schema(e) => write!(f, "{e}"),
            RelationError::ArityMismatch { row, expected, got } => {
                write!(f, "row {row}: expected {expected} cells, got {got}")
            }
            RelationError::RowOutOfRange(r) => write!(f, "row {r} out of range"),
            RelationError::Columns(msg) => write!(f, "inconsistent columns: {msg}"),
        }
    }
}

impl std::error::Error for RelationError {}

impl From<SchemaError> for RelationError {
    fn from(e: SchemaError) -> Self {
        RelationError::Schema(e)
    }
}

impl Relation {
    /// An empty relation over the given schema.
    pub fn empty(schema: Schema) -> Relation {
        let columns = (0..schema.arity()).map(|_| Column::default()).collect();
        Relation {
            schema,
            columns,
            num_rows: 0,
            version: 0,
        }
    }

    /// Bulk-construct a relation from per-column `(vocabulary, cell indexes)`
    /// pairs — the snapshot load path: the binary `ROWS` section decodes
    /// directly into this shape, so rebuilding the relation allocates only
    /// the distinct values, never one string per cell.
    ///
    /// Each vocabulary must be duplicate-free, every cell index must be in
    /// its vocabulary's range, and all columns must agree on the row count.
    pub fn from_columns(
        schema: Schema,
        columns: Vec<(Vec<String>, Vec<u32>)>,
        version: u64,
    ) -> Result<Relation, RelationError> {
        if columns.len() != schema.arity() {
            return Err(RelationError::Columns(format!(
                "{} columns for arity {}",
                columns.len(),
                schema.arity()
            )));
        }
        let num_rows = columns.first().map_or(0, |(_, cells)| cells.len());
        let columns = columns
            .into_iter()
            .map(|(vocab, cells)| {
                if cells.len() != num_rows {
                    return Err(RelationError::Columns(format!(
                        "column with {} cells next to one with {num_rows}",
                        cells.len()
                    )));
                }
                // Distinctness check: a strictly ascending vocabulary (the
                // canonical snapshot encoding) is duplicate-free by
                // construction; anything else pays for a hash-based check,
                // which doubles as the interning lookup.
                let sorted = vocab.windows(2).all(|w| w[0] < w[1]);
                let mut lookup = HashMap::new();
                if !sorted {
                    lookup.reserve(vocab.len());
                    for (i, value) in vocab.iter().enumerate() {
                        if lookup.insert(value.clone(), i as u32).is_some() {
                            return Err(RelationError::Columns(format!(
                                "duplicate vocabulary value {value:?}"
                            )));
                        }
                    }
                }
                if let Some(&bad) = cells.iter().find(|&&i| i as usize >= vocab.len()) {
                    return Err(RelationError::Columns(format!(
                        "cell index {bad} outside vocabulary of {}",
                        vocab.len()
                    )));
                }
                Ok(Column {
                    vocab,
                    lookup,
                    lookup_built: !sorted,
                    cells,
                })
            })
            .collect::<Result<Vec<Column>, RelationError>>()?;
        Ok(Relation {
            schema,
            columns,
            num_rows,
            version,
        })
    }

    /// Borrow one column's raw parts: `(vocabulary, cell indexes)`. The
    /// vocabulary is in interning order and may contain dead entries (values
    /// no live cell references after overwrites); `cells[row]` indexes into
    /// it. This is the save-side counterpart of
    /// [`from_columns`](Relation::from_columns).
    pub fn column_parts(&self, attr: AttrId) -> (&[String], &[u32]) {
        let col = &self.columns[attr.index()];
        (&col.vocab, &col.cells)
    }

    /// Build a relation from rows of `&str` cells (test/fixture friendly).
    pub fn from_rows<S: AsRef<str>>(
        relation: &str,
        attributes: &[&str],
        rows: Vec<Vec<S>>,
    ) -> Result<Relation, RelationError> {
        let schema = Schema::new(relation, attributes.iter().copied())?;
        let mut rel = Relation::empty(schema);
        for row in rows {
            rel.push_row(row.iter().map(|c| c.as_ref().to_string()).collect())?;
        }
        Ok(rel)
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The monotonic mutation counter: 0 for a freshly built empty relation,
    /// bumped by every [`push_row`](Relation::push_row),
    /// [`set_cell`](Relation::set_cell), [`insert_row`](Relation::insert_row)
    /// and [`delete_row`](Relation::delete_row).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Does the relation have no rows?
    pub fn is_empty(&self) -> bool {
        self.num_rows == 0
    }

    /// Append a row, validating arity.
    pub fn push_row(&mut self, row: Vec<String>) -> Result<RowId, RelationError> {
        if row.len() != self.schema.arity() {
            return Err(RelationError::ArityMismatch {
                row: self.num_rows,
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        for (col, value) in self.columns.iter_mut().zip(row) {
            let idx = col.intern(value);
            col.cells.push(idx);
        }
        self.num_rows += 1;
        self.version += 1;
        Ok(self.num_rows - 1)
    }

    /// Append a row, returning the [`RowDelta`] event. Rows are only ever
    /// appended (the new id is `num_rows() - 1`), so existing row ids stay
    /// stable across inserts.
    pub fn insert_row(&mut self, row: Vec<String>) -> Result<RowDelta, RelationError> {
        let row = self.push_row(row)?;
        Ok(RowDelta::RowInserted {
            version: self.version,
            row,
        })
    }

    /// Remove a row, shifting every higher row id down by one (the same
    /// renumbering [`filter_rows`](Relation::filter_rows) applies). Returns
    /// the [`RowDelta`] carrying the removed cells.
    pub fn delete_row(&mut self, row: RowId) -> Result<RowDelta, RelationError> {
        if row >= self.num_rows {
            return Err(RelationError::RowOutOfRange(row));
        }
        let cells = self
            .columns
            .iter()
            .map(|col| col.value(row).to_string())
            .collect();
        for col in &mut self.columns {
            col.cells.remove(row);
        }
        self.num_rows -= 1;
        self.version += 1;
        Ok(RowDelta::RowDeleted {
            version: self.version,
            row,
            cells,
        })
    }

    /// The cell at `(row, attr)`.
    pub fn cell(&self, row: RowId, attr: AttrId) -> &str {
        self.columns[attr.index()].value(row)
    }

    /// Overwrite a single cell (used by error injection, repair and the
    /// incremental cleaning engines), returning the [`RowDelta`] event that
    /// carries the replaced value.
    pub fn set_cell(
        &mut self,
        row: RowId,
        attr: AttrId,
        value: String,
    ) -> Result<RowDelta, RelationError> {
        if row >= self.num_rows {
            return Err(RelationError::RowOutOfRange(row));
        }
        let col = self
            .columns
            .get_mut(attr.index())
            .ok_or(RelationError::Schema(SchemaError::AttrIdOutOfRange(attr)))?;
        let old = col.value(row).to_string();
        let idx = col.intern(value);
        col.cells[row] = idx;
        self.version += 1;
        Ok(RowDelta::CellSet {
            version: self.version,
            row,
            attr,
            old,
        })
    }

    /// Borrow a full row as a lazy [`RowView`] (no allocation).
    pub fn row(&self, row: RowId) -> RowView<'_> {
        assert!(row < self.num_rows, "row {row} out of range");
        RowView { rel: self, row }
    }

    /// Iterate over `(RowId, row)` pairs.
    pub fn iter_rows(&self) -> impl Iterator<Item = (RowId, RowView<'_>)> {
        (0..self.num_rows).map(move |i| (i, RowView { rel: self, row: i }))
    }

    /// Iterate over one column's values.
    pub fn column(&self, attr: AttrId) -> impl Iterator<Item = &str> {
        let col = &self.columns[attr.index()];
        col.cells
            .iter()
            .map(move |&i| col.vocab[i as usize].as_str())
    }

    /// Project a row onto a list of attributes.
    pub fn project(&self, row: RowId, attrs: &[AttrId]) -> Vec<&str> {
        attrs.iter().map(|a| self.cell(row, *a)).collect()
    }

    /// Number of distinct values in a column. Counts live cells, so values
    /// stranded in the vocabulary by overwrites don't inflate the count.
    pub fn distinct_count(&self, attr: AttrId) -> usize {
        let mut live = self.columns[attr.index()].cells.clone();
        live.sort_unstable();
        live.dedup();
        live.len()
    }

    /// Retain only the rows whose ids satisfy the predicate, renumbering.
    pub fn filter_rows(&self, mut keep: impl FnMut(RowId) -> bool) -> Relation {
        let kept: Vec<RowId> = (0..self.num_rows).filter(|&i| keep(i)).collect();
        Relation {
            schema: self.schema.clone(),
            columns: self
                .columns
                .iter()
                .map(|col| Column {
                    vocab: col.vocab.clone(),
                    lookup: col.lookup.clone(),
                    lookup_built: col.lookup_built,
                    cells: kept.iter().map(|&i| col.cells[i]).collect(),
                })
                .collect(),
            num_rows: kept.len(),
            version: 0,
        }
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for (i, row) in self.iter_rows() {
            writeln!(f, "  r{}: ({})", i, row.to_vec().join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name_table() -> Relation {
        // Table 1 of the paper.
        Relation::from_rows(
            "Name",
            &["name", "gender"],
            vec![
                vec!["John Charles", "M"],
                vec!["John Bosco", "M"],
                vec!["Susan Orlean", "F"],
                vec!["Susan Boyle", "M"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn build_and_access() {
        let r = name_table();
        assert_eq!(r.num_rows(), 4);
        let name = r.schema().attr("name").unwrap();
        let gender = r.schema().attr("gender").unwrap();
        assert_eq!(r.cell(0, name), "John Charles");
        assert_eq!(r.cell(3, gender), "M");
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut r = name_table();
        let err = r.push_row(vec!["only one".into()]).unwrap_err();
        assert!(matches!(err, RelationError::ArityMismatch { .. }));
    }

    #[test]
    fn set_cell_returns_old_value() {
        let mut r = name_table();
        let gender = r.schema().attr("gender").unwrap();
        let v0 = r.version();
        let delta = r.set_cell(3, gender, "F".into()).unwrap();
        assert_eq!(
            delta,
            RowDelta::CellSet {
                version: v0 + 1,
                row: 3,
                attr: gender,
                old: "M".into()
            }
        );
        assert_eq!(r.cell(3, gender), "F");
        assert_eq!(r.version(), v0 + 1);
    }

    #[test]
    fn insert_and_delete_emit_deltas_and_renumber() {
        let mut r = name_table();
        let v0 = r.version();
        let delta = r
            .insert_row(vec!["Ada Lovelace".into(), "F".into()])
            .unwrap();
        assert_eq!(
            delta,
            RowDelta::RowInserted {
                version: v0 + 1,
                row: 4
            }
        );
        assert_eq!(r.num_rows(), 5);

        let delta = r.delete_row(1).unwrap();
        assert_eq!(
            delta,
            RowDelta::RowDeleted {
                version: v0 + 2,
                row: 1,
                cells: vec!["John Bosco".into(), "M".into()]
            }
        );
        let name = r.schema().attr("name").unwrap();
        assert_eq!(r.cell(1, name), "Susan Orlean", "higher ids shift down");
        assert!(matches!(
            r.delete_row(99),
            Err(RelationError::RowOutOfRange(99))
        ));
        assert!(r
            .insert_row(vec!["only one".into()])
            .is_err_and(|e| matches!(e, RelationError::ArityMismatch { .. })));
    }

    #[test]
    fn version_is_not_part_of_equality() {
        let mut a = name_table();
        let b = name_table();
        let gender = a.schema().attr("gender").unwrap();
        a.set_cell(3, gender, "M".into()).unwrap(); // same value, new version
        assert_ne!(a.version(), b.version());
        assert_eq!(a, b, "equality compares schema and cells only");
    }

    #[test]
    fn set_cell_out_of_range() {
        let mut r = name_table();
        let gender = r.schema().attr("gender").unwrap();
        assert!(matches!(
            r.set_cell(99, gender, "F".into()),
            Err(RelationError::RowOutOfRange(99))
        ));
    }

    #[test]
    fn column_iteration_and_distinct() {
        let r = name_table();
        let gender = r.schema().attr("gender").unwrap();
        let genders: Vec<&str> = r.column(gender).collect();
        assert_eq!(genders, vec!["M", "M", "F", "M"]);
        assert_eq!(r.distinct_count(gender), 2);
    }

    #[test]
    fn project_row() {
        let r = name_table();
        let ids = r.schema().attrs(&["gender", "name"]).unwrap();
        assert_eq!(r.project(2, &ids), vec!["F", "Susan Orlean"]);
    }

    #[test]
    fn filter_rows_renumbers() {
        let r = name_table();
        let filtered = r.filter_rows(|i| i % 2 == 0);
        assert_eq!(filtered.num_rows(), 2);
        let name = filtered.schema().attr("name").unwrap();
        assert_eq!(filtered.cell(1, name), "Susan Orlean");
    }
}
