//! String-valued relations.
//!
//! PFDs are defined on *qualitative* values (§2.1 Remark): names, codes,
//! cities — values where patterns carry meaning. We therefore store every
//! cell as a string; quantitative columns are recognized (and pruned) by the
//! profiler, mirroring the paper's discovery pipeline.

use crate::schema::{AttrId, Schema, SchemaError};
use std::fmt;

/// A row identifier: index into the relation's row vector.
pub type RowId = usize;

/// A relation instance: a schema plus rows of string cells.
///
/// Every mutation bumps a monotonic [`version`](Relation::version) counter
/// and is describable as a [`RowDelta`], so downstream structures (violation
/// caches, group indexes) can subscribe to the edit stream instead of
/// diffing whole relations.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Schema,
    rows: Vec<Vec<String>>,
    /// Monotonic mutation counter; not part of value equality.
    version: u64,
}

/// Two relations are equal when schema and cells agree; the mutation
/// [`version`](Relation::version) is provenance, not value.
impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.rows == other.rows
    }
}

impl Eq for Relation {}

/// One applied mutation, in the order it happened. `version` is the
/// relation's counter *after* the mutation, so a consumer replaying deltas
/// can detect gaps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RowDelta {
    /// A single cell was overwritten.
    CellSet {
        /// Relation version after the write.
        version: u64,
        /// The written row.
        row: RowId,
        /// The written attribute.
        attr: AttrId,
        /// The value that was replaced.
        old: String,
    },
    /// A row was appended at id `row` (always the current tail).
    RowInserted {
        /// Relation version after the insert.
        version: u64,
        /// Id of the new row (`num_rows() - 1` after the insert).
        row: RowId,
    },
    /// Row `row` was removed; every row id above it shifted down by one.
    RowDeleted {
        /// Relation version after the delete.
        version: u64,
        /// The removed row's pre-delete id.
        row: RowId,
        /// The removed row's cells.
        cells: Vec<String>,
    },
}

impl RowDelta {
    /// The relation version after this mutation.
    pub fn version(&self) -> u64 {
        match self {
            RowDelta::CellSet { version, .. }
            | RowDelta::RowInserted { version, .. }
            | RowDelta::RowDeleted { version, .. } => *version,
        }
    }

    /// The row the mutation targeted (pre-delete id for deletions).
    pub fn row(&self) -> RowId {
        match self {
            RowDelta::CellSet { row, .. }
            | RowDelta::RowInserted { row, .. }
            | RowDelta::RowDeleted { row, .. } => *row,
        }
    }
}

/// Errors from relation construction/mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationError {
    /// An underlying schema error.
    Schema(SchemaError),
    /// A row whose arity does not match the schema.
    ArityMismatch {
        /// Index of the offending row.
        row: usize,
        /// The schema's arity.
        expected: usize,
        /// The row's cell count.
        got: usize,
    },
    /// Row index out of range.
    RowOutOfRange(RowId),
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::Schema(e) => write!(f, "{e}"),
            RelationError::ArityMismatch { row, expected, got } => {
                write!(f, "row {row}: expected {expected} cells, got {got}")
            }
            RelationError::RowOutOfRange(r) => write!(f, "row {r} out of range"),
        }
    }
}

impl std::error::Error for RelationError {}

impl From<SchemaError> for RelationError {
    fn from(e: SchemaError) -> Self {
        RelationError::Schema(e)
    }
}

impl Relation {
    /// An empty relation over the given schema.
    pub fn empty(schema: Schema) -> Relation {
        Relation {
            schema,
            rows: Vec::new(),
            version: 0,
        }
    }

    /// Build a relation from rows of `&str` cells (test/fixture friendly).
    pub fn from_rows<S: AsRef<str>>(
        relation: &str,
        attributes: &[&str],
        rows: Vec<Vec<S>>,
    ) -> Result<Relation, RelationError> {
        let schema = Schema::new(relation, attributes.iter().copied())?;
        let mut rel = Relation::empty(schema);
        for row in rows {
            rel.push_row(row.iter().map(|c| c.as_ref().to_string()).collect())?;
        }
        Ok(rel)
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The monotonic mutation counter: 0 for a freshly built empty relation,
    /// bumped by every [`push_row`](Relation::push_row),
    /// [`set_cell`](Relation::set_cell), [`insert_row`](Relation::insert_row)
    /// and [`delete_row`](Relation::delete_row).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Does the relation have no rows?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row, validating arity.
    pub fn push_row(&mut self, row: Vec<String>) -> Result<RowId, RelationError> {
        if row.len() != self.schema.arity() {
            return Err(RelationError::ArityMismatch {
                row: self.rows.len(),
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        self.rows.push(row);
        self.version += 1;
        Ok(self.rows.len() - 1)
    }

    /// Append a row, returning the [`RowDelta`] event. Rows are only ever
    /// appended (the new id is `num_rows() - 1`), so existing row ids stay
    /// stable across inserts.
    pub fn insert_row(&mut self, row: Vec<String>) -> Result<RowDelta, RelationError> {
        let row = self.push_row(row)?;
        Ok(RowDelta::RowInserted {
            version: self.version,
            row,
        })
    }

    /// Remove a row, shifting every higher row id down by one (the same
    /// renumbering [`filter_rows`](Relation::filter_rows) applies). Returns
    /// the [`RowDelta`] carrying the removed cells.
    pub fn delete_row(&mut self, row: RowId) -> Result<RowDelta, RelationError> {
        if row >= self.rows.len() {
            return Err(RelationError::RowOutOfRange(row));
        }
        let cells = self.rows.remove(row);
        self.version += 1;
        Ok(RowDelta::RowDeleted {
            version: self.version,
            row,
            cells,
        })
    }

    /// The cell at `(row, attr)`.
    pub fn cell(&self, row: RowId, attr: AttrId) -> &str {
        &self.rows[row][attr.index()]
    }

    /// Overwrite a single cell (used by error injection, repair and the
    /// incremental cleaning engines), returning the [`RowDelta`] event that
    /// carries the replaced value.
    pub fn set_cell(
        &mut self,
        row: RowId,
        attr: AttrId,
        value: String,
    ) -> Result<RowDelta, RelationError> {
        let r = self
            .rows
            .get_mut(row)
            .ok_or(RelationError::RowOutOfRange(row))?;
        let slot = r
            .get_mut(attr.index())
            .ok_or(RelationError::Schema(SchemaError::AttrIdOutOfRange(attr)))?;
        let old = std::mem::replace(slot, value);
        self.version += 1;
        Ok(RowDelta::CellSet {
            version: self.version,
            row,
            attr,
            old,
        })
    }

    /// Borrow a full row.
    pub fn row(&self, row: RowId) -> &[String] {
        &self.rows[row]
    }

    /// Iterate over `(RowId, row)` pairs.
    pub fn iter_rows(&self) -> impl Iterator<Item = (RowId, &[String])> {
        self.rows.iter().enumerate().map(|(i, r)| (i, r.as_slice()))
    }

    /// Iterate over one column's values.
    pub fn column(&self, attr: AttrId) -> impl Iterator<Item = &str> {
        self.rows.iter().map(move |r| r[attr.index()].as_str())
    }

    /// Project a row onto a list of attributes.
    pub fn project(&self, row: RowId, attrs: &[AttrId]) -> Vec<&str> {
        attrs.iter().map(|a| self.cell(row, *a)).collect()
    }

    /// Number of distinct values in a column.
    pub fn distinct_count(&self, attr: AttrId) -> usize {
        let mut values: Vec<&str> = self.column(attr).collect();
        values.sort_unstable();
        values.dedup();
        values.len()
    }

    /// Retain only the rows whose ids satisfy the predicate, renumbering.
    pub fn filter_rows(&self, mut keep: impl FnMut(RowId) -> bool) -> Relation {
        Relation {
            schema: self.schema.clone(),
            rows: self
                .rows
                .iter()
                .enumerate()
                .filter(|(i, _)| keep(*i))
                .map(|(_, r)| r.clone())
                .collect(),
            version: 0,
        }
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for (i, row) in self.iter_rows() {
            writeln!(f, "  r{}: ({})", i, row.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name_table() -> Relation {
        // Table 1 of the paper.
        Relation::from_rows(
            "Name",
            &["name", "gender"],
            vec![
                vec!["John Charles", "M"],
                vec!["John Bosco", "M"],
                vec!["Susan Orlean", "F"],
                vec!["Susan Boyle", "M"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn build_and_access() {
        let r = name_table();
        assert_eq!(r.num_rows(), 4);
        let name = r.schema().attr("name").unwrap();
        let gender = r.schema().attr("gender").unwrap();
        assert_eq!(r.cell(0, name), "John Charles");
        assert_eq!(r.cell(3, gender), "M");
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut r = name_table();
        let err = r.push_row(vec!["only one".into()]).unwrap_err();
        assert!(matches!(err, RelationError::ArityMismatch { .. }));
    }

    #[test]
    fn set_cell_returns_old_value() {
        let mut r = name_table();
        let gender = r.schema().attr("gender").unwrap();
        let v0 = r.version();
        let delta = r.set_cell(3, gender, "F".into()).unwrap();
        assert_eq!(
            delta,
            RowDelta::CellSet {
                version: v0 + 1,
                row: 3,
                attr: gender,
                old: "M".into()
            }
        );
        assert_eq!(r.cell(3, gender), "F");
        assert_eq!(r.version(), v0 + 1);
    }

    #[test]
    fn insert_and_delete_emit_deltas_and_renumber() {
        let mut r = name_table();
        let v0 = r.version();
        let delta = r
            .insert_row(vec!["Ada Lovelace".into(), "F".into()])
            .unwrap();
        assert_eq!(
            delta,
            RowDelta::RowInserted {
                version: v0 + 1,
                row: 4
            }
        );
        assert_eq!(r.num_rows(), 5);

        let delta = r.delete_row(1).unwrap();
        assert_eq!(
            delta,
            RowDelta::RowDeleted {
                version: v0 + 2,
                row: 1,
                cells: vec!["John Bosco".into(), "M".into()]
            }
        );
        let name = r.schema().attr("name").unwrap();
        assert_eq!(r.cell(1, name), "Susan Orlean", "higher ids shift down");
        assert!(matches!(
            r.delete_row(99),
            Err(RelationError::RowOutOfRange(99))
        ));
        assert!(r
            .insert_row(vec!["only one".into()])
            .is_err_and(|e| matches!(e, RelationError::ArityMismatch { .. })));
    }

    #[test]
    fn version_is_not_part_of_equality() {
        let mut a = name_table();
        let b = name_table();
        let gender = a.schema().attr("gender").unwrap();
        a.set_cell(3, gender, "M".into()).unwrap(); // same value, new version
        assert_ne!(a.version(), b.version());
        assert_eq!(a, b, "equality compares schema and cells only");
    }

    #[test]
    fn set_cell_out_of_range() {
        let mut r = name_table();
        let gender = r.schema().attr("gender").unwrap();
        assert!(matches!(
            r.set_cell(99, gender, "F".into()),
            Err(RelationError::RowOutOfRange(99))
        ));
    }

    #[test]
    fn column_iteration_and_distinct() {
        let r = name_table();
        let gender = r.schema().attr("gender").unwrap();
        let genders: Vec<&str> = r.column(gender).collect();
        assert_eq!(genders, vec!["M", "M", "F", "M"]);
        assert_eq!(r.distinct_count(gender), 2);
    }

    #[test]
    fn project_row() {
        let r = name_table();
        let ids = r.schema().attrs(&["gender", "name"]).unwrap();
        assert_eq!(r.project(2, &ids), vec!["F", "Susan Orlean"]);
    }

    #[test]
    fn filter_rows_renumbers() {
        let r = name_table();
        let filtered = r.filter_rows(|i| i % 2 == 0);
        assert_eq!(filtered.num_rows(), 2);
        let name = filtered.schema().attr("name").unwrap();
        assert_eq!(filtered.cell(1, name), "Susan Orlean");
    }
}
