//! String-valued relations.
//!
//! PFDs are defined on *qualitative* values (§2.1 Remark): names, codes,
//! cities — values where patterns carry meaning. We therefore store every
//! cell as a string; quantitative columns are recognized (and pruned) by the
//! profiler, mirroring the paper's discovery pipeline.

use crate::schema::{AttrId, Schema, SchemaError};
use std::fmt;

/// A row identifier: index into the relation's row vector.
pub type RowId = usize;

/// A relation instance: a schema plus rows of string cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    schema: Schema,
    rows: Vec<Vec<String>>,
}

/// Errors from relation construction/mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationError {
    /// An underlying schema error.
    Schema(SchemaError),
    /// A row whose arity does not match the schema.
    ArityMismatch {
        /// Index of the offending row.
        row: usize,
        /// The schema's arity.
        expected: usize,
        /// The row's cell count.
        got: usize,
    },
    /// Row index out of range.
    RowOutOfRange(RowId),
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::Schema(e) => write!(f, "{e}"),
            RelationError::ArityMismatch { row, expected, got } => {
                write!(f, "row {row}: expected {expected} cells, got {got}")
            }
            RelationError::RowOutOfRange(r) => write!(f, "row {r} out of range"),
        }
    }
}

impl std::error::Error for RelationError {}

impl From<SchemaError> for RelationError {
    fn from(e: SchemaError) -> Self {
        RelationError::Schema(e)
    }
}

impl Relation {
    /// An empty relation over the given schema.
    pub fn empty(schema: Schema) -> Relation {
        Relation {
            schema,
            rows: Vec::new(),
        }
    }

    /// Build a relation from rows of `&str` cells (test/fixture friendly).
    pub fn from_rows<S: AsRef<str>>(
        relation: &str,
        attributes: &[&str],
        rows: Vec<Vec<S>>,
    ) -> Result<Relation, RelationError> {
        let schema = Schema::new(relation, attributes.iter().copied())?;
        let mut rel = Relation::empty(schema);
        for row in rows {
            rel.push_row(row.iter().map(|c| c.as_ref().to_string()).collect())?;
        }
        Ok(rel)
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Does the relation have no rows?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row, validating arity.
    pub fn push_row(&mut self, row: Vec<String>) -> Result<RowId, RelationError> {
        if row.len() != self.schema.arity() {
            return Err(RelationError::ArityMismatch {
                row: self.rows.len(),
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        self.rows.push(row);
        Ok(self.rows.len() - 1)
    }

    /// The cell at `(row, attr)`.
    pub fn cell(&self, row: RowId, attr: AttrId) -> &str {
        &self.rows[row][attr.index()]
    }

    /// Overwrite a single cell (used by error injection and repair).
    pub fn set_cell(
        &mut self,
        row: RowId,
        attr: AttrId,
        value: String,
    ) -> Result<String, RelationError> {
        let r = self
            .rows
            .get_mut(row)
            .ok_or(RelationError::RowOutOfRange(row))?;
        let slot = r
            .get_mut(attr.index())
            .ok_or(RelationError::Schema(SchemaError::AttrIdOutOfRange(attr)))?;
        Ok(std::mem::replace(slot, value))
    }

    /// Borrow a full row.
    pub fn row(&self, row: RowId) -> &[String] {
        &self.rows[row]
    }

    /// Iterate over `(RowId, row)` pairs.
    pub fn iter_rows(&self) -> impl Iterator<Item = (RowId, &[String])> {
        self.rows.iter().enumerate().map(|(i, r)| (i, r.as_slice()))
    }

    /// Iterate over one column's values.
    pub fn column(&self, attr: AttrId) -> impl Iterator<Item = &str> {
        self.rows.iter().map(move |r| r[attr.index()].as_str())
    }

    /// Project a row onto a list of attributes.
    pub fn project(&self, row: RowId, attrs: &[AttrId]) -> Vec<&str> {
        attrs.iter().map(|a| self.cell(row, *a)).collect()
    }

    /// Number of distinct values in a column.
    pub fn distinct_count(&self, attr: AttrId) -> usize {
        let mut values: Vec<&str> = self.column(attr).collect();
        values.sort_unstable();
        values.dedup();
        values.len()
    }

    /// Retain only the rows whose ids satisfy the predicate, renumbering.
    pub fn filter_rows(&self, mut keep: impl FnMut(RowId) -> bool) -> Relation {
        Relation {
            schema: self.schema.clone(),
            rows: self
                .rows
                .iter()
                .enumerate()
                .filter(|(i, _)| keep(*i))
                .map(|(_, r)| r.clone())
                .collect(),
        }
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for (i, row) in self.iter_rows() {
            writeln!(f, "  r{}: ({})", i, row.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name_table() -> Relation {
        // Table 1 of the paper.
        Relation::from_rows(
            "Name",
            &["name", "gender"],
            vec![
                vec!["John Charles", "M"],
                vec!["John Bosco", "M"],
                vec!["Susan Orlean", "F"],
                vec!["Susan Boyle", "M"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn build_and_access() {
        let r = name_table();
        assert_eq!(r.num_rows(), 4);
        let name = r.schema().attr("name").unwrap();
        let gender = r.schema().attr("gender").unwrap();
        assert_eq!(r.cell(0, name), "John Charles");
        assert_eq!(r.cell(3, gender), "M");
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut r = name_table();
        let err = r.push_row(vec!["only one".into()]).unwrap_err();
        assert!(matches!(err, RelationError::ArityMismatch { .. }));
    }

    #[test]
    fn set_cell_returns_old_value() {
        let mut r = name_table();
        let gender = r.schema().attr("gender").unwrap();
        let old = r.set_cell(3, gender, "F".into()).unwrap();
        assert_eq!(old, "M");
        assert_eq!(r.cell(3, gender), "F");
    }

    #[test]
    fn set_cell_out_of_range() {
        let mut r = name_table();
        let gender = r.schema().attr("gender").unwrap();
        assert!(matches!(
            r.set_cell(99, gender, "F".into()),
            Err(RelationError::RowOutOfRange(99))
        ));
    }

    #[test]
    fn column_iteration_and_distinct() {
        let r = name_table();
        let gender = r.schema().attr("gender").unwrap();
        let genders: Vec<&str> = r.column(gender).collect();
        assert_eq!(genders, vec!["M", "M", "F", "M"]);
        assert_eq!(r.distinct_count(gender), 2);
    }

    #[test]
    fn project_row() {
        let r = name_table();
        let ids = r.schema().attrs(&["gender", "name"]).unwrap();
        assert_eq!(r.project(2, &ids), vec!["F", "Susan Orlean"]);
    }

    #[test]
    fn filter_rows_renumbers() {
        let r = name_table();
        let filtered = r.filter_rows(|i| i % 2 == 0);
        assert_eq!(filtered.num_rows(), 2);
        let name = filtered.schema().attr("name").unwrap();
        assert_eq!(filtered.cell(1, name), "Susan Orlean");
    }
}
