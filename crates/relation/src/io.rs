//! Pluggable file I/O for the durability layer.
//!
//! Everything the snapshot and write-ahead-log code does to disk goes
//! through the [`Io`] trait — eight primitive operations (read, write,
//! append, truncate, sync, rename, remove, exists) that are trivial to
//! implement for the real filesystem ([`StdIo`]), an in-memory map
//! ([`MemIo`]), and — the reason the seam exists — a deterministic
//! fault injector ([`FailpointIo`]) that makes the writer "crash" at any
//! chosen byte offset, leaving exactly the partial state a real power
//! loss would.
//!
//! The failpoint model is *fuel*: every written byte costs one unit and
//! every metadata operation (sync, rename, truncate, remove) costs one
//! unit. When the fuel runs out mid-write the prefix that fit is still
//! applied — a torn write — and the operation returns an error the caller
//! treats as a crash. Sweeping the fuel budget from 0 to the total
//! consumption of a recorded run therefore simulates a crash at *every*
//! point of the write sequence, which is how the recovery property suite
//! in `pfd_core` proves that recovery never loses an acknowledged record
//! and never panics.

use std::collections::BTreeMap;
use std::io;
use std::ops::Deref;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// Shared (possibly memory-mapped) byte buffers
// ---------------------------------------------------------------------------

/// A cheaply-cloneable, immutable byte buffer that is either an owned
/// `Vec<u8>` or a read-only memory mapping of a file.
///
/// This is the substrate of the zero-copy snapshot tier: a section reader
/// over a `SharedBytes` can hand out posting-block payloads that *alias*
/// the buffer (see `PostingList`'s borrowed payload mode) instead of
/// copying gap streams at load. Clones bump an `Arc`, so a loaded index
/// keeps the mapping alive exactly as long as any posting list still
/// references it.
///
/// The mapping is private and read-only; the safety argument for exposing
/// it as `&[u8]` is that nothing in this process can write through it.
/// Truncating the underlying file from *outside* the process while a
/// mapping is live is undefined behavior on every mmap platform — the
/// snapshot layer's atomic-rename protocol (new file + `rename`) never
/// shrinks a live file in place, which is what makes mapping snapshot
/// sections sound.
#[derive(Clone)]
pub struct SharedBytes {
    inner: Arc<SharedBuf>,
}

enum SharedBuf {
    Owned(Vec<u8>),
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mapped(MmapRegion),
}

impl SharedBytes {
    /// Wraps an owned buffer.
    pub fn from_vec(data: Vec<u8>) -> Self {
        SharedBytes {
            inner: Arc::new(SharedBuf::Owned(data)),
        }
    }

    /// Memory-maps the file at `path` read-only.
    ///
    /// Returns [`io::ErrorKind::Unsupported`] on platforms without the
    /// mmap path; callers fall back to [`Io::read`]. An empty file maps
    /// to an empty owned buffer (zero-length mappings are not portable).
    pub fn map_file(path: &Path) -> io::Result<Self> {
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            let file = std::fs::File::open(path)?;
            let len = file.metadata()?.len() as usize;
            if len == 0 {
                return Ok(Self::from_vec(Vec::new()));
            }
            let region = MmapRegion::map(&file, len)?;
            Ok(SharedBytes {
                inner: Arc::new(SharedBuf::Mapped(region)),
            })
        }
        #[cfg(not(all(unix, target_pointer_width = "64")))]
        {
            let _ = path;
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "memory mapping is not supported on this platform",
            ))
        }
    }

    /// True when the buffer is backed by a file mapping rather than heap
    /// memory — the bench artifacts record which path a load took.
    pub fn is_mapped(&self) -> bool {
        match &*self.inner {
            SharedBuf::Owned(_) => false,
            #[cfg(all(unix, target_pointer_width = "64"))]
            SharedBuf::Mapped(_) => true,
        }
    }
}

impl Deref for SharedBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match &*self.inner {
            SharedBuf::Owned(v) => v,
            #[cfg(all(unix, target_pointer_width = "64"))]
            SharedBuf::Mapped(m) => m.as_slice(),
        }
    }
}

impl AsRef<[u8]> for SharedBytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for SharedBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedBytes")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

/// Raw `mmap(2)` bindings. The workspace is offline (no `libc` crate),
/// but `std` already links the platform libc on unix targets, so the two
/// symbols the read-only mapping needs are declared directly. Gated to
/// 64-bit unix where `off_t` is `i64`, sidestepping the 32-bit LFS ABI
/// split; other targets take the read-to-`Vec` fallback.
#[cfg(all(unix, target_pointer_width = "64"))]
mod mmap_sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

#[cfg(all(unix, target_pointer_width = "64"))]
struct MmapRegion {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the region is mapped PROT_READ/MAP_PRIVATE and never written
// through; an immutable byte region is safe to read from any thread.
#[cfg(all(unix, target_pointer_width = "64"))]
unsafe impl Send for MmapRegion {}
#[cfg(all(unix, target_pointer_width = "64"))]
unsafe impl Sync for MmapRegion {}

#[cfg(all(unix, target_pointer_width = "64"))]
impl MmapRegion {
    fn map(file: &std::fs::File, len: usize) -> io::Result<Self> {
        use std::os::unix::io::AsRawFd as _;
        // SAFETY: len is non-zero (checked by the caller) and the fd is
        // open; a MAP_FAILED return is checked below.
        let ptr = unsafe {
            mmap_sys::mmap(
                std::ptr::null_mut(),
                len,
                mmap_sys::PROT_READ,
                mmap_sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(MmapRegion {
            ptr: ptr as *const u8,
            len,
        })
    }

    fn as_slice(&self) -> &[u8] {
        // SAFETY: ptr..ptr+len is a live PROT_READ mapping owned by self.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

#[cfg(all(unix, target_pointer_width = "64"))]
impl Drop for MmapRegion {
    fn drop(&mut self) {
        // SAFETY: ptr/len are exactly what mmap returned; double-unmap is
        // impossible because MmapRegion is not Clone.
        unsafe {
            mmap_sys::munmap(self.ptr as *mut std::os::raw::c_void, self.len);
        }
    }
}

/// The primitive file operations the durability layer is written against.
///
/// Contracts the implementations uphold:
///
/// * [`write`](Io::write) creates or replaces the whole file;
/// * [`append`](Io::append) creates the file when missing;
/// * [`rename`](Io::rename) replaces an existing destination atomically
///   (POSIX semantics);
/// * [`sync`](Io::sync) makes previously written bytes durable;
/// * none of the operations panic on missing files — they report
///   [`io::Error`]s the caller can turn into recovery decisions.
pub trait Io {
    /// Reads the whole file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Creates or replaces the file at `path` with `data`.
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Appends `data` to the file at `path`, creating it when missing.
    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Truncates the file at `path` to `len` bytes.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Forces previously written bytes of `path` to durable storage.
    fn sync(&self, path: &Path) -> io::Result<()>;
    /// Atomically renames `from` to `to`, replacing `to` if present.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes the file at `path`.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// True when a file exists at `path`.
    fn exists(&self, path: &Path) -> bool;
    /// Creates `path` and any missing parents as directories. The default
    /// is a no-op for backends with a flat namespace (e.g. [`MemIo`],
    /// where any path is writable directly); real filesystems override it.
    /// The multi-tenant server uses this to lay out one directory per
    /// tenant before checkpointing into it.
    fn create_dir_all(&self, _path: &Path) -> io::Result<()> {
        Ok(())
    }
    /// Reads the whole file at `path` into a [`SharedBytes`] buffer that
    /// zero-copy consumers can alias. The default reads into an owned
    /// `Vec` — which is what keeps `MemIo`/`FailpointIo` fault tests on
    /// the exact same code path as production loads — while [`StdIo`]
    /// overrides it with a read-only memory mapping where available.
    fn read_shared(&self, path: &Path) -> io::Result<SharedBytes> {
        self.read(path).map(SharedBytes::from_vec)
    }
}

// ---------------------------------------------------------------------------
// Real filesystem
// ---------------------------------------------------------------------------

/// The real filesystem. Stateless — share one instance freely.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdIo;

impl Io for StdIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        std::fs::write(path, data)
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        file.write_all(data)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let file = std::fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(len)
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn read_shared(&self, path: &Path) -> io::Result<SharedBytes> {
        match SharedBytes::map_file(path) {
            Ok(bytes) => Ok(bytes),
            // NotFound is a real answer; anything else (exotic fs, no
            // mmap on this target) degrades to the owned-buffer read.
            Err(e) if e.kind() == io::ErrorKind::NotFound => Err(e),
            Err(_) => self.read(path).map(SharedBytes::from_vec),
        }
    }
}

// ---------------------------------------------------------------------------
// In-memory filesystem
// ---------------------------------------------------------------------------

/// An in-memory filesystem: a shared `path → bytes` map.
///
/// Clones share the same storage, so a test can hand a clone to the writer
/// under fault injection and later inspect (or recover from) the surviving
/// state through the original handle. Since there is no page cache, every
/// applied write is already "durable" — which makes the fault-injection
/// crash model exact: what the map holds is what a recovering process sees.
#[derive(Debug, Clone, Default)]
pub struct MemIo {
    files: Arc<Mutex<BTreeMap<PathBuf, Vec<u8>>>>,
}

impl MemIo {
    /// An empty in-memory filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    /// The paths currently present, in sorted order.
    pub fn paths(&self) -> Vec<PathBuf> {
        self.files().keys().cloned().collect()
    }

    fn files(&self) -> std::sync::MutexGuard<'_, BTreeMap<PathBuf, Vec<u8>>> {
        self.files.lock().unwrap_or_else(|e| e.into_inner())
    }
}

fn not_found(path: &Path) -> io::Error {
    io::Error::new(
        io::ErrorKind::NotFound,
        format!("no such file: {}", path.display()),
    )
}

impl Io for MemIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.files()
            .get(path)
            .cloned()
            .ok_or_else(|| not_found(path))
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.files().insert(path.to_path_buf(), data.to_vec());
        Ok(())
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.files()
            .entry(path.to_path_buf())
            .or_default()
            .extend_from_slice(data);
        Ok(())
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let mut files = self.files();
        let file = files.get_mut(path).ok_or_else(|| not_found(path))?;
        file.truncate(len as usize);
        Ok(())
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        if self.files().contains_key(path) {
            Ok(())
        } else {
            Err(not_found(path))
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut files = self.files();
        let data = files.remove(from).ok_or_else(|| not_found(from))?;
        files.insert(to.to_path_buf(), data);
        Ok(())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.files()
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| not_found(path))
    }

    fn exists(&self, path: &Path) -> bool {
        self.files().contains_key(path)
    }
}

// ---------------------------------------------------------------------------
// Deterministic fault injection
// ---------------------------------------------------------------------------

/// Wraps another [`Io`] and fails deterministically once a *fuel* budget is
/// exhausted.
///
/// Costs: one unit per written byte ([`write`](Io::write) /
/// [`append`](Io::append)), one unit per metadata operation
/// ([`truncate`](Io::truncate), [`sync`](Io::sync), [`rename`](Io::rename),
/// [`remove`](Io::remove)). Reads are free. A data write that exceeds the
/// remaining fuel applies only the prefix that fits — a torn write — and
/// then errors; a metadata operation with no fuel left errors without any
/// effect. Every operation after exhaustion keeps failing, so a crashed
/// writer cannot accidentally make progress.
///
/// [`consumed`](FailpointIo::consumed) after an unlimited run measures the
/// total fuel a write sequence needs; sweeping budgets `0..=total` then
/// simulates a crash at every byte and every metadata boundary.
#[derive(Debug)]
pub struct FailpointIo<I> {
    inner: I,
    fuel: AtomicU64,
    consumed: AtomicU64,
}

/// The error kind every injected failure reports.
pub const CRASH_ERROR_KIND: io::ErrorKind = io::ErrorKind::Other;

impl<I: Io> FailpointIo<I> {
    /// Fault injector with `fuel` units of budget over `inner`.
    pub fn with_fuel(inner: I, fuel: u64) -> Self {
        FailpointIo {
            inner,
            fuel: AtomicU64::new(fuel),
            consumed: AtomicU64::new(0),
        }
    }

    /// No failures — used to measure the fuel a run consumes.
    pub fn unlimited(inner: I) -> Self {
        Self::with_fuel(inner, u64::MAX)
    }

    /// Fuel consumed so far.
    pub fn consumed(&self) -> u64 {
        self.consumed.load(Ordering::Relaxed)
    }

    /// The wrapped I/O.
    pub fn inner(&self) -> &I {
        &self.inner
    }

    /// Takes `want` units, returning how many were actually available.
    fn charge(&self, want: u64) -> u64 {
        let mut have = self.fuel.load(Ordering::Relaxed);
        loop {
            let take = want.min(have);
            match self.fuel.compare_exchange(
                have,
                have - take,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.consumed.fetch_add(take, Ordering::Relaxed);
                    return take;
                }
                Err(actual) => have = actual,
            }
        }
    }

    fn crash(op: &str, path: &Path) -> io::Error {
        io::Error::new(
            CRASH_ERROR_KIND,
            format!("injected crash during {op} of {}", path.display()),
        )
    }

    /// Charges one unit for a metadata op; `Ok` when it may proceed.
    fn charge_op(&self, op: &str, path: &Path) -> io::Result<()> {
        if self.charge(1) == 1 {
            Ok(())
        } else {
            Err(Self::crash(op, path))
        }
    }
}

impl<I: Io> Io for FailpointIo<I> {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let allowed = self.charge(data.len() as u64) as usize;
        // Even the torn prefix must land: that is precisely the state a
        // power loss mid-write leaves behind.
        self.inner.write(path, &data[..allowed])?;
        if allowed < data.len() {
            return Err(Self::crash("write", path));
        }
        Ok(())
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let allowed = self.charge(data.len() as u64) as usize;
        self.inner.append(path, &data[..allowed])?;
        if allowed < data.len() {
            return Err(Self::crash("append", path));
        }
        Ok(())
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        self.charge_op("truncate", path)?;
        self.inner.truncate(path, len)
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        self.charge_op("sync", path)?;
        self.inner.sync(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.charge_op("rename", from)?;
        self.inner.rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.charge_op("remove", path)?;
        self.inner.remove(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.charge_op("create_dir_all", path)?;
        self.inner.create_dir_all(path)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn mem_io_behaves_like_a_filesystem() {
        let io = MemIo::new();
        let a = Path::new("/a");
        let b = Path::new("/b");
        assert!(!io.exists(a));
        assert!(io.read(a).is_err());
        io.write(a, b"hello").unwrap();
        io.append(a, b" world").unwrap();
        assert_eq!(io.read(a).unwrap(), b"hello world");
        io.truncate(a, 5).unwrap();
        assert_eq!(io.read(a).unwrap(), b"hello");
        io.rename(a, b).unwrap();
        assert!(!io.exists(a));
        assert_eq!(io.read(b).unwrap(), b"hello");
        // Clones share storage.
        let clone = io.clone();
        clone.write(a, b"x").unwrap();
        assert!(io.exists(a));
        io.remove(a).unwrap();
        assert!(io.remove(a).is_err());
        io.sync(b).unwrap();
        assert!(io.sync(a).is_err());
    }

    #[test]
    fn failpoint_tears_writes_at_the_byte_budget() {
        let mem = MemIo::new();
        let io = FailpointIo::with_fuel(mem.clone(), 3);
        let p = Path::new("/f");
        assert!(io.write(p, b"hello").is_err());
        assert_eq!(mem.read(p).unwrap(), b"hel", "torn prefix must land");
        // Fuel is exhausted: nothing further applies.
        assert!(io.append(p, b"x").is_err());
        assert!(io.sync(p).is_err());
        assert!(io.rename(p, Path::new("/g")).is_err());
        assert_eq!(mem.read(p).unwrap(), b"hel");
    }

    #[test]
    fn failpoint_charges_one_unit_per_metadata_op() {
        let mem = MemIo::new();
        mem.write(Path::new("/f"), b"data").unwrap();
        let io = FailpointIo::with_fuel(mem.clone(), 2);
        io.sync(Path::new("/f")).unwrap();
        io.rename(Path::new("/f"), Path::new("/g")).unwrap();
        assert!(io.remove(Path::new("/g")).is_err(), "fuel exhausted");
        assert!(mem.exists(Path::new("/g")), "failed remove has no effect");
        assert_eq!(io.consumed(), 2);
    }

    #[test]
    fn unlimited_failpoint_measures_consumption() {
        let io = FailpointIo::unlimited(MemIo::new());
        let p = Path::new("/f");
        io.write(p, b"12345").unwrap();
        io.sync(p).unwrap();
        io.append(p, b"67").unwrap();
        assert_eq!(io.consumed(), 5 + 1 + 2);
    }

    #[test]
    fn shared_bytes_owned_and_mapped_agree() {
        let dir = std::env::temp_dir().join("pfd-io-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{}-shared-bytes", std::process::id()));
        let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        StdIo.write(&path, &payload).unwrap();

        let shared = StdIo.read_shared(&path).unwrap();
        assert_eq!(&*shared, &payload[..]);
        #[cfg(all(unix, target_pointer_width = "64"))]
        assert!(shared.is_mapped(), "StdIo should mmap on 64-bit unix");
        // Clones alias the same buffer and outlive the original handle.
        let clone = shared.clone();
        drop(shared);
        assert_eq!(&clone[..16], &payload[..16]);

        // MemIo takes the default owned-read path.
        let mem = MemIo::new();
        mem.write(&path, &payload).unwrap();
        let owned = mem.read_shared(&path).unwrap();
        assert!(!owned.is_mapped());
        assert_eq!(&*owned, &payload[..]);

        StdIo.remove(&path).unwrap();
        assert_eq!(
            StdIo
                .read_shared(&path)
                .map(|b| b.len())
                .unwrap_err()
                .kind(),
            io::ErrorKind::NotFound
        );
    }

    #[test]
    fn shared_bytes_maps_empty_files() {
        let dir = std::env::temp_dir().join("pfd-io-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{}-shared-empty", std::process::id()));
        StdIo.write(&path, b"").unwrap();
        let shared = StdIo.read_shared(&path).unwrap();
        assert!(shared.is_empty());
        StdIo.remove(&path).unwrap();
    }

    #[test]
    fn std_io_round_trips_on_disk() {
        let dir = std::env::temp_dir().join("pfd-io-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{}-std-io", std::process::id()));
        let io = StdIo;
        io.write(&path, b"abc").unwrap();
        io.append(&path, b"def").unwrap();
        io.sync(&path).unwrap();
        assert_eq!(io.read(&path).unwrap(), b"abcdef");
        io.truncate(&path, 4).unwrap();
        assert_eq!(io.read(&path).unwrap(), b"abcd");
        let dest = dir.join(format!("{}-std-io-renamed", std::process::id()));
        io.rename(&path, &dest).unwrap();
        assert!(io.exists(&dest) && !io.exists(&path));
        io.remove(&dest).unwrap();
        assert!(!io.exists(&dest));
    }
}
