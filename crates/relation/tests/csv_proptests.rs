//! CSV round-trip property suite over adversarial cell content.
//!
//! Random relations — including single-column ones — with commas, quotes,
//! LF/CRLF line endings, lone carriage returns and empty cells must survive
//! `write_csv_string` → `read_csv_str` unchanged. This pins the two fixed
//! ingestion bugs (empty-row drops in single-column relations, CRLF
//! normalization inside quoted fields) and the CSV baseline the snapshot
//! loader is property-compared against.

use pfd_relation::{read_csv_str, write_csv_string, CsvError, Relation, Schema};
use proptest::prelude::*;

/// Cells drawn to stress the writer/reader: quoting triggers, embedded
/// terminators of both flavors, empties, unicode.
fn nasty_cell() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z]{0,6}",
        Just(String::new()),
        Just("a,b".to_string()),
        Just("say \"hi\"".to_string()),
        Just("line1\nline2".to_string()),
        Just("line1\r\nline2".to_string()),
        Just("\r\n".to_string()),
        Just("ends with cr\r".to_string()),
        Just("\rstarts with cr".to_string()),
        Just(" padded ".to_string()),
        Just("Éric, Å".to_string()),
        Just("\"\"".to_string()),
        Just(",,,".to_string()),
        Just("\"\r\n\"".to_string()),
    ]
}

/// Random relations over 1–4 columns (arity 1 is the regression surface for
/// the empty-row drop) with 0–12 rows of nasty cells.
fn arbitrary_relation() -> impl Strategy<Value = Relation> {
    (1usize..5)
        .prop_flat_map(|arity| {
            let rows =
                proptest::collection::vec(proptest::collection::vec(nasty_cell(), arity), 0..12);
            (Just(arity), rows)
        })
        .prop_map(|(arity, rows)| {
            let names: Vec<String> = (0..arity).map(|i| format!("col{i}")).collect();
            let mut rel = Relation::empty(Schema::new("T", names).unwrap());
            for row in rows {
                rel.push_row(row).unwrap();
            }
            rel
        })
}

proptest! {
    #[test]
    fn csv_round_trip_is_identity(rel in arbitrary_relation()) {
        let csv = write_csv_string(&rel);
        let back = read_csv_str("T", &csv).expect("own output must parse");
        prop_assert_eq!(back, rel);
    }

    #[test]
    fn double_round_trip_is_stable(rel in arbitrary_relation()) {
        let once = write_csv_string(&rel);
        let back = read_csv_str("T", &once).unwrap();
        let twice = write_csv_string(&back);
        prop_assert_eq!(once, twice);
    }

    /// Single-column relations where every cell may be empty: the exact
    /// shape the old reader corrupted by dropping blank-looking records.
    #[test]
    fn single_column_relations_keep_their_row_count(
        cells in proptest::collection::vec(prop_oneof![Just(String::new()), "[a-z]{0,3}"], 0..16)
    ) {
        let mut rel = Relation::empty(Schema::new("T", ["only"]).unwrap());
        for c in &cells {
            rel.push_row(vec![c.clone()]).unwrap();
        }
        let back = read_csv_str("T", &write_csv_string(&rel)).unwrap();
        prop_assert_eq!(back.num_rows(), cells.len());
        prop_assert_eq!(back, rel);
    }

    /// Byte fidelity inside quoted fields: whatever mix of `\n` and `\r\n`
    /// a cell contains comes back verbatim.
    #[test]
    fn embedded_line_endings_round_trip(
        parts in proptest::collection::vec("[a-z]{0,4}", 1..5),
        crlf in proptest::collection::vec(any::<bool>(), 4)
    ) {
        let mut cell = String::new();
        for (i, p) in parts.iter().enumerate() {
            if i > 0 {
                cell.push_str(if crlf[(i - 1) % crlf.len()] { "\r\n" } else { "\n" });
            }
            cell.push_str(p);
        }
        let rel = Relation::from_rows("T", &["a", "b"], vec![vec![cell.as_str(), "x"]]).unwrap();
        let back = read_csv_str("T", &write_csv_string(&rel)).unwrap();
        let a = back.schema().attr("a").unwrap();
        prop_assert_eq!(back.cell(0, a), cell.as_str());
    }

    /// Malformed quoting never panics; it errors with a line number no
    /// larger than the physical line count.
    #[test]
    fn malformed_input_errors_gracefully(
        prefix in "[a-z]{0,4}",
        junk in "[a-z]{1,4}"
    ) {
        let unterminated = format!("a\n{prefix}\n\"never closed\n");
        match read_csv_str("T", &unterminated) {
            Err(CsvError::UnterminatedQuote { line }) => prop_assert_eq!(line, 3),
            other => prop_assert!(false, "expected UnterminatedQuote, got {:?}", other),
        }
        let trailing = format!("a\n\"x\ny\"{junk}\n");
        match read_csv_str("T", &trailing) {
            Err(CsvError::TrailingAfterQuote { line }) => prop_assert_eq!(line, 2),
            other => prop_assert!(false, "expected TrailingAfterQuote, got {:?}", other),
        }
    }
}
