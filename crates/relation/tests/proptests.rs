//! Property-based tests for the relational substrate: CSV round-tripping
//! over adversarial cell content and profiling invariants.

use pfd_relation::{
    profile_relation, read_csv_str, write_csv_string, ColumnKind, Relation, Schema,
};
use proptest::prelude::*;

/// Cells drawn to stress the CSV writer/reader: quotes, commas, newlines,
/// unicode, leading/trailing spaces.
fn nasty_cell() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z]{0,6}",
        Just("".to_string()),
        Just("a,b".to_string()),
        Just("say \"hi\"".to_string()),
        Just("line1\nline2".to_string()),
        Just(" padded ".to_string()),
        Just("Éric, Å".to_string()),
        Just("\"\"".to_string()),
        Just(",,,".to_string()),
    ]
}

fn arbitrary_relation() -> impl Strategy<Value = Relation> {
    (2usize..5)
        .prop_flat_map(|arity| {
            let rows =
                proptest::collection::vec(proptest::collection::vec(nasty_cell(), arity), 0..10);
            (Just(arity), rows)
        })
        .prop_map(|(arity, rows)| {
            let names: Vec<String> = (0..arity).map(|i| format!("col{i}")).collect();
            let mut rel = Relation::empty(Schema::new("T", names).unwrap());
            for row in rows {
                rel.push_row(row).unwrap();
            }
            rel
        })
}

proptest! {
    #[test]
    fn csv_round_trip_is_identity(rel in arbitrary_relation()) {
        let csv = write_csv_string(&rel);
        let back = read_csv_str("T", &csv).expect("own output must parse");
        prop_assert_eq!(back, rel);
    }

    #[test]
    fn double_round_trip_is_stable(rel in arbitrary_relation()) {
        let once = write_csv_string(&rel);
        let back = read_csv_str("T", &once).unwrap();
        let twice = write_csv_string(&back);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn profiling_never_panics_and_counts_add_up(rel in arbitrary_relation()) {
        for p in profile_relation(&rel) {
            prop_assert!(p.non_empty <= p.rows);
            prop_assert!(p.distinct <= p.non_empty.max(1));
            prop_assert!((0.0..=1.0).contains(&p.numeric_fraction));
            prop_assert!((0.0..=1.0).contains(&p.separator_fraction));
            if p.non_empty == 0 {
                prop_assert!(!p.is_candidate());
            }
            if p.kind == ColumnKind::Quantitative {
                prop_assert!(p.numeric_fraction > 0.9);
            }
        }
    }

    #[test]
    fn filter_rows_preserves_schema_and_shrinks(rel in arbitrary_relation()) {
        let kept = rel.filter_rows(|r| r % 2 == 0);
        prop_assert_eq!(kept.schema(), rel.schema());
        prop_assert!(kept.num_rows() <= rel.num_rows());
    }
}
