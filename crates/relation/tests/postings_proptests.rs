//! Property-based tests for the block-compressed posting lists: random edit
//! scripts straddling the 128-entry block boundaries against a `BTreeSet`
//! model, representation equivalence of `eq`/`hash` across the sorted,
//! blocked and dense tiers, set-algebra agreement with the model, union
//! accumulation through [`RowSetAccumulator`], and the zero-copy
//! shared-payload decode path.

use pfd_relation::binary::{decode_postings_shared, encode_postings};
use pfd_relation::{Cursor, PostingList, RowSetAccumulator, SharedBytes};
use proptest::prelude::*;
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};

const UNIVERSE: usize = 40_000;

fn hash_of(list: &PostingList) -> u64 {
    let mut h = DefaultHasher::new();
    list.hash(&mut h);
    h.finish()
}

/// Ids biased toward block-boundary neighborhoods: the 128-entry build
/// chunks put boundaries at every 128th element of the sorted run, so seeds
/// clustered around multiples of 128 in id space (with stride-1 runs) make
/// edits land on first/last elements of blocks often.
fn boundary_biased_id() -> impl Strategy<Value = u32> {
    prop_oneof![
        // Anywhere in the universe.
        0u32..(UNIVERSE as u32),
        // Within a couple of a multiple of 128.
        (0u32..300, 0u32..4).prop_map(|(k, off)| (k * 128 + off).min(UNIVERSE as u32 - 1)),
    ]
}

/// A seed set large enough to be stored blocked (≥ 256 ids, sparse). The
/// raw draw is a vec (the vendored proptest has no btree_set collector), so
/// dedup can land below 256 — pad with a deterministic stride-3 run to keep
/// the blocked tier engaged.
fn blocked_seed() -> impl Strategy<Value = BTreeSet<u32>> {
    proptest::collection::vec(boundary_biased_id(), 256..700).prop_map(|ids| {
        let mut set: BTreeSet<u32> = ids.into_iter().collect();
        let mut pad = 0u32;
        while set.len() < 256 {
            set.insert(pad * 3);
            pad += 1;
        }
        set
    })
}

/// A small set that `from_sorted` keeps in the sorted tier (< 256 ids).
fn sorted_seed() -> impl Strategy<Value = BTreeSet<u32>> {
    proptest::collection::vec(boundary_biased_id(), 0..100)
        .prop_map(|ids| ids.into_iter().collect())
}

/// A contiguous run dense enough (≥ universe/16 ids) for the bitset tier.
fn dense_seed() -> impl Strategy<Value = BTreeSet<u32>> {
    (0u32..30_000, 2_500u32..2_800).prop_map(|(start, len)| (start..start + len).collect())
}

/// A seed from any of the three storage tiers.
fn any_tier_seed() -> impl Strategy<Value = BTreeSet<u32>> {
    prop_oneof![sorted_seed(), blocked_seed(), dense_seed()]
}

#[derive(Debug, Clone)]
enum EditOp {
    Insert(u32),
    Remove(u32),
}

fn edit_script() -> impl Strategy<Value = Vec<EditOp>> {
    proptest::collection::vec(
        prop_oneof![
            boundary_biased_id().prop_map(EditOp::Insert),
            boundary_biased_id().prop_map(EditOp::Remove),
        ],
        0..200,
    )
}

proptest! {
    /// Random insert/remove scripts over a blocked list agree with a
    /// `BTreeSet` model at every step, and the final list is equal (and
    /// hash-equal) to a canonically rebuilt one.
    #[test]
    fn edit_scripts_agree_with_set_model(seed in blocked_seed(), script in edit_script()) {
        let mut model = seed.clone();
        let mut list = PostingList::from_sorted(seed.iter().copied().collect(), UNIVERSE);
        prop_assert!(list.is_blocked_repr(), "seed sizes must exercise the blocked tier");
        for op in script {
            match op {
                EditOp::Insert(id) => {
                    prop_assert_eq!(list.insert(id as usize), model.insert(id));
                }
                EditOp::Remove(id) => {
                    prop_assert_eq!(list.remove(id as usize), model.remove(&id));
                }
            }
            prop_assert_eq!(list.len(), model.len());
        }
        prop_assert_eq!(list.to_vec(), model.iter().copied().collect::<Vec<u32>>());
        // Mutated block partitions are non-canonical; equality and hash must
        // not notice.
        let rebuilt = PostingList::from_sorted(model.iter().copied().collect(), UNIVERSE);
        prop_assert_eq!(&list, &rebuilt);
        prop_assert_eq!(hash_of(&list), hash_of(&rebuilt));
    }

    /// The same id set reached through different public-API paths — and
    /// therefore possibly different storage tiers — compares and hashes
    /// identically. Removal never demotes, so shrinking a blocked list far
    /// below the block threshold (or a dense one far below the density bound)
    /// yields a representation `from_sorted` would not pick.
    #[test]
    fn representations_are_equivalent_under_eq_and_hash(
        seed in blocked_seed(),
        drop_raw in proptest::collection::vec(0usize..700, 0..500),
    ) {
        let drop: BTreeSet<usize> = drop_raw.into_iter().collect();
        let ids: Vec<u32> = seed.iter().copied().collect();
        let kept: Vec<u32> = ids
            .iter()
            .enumerate()
            .filter(|(i, _)| !drop.contains(i))
            .map(|(_, id)| *id)
            .collect();

        // Path 1: blocked, then shrunk in place (stays blocked).
        let mut shrunk_blocked = PostingList::from_sorted(ids.clone(), UNIVERSE);
        // Path 2: dense (tight universe), then shrunk in place (stays dense).
        let tight = ids.last().map_or(1, |m| *m as usize + 1);
        let mut shrunk_dense = PostingList::from_sorted(ids.clone(), tight.max(seed.len() * 16));
        // Path 3: rebuilt canonically from the survivors.
        let rebuilt = PostingList::from_sorted(kept.clone(), UNIVERSE);

        for (i, id) in ids.iter().enumerate() {
            if drop.contains(&i) {
                shrunk_blocked.remove(*id as usize);
                shrunk_dense.remove(*id as usize);
            }
        }

        prop_assert_eq!(shrunk_blocked.to_vec(), kept.clone());
        prop_assert_eq!(&shrunk_blocked, &rebuilt);
        prop_assert_eq!(hash_of(&shrunk_blocked), hash_of(&rebuilt));
        // Dense and blocked/sorted share universe-independent equality only
        // when universes match, so compare the dense pair separately.
        let rebuilt_tight =
            PostingList::from_sorted(kept.clone(), shrunk_dense.universe());
        prop_assert_eq!(&shrunk_dense, &rebuilt_tight);
        prop_assert_eq!(hash_of(&shrunk_dense), hash_of(&rebuilt_tight));
    }

    /// Intersection and subset checks across mixed representations agree
    /// with the `BTreeSet` model.
    #[test]
    fn set_algebra_agrees_with_model(a in blocked_seed(), b in blocked_seed()) {
        let la = PostingList::from_sorted(a.iter().copied().collect(), UNIVERSE);
        let lb = PostingList::from_sorted(b.iter().copied().collect(), UNIVERSE);
        let expected: Vec<u32> = a.intersection(&b).copied().collect();
        prop_assert_eq!(la.intersect(&lb).to_vec(), expected.clone());
        prop_assert_eq!(lb.intersect(&la).to_vec(), expected.clone());
        let mut out = Vec::new();
        la.intersect_into(&lb, &mut out);
        prop_assert_eq!(out, expected.clone());

        prop_assert_eq!(la.is_subset(&lb), a.is_subset(&b));
        // A genuine subset, blocked-sized, checked in both directions.
        let sub: Vec<u32> = a.iter().copied().step_by(2).collect();
        let ls = PostingList::from_sorted(sub, UNIVERSE);
        prop_assert!(ls.is_subset(&la));
        prop_assert_eq!(la.is_subset(&ls), la.len() == ls.len());

        // The intersection list itself behaves: every member is contained
        // in both operands.
        let meet = la.intersect(&lb);
        prop_assert!(meet
            .iter()
            .all(|id| la.contains(id as usize) && lb.contains(id as usize)));
    }

    /// Unioning lists of mixed storage tiers (plus loose single inserts)
    /// through `RowSetAccumulator` matches a `BTreeSet` model, and the
    /// produced `PostingList` is equal (and hash-equal) to a canonical
    /// rebuild — pinning the per-tier fast paths in `insert_all` and the
    /// dense word-adoption in `into_posting_list`.
    #[test]
    fn accumulator_union_matches_model(
        seeds in proptest::collection::vec(any_tier_seed(), 1..5),
        loose in proptest::collection::vec(boundary_biased_id(), 0..120),
    ) {
        let mut acc = RowSetAccumulator::new(UNIVERSE);
        let mut model: BTreeSet<u32> = BTreeSet::new();
        for seed in &seeds {
            let list = PostingList::from_sorted(seed.iter().copied().collect(), UNIVERSE);
            acc.insert_all(&list);
            model.extend(seed.iter().copied());
            prop_assert_eq!(acc.len(), model.len());
        }
        for &id in &loose {
            acc.insert(id as usize);
            model.insert(id);
        }
        prop_assert_eq!(acc.len(), model.len());
        let got = acc.into_posting_list();
        prop_assert_eq!(got.to_vec(), model.iter().copied().collect::<Vec<u32>>());
        let rebuilt = PostingList::from_sorted(model.iter().copied().collect(), UNIVERSE);
        prop_assert_eq!(&got, &rebuilt);
        prop_assert_eq!(hash_of(&got), hash_of(&rebuilt));
    }

    /// A blocked list decoded through the zero-copy path (payload aliasing
    /// the encoded buffer at a nonzero base offset) is indistinguishable
    /// from its owned twin: equal, hash-equal, re-encodes byte-identically,
    /// and — after edits force the copy-on-write detach — still agrees with
    /// the `BTreeSet` model and a canonical rebuild.
    #[test]
    fn shared_payload_decode_is_equivalent_to_owned(
        seed in blocked_seed(),
        script in edit_script(),
    ) {
        let owned = PostingList::from_sorted(seed.iter().copied().collect(), UNIVERSE);
        prop_assert!(owned.is_blocked_repr());
        let mut reference = Vec::new();
        encode_postings(&mut reference, &owned);

        // Nonzero leading padding: decode offsets must be relative to the
        // wire position, not the buffer start.
        const BASE: usize = 11;
        let mut bytes = vec![0xA5u8; BASE];
        bytes.extend_from_slice(&reference);
        let buf = SharedBytes::from_vec(bytes);
        let mut cur = Cursor::new(&buf[BASE..]);
        let mut shared = decode_postings_shared(&mut cur, &buf, BASE).unwrap();
        prop_assert!(cur.is_empty());
        prop_assert!(shared.is_shared_payload());
        prop_assert_eq!(&shared, &owned);
        prop_assert_eq!(hash_of(&shared), hash_of(&owned));

        let mut re = Vec::new();
        encode_postings(&mut re, &shared);
        prop_assert_eq!(re, reference);

        // Edits detach the aliased payload; the explicit block extents must
        // keep every splice exact.
        let mut model = seed.clone();
        for op in script {
            match op {
                EditOp::Insert(id) => {
                    prop_assert_eq!(shared.insert(id as usize), model.insert(id));
                }
                EditOp::Remove(id) => {
                    prop_assert_eq!(shared.remove(id as usize), model.remove(&id));
                }
            }
        }
        prop_assert_eq!(shared.to_vec(), model.iter().copied().collect::<Vec<u32>>());
        let rebuilt = PostingList::from_sorted(model.iter().copied().collect(), UNIVERSE);
        prop_assert_eq!(&shared, &rebuilt);
        prop_assert_eq!(hash_of(&shared), hash_of(&rebuilt));
    }
}
