//! Memory-budget guard for block-compressed posting lists.
//!
//! `docs/BENCHMARKS.md` documents a ≤ 2 bytes/row budget for sparse
//! million-row posting lists (delta-gap LEB128 payload + 16-byte skip
//! entries per 128-id block, against 4 bytes/id for the plain sorted tier).
//! This test pins that budget so a codec or threshold regression fails CI
//! instead of silently doubling index memory.

use pfd_relation::PostingList;

const ROWS: usize = 1_000_000;

#[test]
fn million_row_sparse_postings_stay_under_two_bytes_per_row() {
    // Stride-20 ids: sparse enough to dodge the dense-bitset tier (which
    // engages at 1/16 density) and every gap fits one varint byte — the
    // common shape for a selective fragment posting over a large relation.
    let ids: Vec<u32> = (0..ROWS as u32).map(|i| i * 20).collect();
    let universe = ROWS * 20;
    let list = PostingList::from_sorted(ids, universe);
    assert!(list.is_blocked_repr(), "sparse 1M-row list must be blocked");
    assert_eq!(list.len(), ROWS);

    let per_row = list.heap_bytes() as f64 / ROWS as f64;
    assert!(
        per_row <= 2.0,
        "blocked postings exceed the documented budget: {per_row:.3} bytes/row"
    );
    // And the headline claim: at least 2x under the 4 bytes/id plain tier.
    assert!(list.heap_bytes() * 2 <= ROWS * 4);
}

#[test]
fn irregular_sparse_gaps_also_hold_the_budget() {
    // Deterministic LCG gaps in 1..=120: irregular but still one varint
    // byte each, like a posting produced by real value clustering.
    let mut state = 0x2545F4914F6CDD1Du64;
    let mut next_gap = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) % 120 + 1) as u32
    };
    let mut ids = Vec::with_capacity(ROWS);
    let mut id = 0u32;
    for _ in 0..ROWS {
        id += next_gap();
        ids.push(id);
    }
    let universe = id as usize + 1;
    let list = PostingList::from_sorted(ids, universe);
    assert!(list.is_blocked_repr());
    let per_row = list.heap_bytes() as f64 / ROWS as f64;
    assert!(
        per_row <= 2.0,
        "irregular sparse postings exceed the budget: {per_row:.3} bytes/row"
    );
}
