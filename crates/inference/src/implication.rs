//! Implication analysis (§3.1, Theorem 2).
//!
//! `Ψ ⊨ ψ` iff every instance satisfying Ψ satisfies ψ. By Theorem 1 the
//! axiom system — equivalently the PFD-closure of Fig. 7 — decides logical
//! implication; [`implies`] is the closure-based decision procedure. The
//! problem is coNP-complete (Theorem 2); the closure's inconsistency side
//! conditions are where the hardness lives, each an NP consistency query.
//!
//! [`refute_implication`] is the complementary *bounded counterexample
//! search* from the Theorem 2 proof: guess a two-tuple instance over the
//! symbolic alphabet with per-attribute lengths bounded by the summed
//! pattern lengths, and check `Is ⊨ Ψ ∧ Is ⊭ ψ` with the real semantics.
//! We use it in tests to cross-validate the closure.

use crate::clause::{clauses_of, Clause};
use crate::closure::{pfd_closure, ClosureConfig};
use crate::consistency::{check_consistency_with, Consistency, Requirement};
use pfd_core::{Pfd, TableauCell};
use pfd_pattern::{satisfiable_signatures, Pattern};
use pfd_relation::{AttrId, Relation};
use std::collections::BTreeMap;

/// Closure-based implication: does Ψ imply ψ over a schema of `arity`
/// attributes?
pub fn implies(sigma: &[Pfd], psi: &Pfd, arity: usize) -> bool {
    let config = ClosureConfig::default();
    clauses_of(std::slice::from_ref(psi))
        .iter()
        .all(|clause| clause_implied(sigma, clause, arity, &config))
}

fn clause_implied(sigma: &[Pfd], clause: &Clause, arity: usize, config: &ClosureConfig) -> bool {
    let closure = pfd_closure(sigma, arity, &clause.lhs, config);
    if let Some(derived) = closure.get(&clause.rhs.0) {
        if derived.is_restriction_of(&clause.rhs.1) {
            return true;
        }
    }
    // Inconsistency-EFQ: if Ψ admits *no* tuple matching the clause's LHS
    // patterns (e.g. Ψ forces contradictory RHS constants for that premise),
    // the clause holds vacuously on every instance satisfying Ψ.
    if !config.use_inconsistency_condition {
        return false;
    }
    let requirements: Vec<Requirement> = clause
        .lhs
        .iter()
        .filter_map(|(a, cell)| match cell {
            TableauCell::Wildcard => None,
            TableauCell::Pattern(p) => Some(Requirement {
                attr: *a,
                must: vec![p.full_pattern()],
                ..Requirement::default()
            }),
        })
        .collect();
    !requirements.is_empty()
        && matches!(
            check_consistency_with(sigma, arity, &requirements, config.state_limit),
            Consistency::Inconsistent
        )
}

/// Candidate value pools per attribute for the bounded refutation search:
/// witnesses of every satisfiable membership signature, plus one same-class
/// variant per witness (so that pairs with equal pattern behaviour but
/// different extractions exist), plus the empty string.
fn value_pools(sigma: &[Pfd], psi: &Pfd, arity: usize, state_limit: usize) -> Vec<Vec<String>> {
    let mut per_attr: BTreeMap<AttrId, Vec<Pattern>> = BTreeMap::new();
    let mut all: Vec<&Pfd> = sigma.iter().collect();
    all.push(psi);
    let mut literals: Vec<char> = Vec::new();
    for pfd in &all {
        for clause in clauses_of(std::slice::from_ref(*pfd)) {
            for (a, cell) in clause.lhs.iter().chain(std::iter::once(&clause.rhs)) {
                if let TableauCell::Pattern(p) = cell {
                    let full = p.full_pattern();
                    // Track literal chars to avoid variants colliding with
                    // mentioned constants.
                    collect_literal_chars(&full, &mut literals);
                    let pats = per_attr.entry(*a).or_default();
                    if !pats.contains(&full) {
                        pats.push(full);
                    }
                }
            }
        }
    }

    // Seed every pool with the empty string and two generic distinct values
    // so that wildcard-only (plain FD) cells still get agree/disagree pairs.
    let mut pools: Vec<Vec<String>> = vec![vec![String::new(), "0".into(), "1".into()]; arity];
    for (attr, pats) in per_attr {
        if attr.index() >= arity {
            continue;
        }
        let refs: Vec<&Pattern> = pats.iter().collect();
        let Some(sigs) = satisfiable_signatures(&refs, state_limit) else {
            continue;
        };
        let pool = &mut pools[attr.index()];
        for (_, witness) in sigs {
            if !pool.contains(&witness) {
                pool.push(witness.clone());
            }
            if let Some(variant) = same_class_variant(&witness, &literals) {
                if !pool.contains(&variant) {
                    pool.push(variant);
                }
            }
        }
    }
    pools
}

fn collect_literal_chars(p: &Pattern, out: &mut Vec<char>) {
    use pfd_pattern::Atom;
    fn walk(atom: &Atom, out: &mut Vec<char>) {
        match atom {
            Atom::Literal(c) => {
                if !out.contains(c) {
                    out.push(*c);
                }
            }
            Atom::And(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            Atom::Group(elements) => {
                for e in elements {
                    walk(&e.atom, out);
                }
            }
            Atom::Class(_) => {}
        }
    }
    for e in p.elements() {
        walk(&e.atom, out);
    }
}

/// Replace each non-literal character with a different character of the same
/// class (staying off the mentioned literals keeps the membership signature
/// identical while changing the string — and hence possibly the extraction).
fn same_class_variant(s: &str, literals: &[char]) -> Option<String> {
    let mut changed = false;
    let out: String = s
        .chars()
        .map(|c| {
            if literals.contains(&c) {
                return c;
            }
            let class = pfd_pattern::CharClass::of_char(c);
            let mut exclude = literals.to_vec();
            exclude.push(c);
            match class.representative(&exclude) {
                Some(r) => {
                    changed = true;
                    r
                }
                None => c,
            }
        })
        .collect();
    if changed {
        Some(out)
    } else {
        None
    }
}

/// Bounded two-tuple counterexample search (the NP algorithm in the proof of
/// Theorem 2). Returns a two-row instance `Is` with `Is ⊨ Ψ` and `Is ⊭ ψ`,
/// or `None` if none exists within the budget. Sound but not complete: a
/// `None` does not prove implication (use [`implies`] for that).
pub fn refute_implication(
    sigma: &[Pfd],
    psi: &Pfd,
    arity: usize,
    budget: usize,
) -> Option<Relation> {
    let pools = value_pools(sigma, psi, arity, 100_000);
    let names: Vec<String> = (0..arity).map(|i| format!("a{i}")).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();

    // Enumerate pairs of tuples over the pools (odometer-style), capped.
    let mut checked = 0usize;
    let mut odo1 = vec![0usize; arity];
    loop {
        let t1: Vec<&str> = odo1
            .iter()
            .enumerate()
            .map(|(i, &j)| pools[i][j].as_str())
            .collect();
        let mut odo2 = vec![0usize; arity];
        loop {
            let t2: Vec<&str> = odo2
                .iter()
                .enumerate()
                .map(|(i, &j)| pools[i][j].as_str())
                .collect();
            checked += 1;
            if checked > budget {
                return None;
            }
            let rel = Relation::from_rows("R", &name_refs, vec![t1.clone(), t2.clone()])
                .expect("pool tuples have schema arity");
            if !psi.satisfies(&rel) && sigma.iter().all(|p| p.satisfies(&rel)) {
                return Some(rel);
            }
            if !advance(&mut odo2, &pools) {
                break;
            }
        }
        if !advance(&mut odo1, &pools) {
            return None;
        }
    }
}

fn advance(odo: &mut [usize], pools: &[Vec<String>]) -> bool {
    for i in 0..odo.len() {
        odo[i] += 1;
        if odo[i] < pools[i].len() {
            return true;
        }
        odo[i] = 0;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfd_relation::Schema;

    fn schema3() -> Schema {
        Schema::new("R", ["a", "b", "c"]).unwrap()
    }

    #[test]
    fn transitivity_is_implied() {
        let s = schema3();
        let sigma = vec![
            Pfd::constant_normal_form("R", &s, "a", r"[900]\D{2}", "b", "LA").unwrap(),
            Pfd::constant_normal_form("R", &s, "b", "LA", "c", "CA").unwrap(),
        ];
        let psi = Pfd::constant_normal_form("R", &s, "a", r"[900]\D{2}", "c", "CA").unwrap();
        assert!(implies(&sigma, &psi, 3));
    }

    #[test]
    fn unrelated_is_not_implied() {
        let s = schema3();
        let sigma =
            vec![Pfd::constant_normal_form("R", &s, "a", r"[900]\D{2}", "b", "LA").unwrap()];
        let psi = Pfd::constant_normal_form("R", &s, "a", r"[900]\D{2}", "c", "CA").unwrap();
        assert!(!implies(&sigma, &psi, 3));
        // And the bounded refuter finds a model separating them.
        let refutation = refute_implication(&sigma, &psi, 3, 100_000);
        assert!(refutation.is_some(), "expected a counterexample instance");
    }

    #[test]
    fn reflexivity_is_implied_from_nothing() {
        // R(a → a) with the LHS pattern a restriction of the RHS pattern.
        let s = schema3();
        let psi =
            Pfd::normal_form("R", &s, &[("a", r"[John]\A*")], ("a", r"[\LU\LL*]\A*")).unwrap();
        assert!(implies(&[], &psi, 3));
    }

    #[test]
    fn widening_the_rhs_is_implied() {
        // a → b with RHS 900\D{2} implies a → b with RHS \D{5} (a looser
        // pattern containing it).
        let s = schema3();
        let sigma = vec![Pfd::constant_normal_form("R", &s, "a", "x", "b", r"900\D{2}").unwrap()];
        let wider = Pfd::constant_normal_form("R", &s, "a", "x", "b", r"\D{5}").unwrap();
        assert!(implies(&sigma, &wider, 3));
        // The converse does not hold.
        let sigma2 = vec![Pfd::constant_normal_form("R", &s, "a", "x", "b", r"\D{5}").unwrap()];
        let tighter = Pfd::constant_normal_form("R", &s, "a", "x", "b", r"900\D{2}").unwrap();
        assert!(!implies(&sigma2, &tighter, 3));
    }

    #[test]
    fn tighter_premise_is_implied() {
        // Ψ: [\D{3}]\D{2} → ⊥ (any 3-digit prefix determines b). ψ with the
        // tighter premise [900]\D{2} is implied.
        let s = schema3();
        let sigma =
            vec![Pfd::constant_normal_form("R", &s, "a", r"[\D{3}]\D{2}", "b", "_").unwrap()];
        let psi = Pfd::constant_normal_form("R", &s, "a", r"[900]\D{2}", "b", "_").unwrap();
        assert!(implies(&sigma, &psi, 3));
        // The converse (generalizing the premise) is not implied.
        let sigma2 =
            vec![Pfd::constant_normal_form("R", &s, "a", r"[900]\D{2}", "b", "_").unwrap()];
        let psi2 = Pfd::constant_normal_form("R", &s, "a", r"[\D{3}]\D{2}", "b", "_").unwrap();
        assert!(!implies(&sigma2, &psi2, 3));
    }

    #[test]
    fn refuter_agrees_with_closure_on_samples() {
        let s = schema3();
        let cases: Vec<(Vec<Pfd>, Pfd)> = vec![
            (
                vec![Pfd::fd("R", &s, &["a"], &["b"]).unwrap()],
                Pfd::fd("R", &s, &["a"], &["c"]).unwrap(),
            ),
            (
                vec![
                    Pfd::fd("R", &s, &["a"], &["b"]).unwrap(),
                    Pfd::fd("R", &s, &["b"], &["c"]).unwrap(),
                ],
                Pfd::fd("R", &s, &["a"], &["c"]).unwrap(),
            ),
            (
                vec![Pfd::constant_normal_form("R", &s, "a", r"[900]\D{2}", "b", "LA").unwrap()],
                Pfd::constant_normal_form("R", &s, "a", r"[900]\D{2}", "b", "NY").unwrap(),
            ),
        ];
        for (sigma, psi) in cases {
            let implied = implies(&sigma, &psi, 3);
            let refuted = refute_implication(&sigma, &psi, 3, 200_000).is_some();
            assert!(
                implied != refuted,
                "closure and refuter must agree: implied={implied} refuted={refuted} ψ={psi}"
            );
        }
    }

    #[test]
    fn vacuous_premise_implies_anything() {
        // Ψ forces b = x and b = y whenever a = 90: no tuple can have
        // a = 90, so any PFD with that premise holds vacuously
        // (Inconsistency-EFQ).
        let s = schema3();
        let sigma = vec![
            Pfd::constant_normal_form("R", &s, "a", "90", "b", "x").unwrap(),
            Pfd::constant_normal_form("R", &s, "a", "90", "b", "y").unwrap(),
        ];
        let anything = Pfd::constant_normal_form("R", &s, "a", "90", "c", "whatever").unwrap();
        assert!(implies(&sigma, &anything, 3));
        // …and members of Ψ are implied too.
        for psi in &sigma {
            assert!(implies(&sigma, psi, 3));
        }
        // But a different premise is not implied.
        let other = Pfd::constant_normal_form("R", &s, "a", "91", "c", "whatever").unwrap();
        assert!(!implies(&sigma, &other, 3));
    }

    #[test]
    fn refutation_instance_is_a_real_counterexample() {
        let s = schema3();
        let sigma = vec![Pfd::fd("R", &s, &["a"], &["b"]).unwrap()];
        let psi = Pfd::fd("R", &s, &["b"], &["a"]).unwrap();
        let rel = refute_implication(&sigma, &psi, 3, 200_000).expect("refutable");
        assert!(sigma.iter().all(|p| p.satisfies(&rel)));
        assert!(!psi.satisfies(&rel));
    }
}
