//! The NP-hardness reduction of Theorem 3 (§7.3): nontautology of a DNF
//! formula encoded as PFD consistency.
//!
//! Given `φ = C1 ∨ … ∨ Cn` over variables `x1 … xm`, build relation
//! `R(X1, …, Xm, C)` and PFDs:
//!
//! - for each clause `Cj`: `ψj = R(X1…Xm → C, tj)` with `tj[C] = \D+\LU*`,
//!   `tj[Xi] = \D+\LU*` if `xi ∈ Cj`, `tj[Xi] = \LU+\D*` if `x̄i ∈ Cj`,
//!   wildcard otherwise;
//! - `ψn+1 = R(C → C, t)` with `t[C_L] = \D+\LU*`, `t[C_R] = \LU+\D*` —
//!   unsatisfiable together with a digit-leading `C`, i.e. `C` must never
//!   start with digits.
//!
//! A tuple encodes the assignment `µ(xi) = true` iff `t[Xi]` starts with
//! digits. The paper restricts attribute domains to digit/letter strings;
//! we express that domain restriction with disjunctive
//! [`Requirement`]s (`any_of = {\D+\LU*, \LU+\D*}`). Then Ψ is consistent
//! iff φ is **not** a tautology.

use crate::consistency::{check_consistency_with, Consistency, Requirement, DEFAULT_STATE_LIMIT};
use pfd_core::{Pfd, TableauCell, TableauRow};
use pfd_pattern::{parse_pattern, ConstrainedPattern, Pattern};
use pfd_relation::AttrId;

/// A literal: variable index (0-based) and polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Literal {
    /// 0-based variable index.
    pub var: usize,
    /// `true` for `x`, `false` for `x̄`.
    pub positive: bool,
}

impl Literal {
    /// The positive literal `x_var`.
    pub fn pos(var: usize) -> Literal {
        Literal {
            var,
            positive: true,
        }
    }

    /// The negative literal `x̄_var`.
    pub fn neg(var: usize) -> Literal {
        Literal {
            var,
            positive: false,
        }
    }
}

/// A DNF formula: disjunction of conjunctive clauses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dnf {
    /// Number of variables `x_0 … x_{n-1}`.
    pub num_vars: usize,
    /// The conjunctive clauses.
    pub clauses: Vec<Vec<Literal>>,
}

impl Dnf {
    /// Evaluate under an assignment (index = variable).
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses
            .iter()
            .any(|clause| clause.iter().all(|l| assignment[l.var] == l.positive))
    }

    /// Brute-force tautology check (for testing the reduction).
    pub fn is_tautology(&self) -> bool {
        let m = self.num_vars;
        (0..(1usize << m)).all(|bits| {
            let assignment: Vec<bool> = (0..m).map(|i| bits >> i & 1 == 1).collect();
            self.eval(&assignment)
        })
    }
}

fn true_pattern() -> Pattern {
    parse_pattern(r"\D+\LU*").expect("static pattern")
}

fn false_pattern() -> Pattern {
    parse_pattern(r"\LU+\D*").expect("static pattern")
}

fn cell(p: Pattern) -> TableauCell {
    TableauCell::Pattern(ConstrainedPattern::fully_constrained(p))
}

/// The encoded instance: PFDs plus the domain-restricting requirements.
#[derive(Debug, Clone)]
pub struct EncodedInstance {
    /// The PFDs ψ_1 … ψ_{n+1} of the reduction.
    pub pfds: Vec<Pfd>,
    /// Domain restrictions forcing each X_i to encode a truth value.
    pub requirements: Vec<Requirement>,
    /// Arity of R: num_vars + 1 (the C attribute is last).
    pub arity: usize,
}

/// Encode nontautology of `φ` as PFD consistency (§7.3).
pub fn encode_nontautology(phi: &Dnf) -> EncodedInstance {
    let m = phi.num_vars;
    let c_attr = AttrId(m);
    let x_attrs: Vec<AttrId> = (0..m).map(AttrId).collect();

    let mut pfds = Vec::with_capacity(phi.clauses.len() + 1);
    for clause in &phi.clauses {
        let lhs_cells: Vec<TableauCell> = (0..m)
            .map(|i| match clause.iter().find(|l| l.var == i) {
                Some(l) if l.positive => cell(true_pattern()),
                Some(_) => cell(false_pattern()),
                None => TableauCell::Wildcard,
            })
            .collect();
        let row = TableauRow::new(lhs_cells, vec![cell(true_pattern())]);
        pfds.push(
            Pfd::new("R", x_attrs.clone(), vec![c_attr], vec![row])
                .expect("encoding is well-formed"),
        );
    }
    // ψn+1: C → C forbidding digit-leading C. The LHS cell must be a
    // restriction of the RHS cell for overlapping attributes, which
    // \D+\LU* vs \LU+\D* is not — so encode as C → C via the single-tuple
    // semantics using a fresh auxiliary formulation: LHS on *all* X
    // attributes as wildcards, RHS constrains C.
    //
    // Semantically: every tuple matches the all-wildcard LHS, so C must
    // match \LU+\D* — equivalently C cannot start with digits, which is
    // exactly what ψn+1 enforces on digit-leading C values.
    {
        let row = TableauRow::new(vec![TableauCell::Wildcard; m], vec![cell(false_pattern())]);
        pfds.push(
            Pfd::new("R", x_attrs.clone(), vec![c_attr], vec![row])
                .expect("encoding is well-formed"),
        );
    }

    // Domain restriction: every Xi is a truth value.
    let requirements: Vec<Requirement> = (0..m)
        .map(|i| Requirement {
            attr: AttrId(i),
            any_of: vec![true_pattern(), false_pattern()],
            ..Requirement::default()
        })
        .collect();

    EncodedInstance {
        pfds,
        requirements,
        arity: m + 1,
    }
}

/// Decide nontautology through the PFD consistency checker.
pub fn is_nontautology_via_pfds(phi: &Dnf) -> Option<bool> {
    let inst = encode_nontautology(phi);
    match check_consistency_with(
        &inst.pfds,
        inst.arity,
        &inst.requirements,
        DEFAULT_STATE_LIMIT,
    ) {
        Consistency::Consistent(_) => Some(true),
        Consistency::Inconsistent => Some(false),
        Consistency::Unknown => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tautology_x_or_not_x() {
        let phi = Dnf {
            num_vars: 1,
            clauses: vec![vec![Literal::pos(0)], vec![Literal::neg(0)]],
        };
        assert!(phi.is_tautology());
        assert_eq!(is_nontautology_via_pfds(&phi), Some(false));
    }

    #[test]
    fn non_tautology_single_clause() {
        let phi = Dnf {
            num_vars: 2,
            clauses: vec![vec![Literal::pos(0), Literal::pos(1)]],
        };
        assert!(!phi.is_tautology());
        assert_eq!(is_nontautology_via_pfds(&phi), Some(true));
    }

    #[test]
    fn three_literal_clauses_like_the_paper() {
        // (x1∧x2∧x3) ∨ (¬x1∧x2∧¬x3): false e.g. under x1=T,x2=F.
        let phi = Dnf {
            num_vars: 3,
            clauses: vec![
                vec![Literal::pos(0), Literal::pos(1), Literal::pos(2)],
                vec![Literal::neg(0), Literal::pos(1), Literal::neg(2)],
            ],
        };
        assert!(!phi.is_tautology());
        assert_eq!(is_nontautology_via_pfds(&phi), Some(true));
    }

    #[test]
    fn covering_pair_of_clauses_is_tautology() {
        // (x1) ∨ (¬x1∧x2) ∨ (¬x1∧¬x2) covers all assignments.
        let phi = Dnf {
            num_vars: 2,
            clauses: vec![
                vec![Literal::pos(0)],
                vec![Literal::neg(0), Literal::pos(1)],
                vec![Literal::neg(0), Literal::neg(1)],
            ],
        };
        assert!(phi.is_tautology());
        assert_eq!(is_nontautology_via_pfds(&phi), Some(false));
    }

    #[test]
    fn reduction_agrees_with_brute_force_on_random_formulas() {
        // Deterministic pseudo-random sweep over small formulas.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..12 {
            let num_vars = 2 + (next() % 2) as usize; // 2..=3
            let num_clauses = 1 + (next() % 3) as usize; // 1..=3
            let mut clauses: Vec<Vec<Literal>> = Vec::new();
            for _ in 0..num_clauses {
                let mut clause = Vec::new();
                for v in 0..num_vars {
                    if next() % 2 == 0 {
                        clause.push(Literal {
                            var: v,
                            positive: next() % 2 == 0,
                        });
                    }
                }
                if clause.is_empty() {
                    clause.push(Literal::pos(0));
                }
                clauses.push(clause);
            }
            let phi = Dnf { num_vars, clauses };
            let expected = !phi.is_tautology();
            assert_eq!(
                is_nontautology_via_pfds(&phi),
                Some(expected),
                "formula {phi:?}"
            );
        }
    }
}
