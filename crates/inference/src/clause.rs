//! Normal-form PFD clauses.
//!
//! §3.1: "given a PFD ψ : R(X → Y, Tp), since tuples in Tp are independent
//! from each other, it is sufficient to reason about R(X → Y, tp) for each
//! tp ∈ Tp". Reasoning therefore works on **clauses**: single-tableau-row,
//! single-RHS-attribute PFDs. [`clauses_of`] performs both decompositions.

use pfd_core::{Pfd, TableauCell};
use pfd_relation::AttrId;
use std::fmt;

/// A single-row, single-RHS-attribute PFD: `R(X → A, tp)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Clause {
    /// LHS attributes with their tableau cells, sorted by attribute id.
    pub lhs: Vec<(AttrId, TableauCell)>,
    /// The RHS attribute and its cell.
    pub rhs: (AttrId, TableauCell),
}

impl Clause {
    /// Build a clause; the LHS is sorted by attribute for canonical form.
    pub fn new(mut lhs: Vec<(AttrId, TableauCell)>, rhs: (AttrId, TableauCell)) -> Clause {
        lhs.sort_by_key(|(a, _)| *a);
        Clause { lhs, rhs }
    }

    /// The cell for attribute `a` on the LHS, if present.
    pub fn lhs_cell(&self, a: AttrId) -> Option<&TableauCell> {
        self.lhs.iter().find(|(attr, _)| *attr == a).map(|(_, c)| c)
    }

    /// LHS attribute ids.
    pub fn lhs_attrs(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.lhs.iter().map(|(a, _)| *a)
    }

    /// Is the clause trivial (`A ∈ X`)?
    pub fn is_trivial(&self) -> bool {
        self.lhs_cell(self.rhs.0).is_some()
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let lhs: Vec<String> = self.lhs.iter().map(|(a, c)| format!("{a} = {c}")).collect();
        write!(
            f,
            "([{}] → [{} = {}])",
            lhs.join(", "),
            self.rhs.0,
            self.rhs.1
        )
    }
}

/// Decompose a set of PFDs into clauses (per tableau row, per RHS attribute).
pub fn clauses_of(sigma: &[Pfd]) -> Vec<Clause> {
    let mut out = Vec::new();
    for pfd in sigma {
        for row in pfd.tableau() {
            for (j, b) in pfd.rhs().iter().enumerate() {
                let lhs = pfd
                    .lhs()
                    .iter()
                    .zip(&row.lhs)
                    .map(|(a, c)| (*a, c.clone()))
                    .collect();
                out.push(Clause::new(lhs, (*b, row.rhs[j].clone())));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfd_core::TableauRow;
    use pfd_relation::Schema;

    fn schema() -> Schema {
        Schema::new("R", ["a", "b", "c"]).unwrap()
    }

    #[test]
    fn decompose_multi_row_multi_rhs() {
        let s = schema();
        let mut pfd = Pfd::fd("R", &s, &["a"], &["b", "c"]).unwrap();
        pfd.add_row(TableauRow::parse(&["x"], &["y", "z"]).unwrap())
            .unwrap();
        let clauses = clauses_of(std::slice::from_ref(&pfd));
        // 2 rows × 2 RHS attrs = 4 clauses.
        assert_eq!(clauses.len(), 4);
        assert!(clauses.iter().all(|c| c.lhs.len() == 1));
    }

    #[test]
    fn lhs_is_sorted_canonically() {
        let w = TableauCell::Wildcard;
        let c = Clause::new(
            vec![(AttrId(2), w.clone()), (AttrId(0), w.clone())],
            (AttrId(1), w),
        );
        let attrs: Vec<AttrId> = c.lhs_attrs().collect();
        assert_eq!(attrs, vec![AttrId(0), AttrId(2)]);
    }

    #[test]
    fn trivial_detection() {
        let w = TableauCell::Wildcard;
        let c = Clause::new(vec![(AttrId(0), w.clone())], (AttrId(0), w.clone()));
        assert!(c.is_trivial());
        let d = Clause::new(vec![(AttrId(0), w.clone())], (AttrId(1), w));
        assert!(!d.is_trivial());
    }

    #[test]
    fn lhs_cell_lookup() {
        let s = schema();
        let pfd = Pfd::normal_form("R", &s, &[("a", r"[900]\D{2}")], ("b", "M")).unwrap();
        let clauses = clauses_of(std::slice::from_ref(&pfd));
        assert_eq!(clauses.len(), 1);
        let c = &clauses[0];
        assert!(c.lhs_cell(AttrId(0)).is_some());
        assert!(c.lhs_cell(AttrId(2)).is_none());
    }
}
