//! Consistency analysis (§3.2, Theorem 3, proof in §7.3).
//!
//! A set Ψ of PFDs is **consistent** when some non-empty instance satisfies
//! it. The paper's small-model property (§7.3) shows a single tuple suffices,
//! with per-attribute value length bounded by the summed pattern lengths —
//! which makes the search NP (and it is NP-hard even over infinite domains).
//!
//! Our decision procedure follows the small-model argument directly, but
//! replaces blind string enumeration with **membership signatures**: a
//! tuple's behaviour w.r.t. Ψ is fully determined by which of the mentioned
//! patterns each attribute value matches, so we (1) enumerate the satisfiable
//! signatures per attribute via
//! [`pfd_pattern::satisfiable_signatures`], then (2) backtrack over
//! signature choices checking every clause `X → A`: if all LHS cells are
//! matched, the RHS cell must be matched (the single-tuple degenerate case of
//! the pair semantics).

use crate::clause::{clauses_of, Clause};
use pfd_core::{Pfd, TableauCell};
use pfd_pattern::{satisfiable_signatures, Pattern};
use pfd_relation::AttrId;
use std::collections::BTreeMap;

/// Result of a consistency check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Consistency {
    /// A witness tuple (one value per attribute, indexed by `AttrId`).
    Consistent(Vec<String>),
    /// No single-tuple model exists (hence no non-empty instance).
    Inconsistent,
    /// The signature enumeration exceeded its state budget.
    Unknown,
}

impl Consistency {
    /// Did the search find a witness?
    pub fn is_consistent(&self) -> bool {
        matches!(self, Consistency::Consistent(_))
    }
}

/// An extra requirement threaded into the search: attribute `attr` must
/// match all of `must` and none of `must_not`. Used by the closure
/// algorithm's Inconsistency-EFQ side condition (Fig. 7, condition a.ii).
#[derive(Debug, Clone, Default)]
pub struct Requirement {
    /// The constrained attribute.
    pub attr: AttrId,
    /// Patterns the attribute's value must match.
    pub must: Vec<Pattern>,
    /// Patterns the attribute's value must not match.
    pub must_not: Vec<Pattern>,
    /// At least one of these must match (disjunctive domain restriction —
    /// how §7.3's reduction restricts attribute domains).
    pub any_of: Vec<Pattern>,
}

/// Default exploration budget for the per-attribute signature search.
pub const DEFAULT_STATE_LIMIT: usize = 200_000;

/// The full pattern of a cell, `None` for the wildcard (always matches).
fn cell_full_pattern(cell: &TableauCell) -> Option<Pattern> {
    match cell {
        TableauCell::Wildcard => None,
        TableauCell::Pattern(p) => Some(p.full_pattern()),
    }
}

struct AttrSpace {
    /// Distinct patterns mentioned on this attribute.
    patterns: Vec<Pattern>,
    /// Satisfiable signatures with witnesses (filtered by requirements).
    options: Vec<(Vec<bool>, String)>,
}

/// Check consistency of Ψ over a schema of `arity` attributes.
pub fn check_consistency(sigma: &[Pfd], arity: usize) -> Consistency {
    check_consistency_with(sigma, arity, &[], DEFAULT_STATE_LIMIT)
}

/// Consistency with extra per-attribute requirements and a state budget.
pub fn check_consistency_with(
    sigma: &[Pfd],
    arity: usize,
    requirements: &[Requirement],
    state_limit: usize,
) -> Consistency {
    let clauses = clauses_of(sigma);

    // Collect the distinct patterns mentioned per attribute (cells of Ψ and
    // requirement patterns).
    let mut per_attr: BTreeMap<AttrId, Vec<Pattern>> = BTreeMap::new();
    let mut add = |attr: AttrId, p: Option<Pattern>| {
        if let Some(p) = p {
            let pats = per_attr.entry(attr).or_default();
            if !pats.contains(&p) {
                pats.push(p);
            }
        }
    };
    for c in &clauses {
        for (a, cell) in &c.lhs {
            add(*a, cell_full_pattern(cell));
        }
        add(c.rhs.0, cell_full_pattern(&c.rhs.1));
    }
    for r in requirements {
        for p in r.must.iter().chain(&r.must_not).chain(&r.any_of) {
            add(r.attr, Some(p.clone()));
        }
    }

    // Enumerate satisfiable signatures per mentioned attribute.
    let mut spaces: BTreeMap<AttrId, AttrSpace> = BTreeMap::new();
    for (attr, patterns) in per_attr {
        let refs: Vec<&Pattern> = patterns.iter().collect();
        let Some(mut options) = satisfiable_signatures(&refs, state_limit) else {
            return Consistency::Unknown;
        };
        // Apply requirements as signature filters.
        for r in requirements.iter().filter(|r| r.attr == attr) {
            options.retain(|(sig, _)| {
                let bit = |p: &Pattern| patterns.iter().position(|q| q == p);
                r.must.iter().all(|p| bit(p).is_some_and(|i| sig[i]))
                    && r.must_not.iter().all(|p| bit(p).is_some_and(|i| !sig[i]))
                    && (r.any_of.is_empty()
                        || r.any_of.iter().any(|p| bit(p).is_some_and(|i| sig[i])))
            });
        }
        if options.is_empty() {
            return Consistency::Inconsistent;
        }
        spaces.insert(attr, AttrSpace { patterns, options });
    }

    // Backtracking over signature choices.
    let attrs: Vec<AttrId> = spaces.keys().copied().collect();
    let mut choice: BTreeMap<AttrId, usize> = BTreeMap::new();

    // Is `cell` on `attr` matched under the current (partial) assignment?
    // `None` = not yet decided.
    let matched = |spaces: &BTreeMap<AttrId, AttrSpace>,
                   choice: &BTreeMap<AttrId, usize>,
                   attr: AttrId,
                   cell: &TableauCell|
     -> Option<bool> {
        let Some(p) = cell_full_pattern(cell) else {
            return Some(true); // wildcard
        };
        let space = spaces.get(&attr)?;
        let idx = *choice.get(&attr)?;
        let bit = space.patterns.iter().position(|q| *q == p)?;
        Some(space.options[idx].0[bit])
    };

    // A clause is violated under a complete-enough assignment when all LHS
    // cells are matched but the RHS cell is not.
    let clause_ok = |spaces: &BTreeMap<AttrId, AttrSpace>,
                     choice: &BTreeMap<AttrId, usize>,
                     c: &Clause|
     -> bool {
        let mut all_lhs_matched = true;
        for (a, cell) in &c.lhs {
            match matched(spaces, choice, *a, cell) {
                Some(true) => {}
                Some(false) => return true, // LHS not matched: clause idle
                None => {
                    all_lhs_matched = false;
                }
            }
        }
        if !all_lhs_matched {
            return true; // undecided: cannot be violated yet
        }
        // None = RHS attr not yet assigned: cannot be violated yet.
        matched(spaces, choice, c.rhs.0, &c.rhs.1).unwrap_or(true)
    };

    type ClauseCheck<'a> =
        &'a dyn Fn(&BTreeMap<AttrId, AttrSpace>, &BTreeMap<AttrId, usize>, &Clause) -> bool;

    fn backtrack(
        attrs: &[AttrId],
        depth: usize,
        spaces: &BTreeMap<AttrId, AttrSpace>,
        choice: &mut BTreeMap<AttrId, usize>,
        clauses: &[Clause],
        clause_ok: ClauseCheck<'_>,
    ) -> bool {
        if depth == attrs.len() {
            return clauses.iter().all(|c| clause_ok(spaces, choice, c));
        }
        let attr = attrs[depth];
        for i in 0..spaces[&attr].options.len() {
            choice.insert(attr, i);
            if clauses.iter().all(|c| clause_ok(spaces, choice, c))
                && backtrack(attrs, depth + 1, spaces, choice, clauses, clause_ok)
            {
                return true;
            }
        }
        choice.remove(&attr);
        false
    }

    if backtrack(&attrs, 0, &spaces, &mut choice, &clauses, &clause_ok) {
        // Assemble the witness tuple.
        let mut tuple = vec![String::new(); arity];
        for (attr, idx) in &choice {
            if attr.index() < arity {
                tuple[attr.index()] = spaces[attr].options[*idx].1.clone();
            }
        }
        Consistency::Consistent(tuple)
    } else {
        Consistency::Inconsistent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfd_relation::{Relation, Schema};

    fn schema2() -> Schema {
        Schema::new("R", ["a", "b"]).unwrap()
    }

    #[test]
    fn single_pfd_is_consistent() {
        let s = schema2();
        let pfd = Pfd::constant_normal_form("R", &s, "a", r"[900]\D{2}", "b", "LA").unwrap();
        let result = check_consistency(&[pfd], 2);
        assert!(result.is_consistent(), "{result:?}");
    }

    #[test]
    fn witness_actually_satisfies() {
        let s = schema2();
        let pfds = vec![
            Pfd::constant_normal_form("R", &s, "a", r"[900]\D{2}", "b", "LA").unwrap(),
            Pfd::constant_normal_form("R", &s, "a", r"[\D{3}]\D{2}", "b", "_").unwrap(),
        ];
        match check_consistency(&pfds, 2) {
            Consistency::Consistent(tuple) => {
                let rel = Relation::from_rows(
                    "R",
                    &["a", "b"],
                    vec![tuple.iter().map(String::as_str).collect::<Vec<_>>()],
                )
                .unwrap();
                for pfd in &pfds {
                    assert!(pfd.satisfies(&rel), "witness must satisfy {pfd}");
                }
            }
            other => panic!("expected consistent, got {other:?}"),
        }
    }

    #[test]
    fn contradictory_constants_are_inconsistent() {
        // ψ1: any 5-digit a starting 900 → b = LA.
        // ψ2: any 5-digit a starting 900 → b = NY.
        // A tuple with a ↦ 900\D{2} needs b = LA and b = NY: impossible.
        // But a tuple whose a does NOT match the pattern is fine, so the set
        // *is* consistent (witness avoids the pattern).
        let s = schema2();
        let pfds = vec![
            Pfd::constant_normal_form("R", &s, "a", r"[900]\D{2}", "b", "LA").unwrap(),
            Pfd::constant_normal_form("R", &s, "a", r"[900]\D{2}", "b", "NY").unwrap(),
        ];
        let result = check_consistency(&pfds, 2);
        assert!(result.is_consistent(), "{result:?}");
        // Force a to match: now genuinely inconsistent.
        let req = Requirement {
            attr: AttrId(0),
            must: vec![pfd_pattern::parse_pattern(r"900\D{2}").unwrap()],
            ..Requirement::default()
        };
        let forced = check_consistency_with(&pfds, 2, &[req], DEFAULT_STATE_LIMIT);
        assert_eq!(forced, Consistency::Inconsistent);
    }

    #[test]
    fn self_contradictory_rhs_shape() {
        // a → b with b = \D+ and a → b with b = \LU+, plus a requirement
        // that a matches. The two RHS shapes are disjoint.
        let s = schema2();
        let pfds = vec![
            Pfd::constant_normal_form("R", &s, "a", "x", "b", r"\D+").unwrap(),
            Pfd::constant_normal_form("R", &s, "a", "x", "b", r"\LU+").unwrap(),
        ];
        let req = Requirement {
            attr: AttrId(0),
            must: vec![pfd_pattern::parse_pattern("x").unwrap()],
            ..Requirement::default()
        };
        assert_eq!(
            check_consistency_with(&pfds, 2, &[req], DEFAULT_STATE_LIMIT),
            Consistency::Inconsistent
        );
    }

    #[test]
    fn escape_via_nonmatching_value() {
        // Same contradiction as above but no requirement: consistent because
        // the witness's a-value simply avoids "x".
        let s = schema2();
        let pfds = vec![
            Pfd::constant_normal_form("R", &s, "a", "x", "b", r"\D+").unwrap(),
            Pfd::constant_normal_form("R", &s, "a", "x", "b", r"\LU+").unwrap(),
        ];
        match check_consistency(&pfds, 2) {
            Consistency::Consistent(tuple) => assert_ne!(tuple[0], "x"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn chained_implications() {
        // a=x → b=\D{2}; b=\D{2} (any) → c=Q. Consistent; witness either
        // avoids x or satisfies the chain.
        let s = Schema::new("R", ["a", "b", "c"]).unwrap();
        let pfds = vec![
            Pfd::constant_normal_form("R", &s, "a", "x", "b", r"\D{2}").unwrap(),
            Pfd::constant_normal_form("R", &s, "b", r"[\D{2}]", "c", "Q").unwrap(),
        ];
        let req = Requirement {
            attr: AttrId(0),
            must: vec![pfd_pattern::parse_pattern("x").unwrap()],
            ..Requirement::default()
        };
        match check_consistency_with(&pfds, 3, &[req], DEFAULT_STATE_LIMIT) {
            Consistency::Consistent(tuple) => {
                assert_eq!(tuple[0], "x");
                assert_eq!(tuple[1].len(), 2);
                assert!(tuple[1].chars().all(|c| c.is_ascii_digit()));
                assert_eq!(tuple[2], "Q");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn must_not_requirement() {
        let s = schema2();
        let pfd = Pfd::constant_normal_form("R", &s, "a", r"\D+", "b", "_").unwrap();
        // Require a to match \D+ but not \D{5}: witness has digits, len ≠ 5.
        let req = Requirement {
            attr: AttrId(0),
            must: vec![pfd_pattern::parse_pattern(r"\D+").unwrap()],
            must_not: vec![pfd_pattern::parse_pattern(r"\D{5}").unwrap()],
            ..Requirement::default()
        };
        match check_consistency_with(&[pfd], 2, &[req], DEFAULT_STATE_LIMIT) {
            Consistency::Consistent(tuple) => {
                assert!(tuple[0].chars().all(|c| c.is_ascii_digit()));
                assert!(!tuple[0].is_empty());
                assert_ne!(tuple[0].len(), 5);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_sigma_is_consistent() {
        assert!(check_consistency(&[], 3).is_consistent());
    }
}
