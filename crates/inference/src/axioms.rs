//! The inference axioms for PFDs (Fig. 3 of the paper).
//!
//! Each function is a *checked derivation step*: it validates the axiom's
//! side conditions and produces the consequent PFD. Together with
//! [`crate::closure`] they form the sound-and-complete system of Theorem 1.
//! Reflexivity, Augmentation and Transitivity extend Armstrong's axioms;
//! Reduction is carried over from CFDs; **Inconsistency-EFQ** and
//! **LHS-Generalization** are the genuinely new, pattern-driven axioms.
//!
//! All steps operate on single-tableau-row PFDs (`Tp` rows are independent,
//! §3.1).

use crate::consistency::{check_consistency_with, Consistency, Requirement, DEFAULT_STATE_LIMIT};
use pfd_core::{Pfd, PfdError, TableauCell, TableauRow};
use pfd_relation::AttrId;
use std::fmt;

/// Names of the axioms, for proof bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axiom {
    /// `A ∈ X ⊢ R(X → A, tp)` with `tp[A_L] ⊆ tp[A_R]`.
    Reflexivity,
    /// Ex falso quodlibet from an inconsistent attribute restriction.
    InconsistencyEfq,
    /// `R(X → Y, tp) ⊢ R(XA → YA, t'p)` for fresh `A`.
    Augmentation,
    /// Compose `X → Y` and `Y → Z` when the Y-patterns subsume.
    Transitivity,
    /// Drop a wildcard LHS attribute when the RHS is constant.
    Reduction,
    /// Union the B-patterns of two PFDs agreeing elsewhere.
    LhsGeneralization,
}

impl fmt::Display for Axiom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Axiom::Reflexivity => "Reflexivity",
            Axiom::InconsistencyEfq => "Inconsistency-EFQ",
            Axiom::Augmentation => "Augmentation",
            Axiom::Transitivity => "Transitivity",
            Axiom::Reduction => "Reduction",
            Axiom::LhsGeneralization => "LHS-Generalization",
        };
        f.write_str(name)
    }
}

/// Errors from axiom application: a violated side condition.
#[derive(Debug)]
pub enum AxiomError {
    /// A condition of the axiom does not hold.
    SideCondition(&'static str),
    /// The consequent failed PFD validation.
    Pfd(PfdError),
}

impl fmt::Display for AxiomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AxiomError::SideCondition(msg) => write!(f, "side condition violated: {msg}"),
            AxiomError::Pfd(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AxiomError {}

impl From<PfdError> for AxiomError {
    fn from(e: PfdError) -> Self {
        AxiomError::Pfd(e)
    }
}

fn single_row(pfd: &Pfd) -> Result<&TableauRow, AxiomError> {
    match pfd.tableau() {
        [row] => Ok(row),
        _ => Err(AxiomError::SideCondition(
            "axiom steps operate on single-row PFDs; decompose multi-row tableaux first",
        )),
    }
}

/// **Reflexivity**: for `A ∈ X`, derive `R(X → A, tp)` where
/// `tp[A_L] ⊆ tp[A_R]`.
pub fn reflexivity(
    relation: &str,
    lhs: &[(AttrId, TableauCell)],
    a: AttrId,
    a_rhs_cell: TableauCell,
) -> Result<Pfd, AxiomError> {
    let a_lhs_cell = lhs
        .iter()
        .find(|(attr, _)| *attr == a)
        .map(|(_, c)| c)
        .ok_or(AxiomError::SideCondition("A must be a member of X"))?;
    if !a_lhs_cell.is_restriction_of(&a_rhs_cell) {
        return Err(AxiomError::SideCondition("requires tp[A_L] ⊆ tp[A_R]"));
    }
    let (attrs, cells): (Vec<AttrId>, Vec<TableauCell>) = lhs.iter().cloned().unzip();
    Ok(Pfd::new(
        relation,
        attrs,
        vec![a],
        vec![TableauRow::new(cells, vec![a_rhs_cell])],
    )?)
}

/// **Inconsistency-EFQ**: if `B ∈ S_B` is not consistent w.r.t. Ψ — no
/// instance satisfying Ψ has a `B`-value in `S_B` (here `S_B = L(b_cell)`) —
/// derive `R(B → Y, tp)` for *arbitrary* `Y` and patterns: ex falso
/// quodlibet. The inconsistency premise is verified with the NP consistency
/// checker before the consequent is produced.
pub fn inconsistency_efq(
    relation: &str,
    sigma: &[Pfd],
    arity: usize,
    b: AttrId,
    b_cell: TableauCell,
    y: Vec<(AttrId, TableauCell)>,
) -> Result<Pfd, AxiomError> {
    let must = match &b_cell {
        TableauCell::Wildcard => Vec::new(),
        TableauCell::Pattern(p) => vec![p.full_pattern()],
    };
    let req = Requirement {
        attr: b,
        must,
        ..Requirement::default()
    };
    match check_consistency_with(sigma, arity, &[req], DEFAULT_STATE_LIMIT) {
        Consistency::Inconsistent => {}
        Consistency::Consistent(_) => {
            return Err(AxiomError::SideCondition(
                "B ∈ S_B is consistent w.r.t. Ψ; EFQ does not apply",
            ))
        }
        Consistency::Unknown => {
            return Err(AxiomError::SideCondition(
                "consistency check exceeded its budget",
            ))
        }
    }
    let (attrs, cells): (Vec<AttrId>, Vec<TableauCell>) = y.into_iter().unzip();
    Ok(Pfd::new(
        relation,
        vec![b],
        attrs,
        vec![TableauRow::new(vec![b_cell], cells)],
    )?)
}

/// **Augmentation**: from `R(X → Y, tp)` and `A ∉ X ∪ Y`, derive
/// `R(XA → YA, t'p)` with `t'p[XY] = tp[XY]` and `t'p[A_L] = t'p[A_R]`.
pub fn augmentation(pfd: &Pfd, a: AttrId, a_cell: TableauCell) -> Result<Pfd, AxiomError> {
    let row = single_row(pfd)?;
    if pfd.lhs().contains(&a) || pfd.rhs().contains(&a) {
        return Err(AxiomError::SideCondition("requires A ∉ X ∪ Y"));
    }
    let mut lhs = pfd.lhs().to_vec();
    let mut rhs = pfd.rhs().to_vec();
    lhs.push(a);
    rhs.push(a);
    let mut lhs_cells = row.lhs.clone();
    let mut rhs_cells = row.rhs.clone();
    lhs_cells.push(a_cell.clone());
    rhs_cells.push(a_cell);
    Ok(Pfd::new(
        pfd.relation(),
        lhs,
        rhs,
        vec![TableauRow::new(lhs_cells, rhs_cells)],
    )?)
}

/// **Transitivity**: from `R(X → Y, tp)` and `R(Y → Z, t'p)` with
/// `tp[A] ⊆ t'p[A]` for every `A ∈ Y`, derive `R(X → Z, t''p)` with
/// `t''p[X] = tp[X]` and `t''p[Z] = t'p[Z]`.
pub fn transitivity(p1: &Pfd, p2: &Pfd) -> Result<Pfd, AxiomError> {
    let row1 = single_row(p1)?;
    let row2 = single_row(p2)?;
    // p1's RHS must be exactly p2's LHS (as attribute sets).
    let mut y1: Vec<AttrId> = p1.rhs().to_vec();
    let mut y2: Vec<AttrId> = p2.lhs().to_vec();
    y1.sort_unstable();
    y2.sort_unstable();
    if y1 != y2 {
        return Err(AxiomError::SideCondition(
            "the RHS of the first PFD must equal the LHS of the second",
        ));
    }
    // Pattern condition on Y: tp[A] (as produced by p1) ⊆ t'p[A] (as
    // consumed by p2).
    for (j, a) in p1.rhs().iter().enumerate() {
        let i = p2
            .lhs()
            .iter()
            .position(|b| b == a)
            .expect("attribute sets equal");
        if !row1.rhs[j].is_restriction_of(&row2.lhs[i]) {
            return Err(AxiomError::SideCondition(
                "requires tp[A] ⊆ t'p[A] for all A ∈ Y",
            ));
        }
    }
    Ok(Pfd::new(
        p1.relation(),
        p1.lhs().to_vec(),
        p2.rhs().to_vec(),
        vec![TableauRow::new(row1.lhs.clone(), row2.rhs.clone())],
    )?)
}

/// **Reduction**: from `R(XB → A, tp)` with `tp[B] = ⊥` and `tp[A]`
/// constant, derive `R(X → A, t'p)` dropping `B`.
pub fn reduction(pfd: &Pfd, b: AttrId) -> Result<Pfd, AxiomError> {
    let row = single_row(pfd)?;
    let bi = pfd
        .lhs()
        .iter()
        .position(|x| *x == b)
        .ok_or(AxiomError::SideCondition("B must be a member of the LHS"))?;
    if !row.lhs[bi].is_wildcard() {
        return Err(AxiomError::SideCondition("requires tp[B] = ⊥"));
    }
    if pfd.rhs().len() != 1 || !row.rhs[0].is_constant() {
        return Err(AxiomError::SideCondition(
            "requires a single constant RHS attribute",
        ));
    }
    if pfd.lhs().len() < 2 {
        return Err(AxiomError::SideCondition("dropping B would empty the LHS"));
    }
    let lhs: Vec<AttrId> = pfd
        .lhs()
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != bi)
        .map(|(_, a)| *a)
        .collect();
    let lhs_cells: Vec<TableauCell> = row
        .lhs
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != bi)
        .map(|(_, c)| c.clone())
        .collect();
    Ok(Pfd::new(
        pfd.relation(),
        lhs,
        pfd.rhs().to_vec(),
        vec![TableauRow::new(lhs_cells, row.rhs.clone())],
    )?)
}

/// **LHS-Generalization**: from `R(XB → Y, tp)` and `R(XB → Y, t'p)` with
/// `tp[XY] = t'p[XY]`, derive `R(XB → Y, t''p)` where
/// `t''p[B] = tp[B] ∪ t'p[B]`.
///
/// Our pattern language has no union operator; the consequent is the
/// semantically equivalent **two-row tableau** `{tp, t'p}` (a value matches
/// the union cell iff it matches one of the rows' cells, and cross-branch
/// tuple pairs relate only through a shared branch — exactly the disjoint
/// union the axiom describes).
pub fn lhs_generalization(p1: &Pfd, p2: &Pfd, b: AttrId) -> Result<Pfd, AxiomError> {
    let row1 = single_row(p1)?;
    let row2 = single_row(p2)?;
    if p1.lhs() != p2.lhs() || p1.rhs() != p2.rhs() {
        return Err(AxiomError::SideCondition(
            "both PFDs must share the same X, B and Y",
        ));
    }
    let bi = p1
        .lhs()
        .iter()
        .position(|x| *x == b)
        .ok_or(AxiomError::SideCondition("B must be a member of the LHS"))?;
    // tp[XY] = t'p[XY]: all cells equal except possibly B's.
    for (i, (c1, c2)) in row1.lhs.iter().zip(&row2.lhs).enumerate() {
        if i != bi && c1 != c2 {
            return Err(AxiomError::SideCondition("requires tp[X] = t'p[X]"));
        }
    }
    if row1.rhs != row2.rhs {
        return Err(AxiomError::SideCondition("requires tp[Y] = t'p[Y]"));
    }
    Ok(Pfd::new(
        p1.relation(),
        p1.lhs().to_vec(),
        p1.rhs().to_vec(),
        vec![row1.clone(), row2.clone()],
    )?)
}

/// One step of a recorded proof: the axiom used, the indices of premise
/// steps, and the conclusion.
#[derive(Debug, Clone)]
pub struct ProofStep {
    /// The axiom applied, or `None` for a hypothesis from Ψ.
    pub axiom: Option<Axiom>,
    /// Indices of earlier steps used as premises (empty for hypotheses).
    pub premises: Vec<usize>,
    /// The PFD this step concludes.
    pub conclusion: Pfd,
}

/// A proof: a sequence of steps, each a hypothesis (a member of Ψ) or an
/// axiom application whose premises occur earlier — the §3.1 notion of
/// `Ψ ⊢_I ψ`.
#[derive(Debug, Clone, Default)]
pub struct Proof {
    steps: Vec<ProofStep>,
}

impl Proof {
    /// An empty proof.
    pub fn new() -> Proof {
        Proof::default()
    }

    /// Record a hypothesis (an element of Ψ). Returns its step index.
    pub fn hypothesis(&mut self, pfd: Pfd) -> usize {
        self.steps.push(ProofStep {
            axiom: None,
            premises: Vec::new(),
            conclusion: pfd,
        });
        self.steps.len() - 1
    }

    /// Record an axiom application. Premise indices must refer to earlier
    /// steps.
    pub fn step(
        &mut self,
        axiom: Axiom,
        premises: Vec<usize>,
        conclusion: Pfd,
    ) -> Result<usize, AxiomError> {
        if premises.iter().any(|&i| i >= self.steps.len()) {
            return Err(AxiomError::SideCondition(
                "premises must refer to earlier proof steps",
            ));
        }
        self.steps.push(ProofStep {
            axiom: Some(axiom),
            premises,
            conclusion,
        });
        Ok(self.steps.len() - 1)
    }

    /// All recorded steps, in order.
    pub fn steps(&self) -> &[ProofStep] {
        &self.steps
    }

    /// The final conclusion, if any step exists.
    pub fn conclusion(&self) -> Option<&Pfd> {
        self.steps.last().map(|s| &s.conclusion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfd_relation::{Relation, Schema};

    fn schema() -> Schema {
        Schema::new("R", ["a", "b", "c", "d"]).unwrap()
    }

    fn cell(src: &str) -> TableauCell {
        TableauCell::parse(src).unwrap()
    }

    #[test]
    fn reflexivity_paper_example() {
        // Name(name → name, (John\A* ‖ \LU\LL*\ \A*)) from §3.1.
        let pfd = reflexivity(
            "Name",
            &[(AttrId(0), cell(r"[John\ ]\A*"))],
            AttrId(0),
            cell(r"[\LU\LL*\ ]\A*"),
        )
        .unwrap();
        assert_eq!(pfd.lhs(), &[AttrId(0)]);
        assert_eq!(pfd.rhs(), &[AttrId(0)]);
    }

    #[test]
    fn reflexivity_rejects_non_restriction() {
        let err = reflexivity(
            "Name",
            &[(AttrId(0), cell(r"[\LU\LL*\ ]\A*"))],
            AttrId(0),
            cell(r"[John\ ]\A*"),
        )
        .unwrap_err();
        assert!(matches!(err, AxiomError::SideCondition(_)));
    }

    #[test]
    fn reflexivity_rejects_missing_attribute() {
        let err = reflexivity(
            "R",
            &[(AttrId(0), cell("x"))],
            AttrId(1),
            TableauCell::Wildcard,
        )
        .unwrap_err();
        assert!(matches!(err, AxiomError::SideCondition(_)));
    }

    #[test]
    fn augmentation_adds_attribute_to_both_sides() {
        let s = schema();
        let base = Pfd::constant_normal_form("R", &s, "a", "x", "b", "y").unwrap();
        let grown = augmentation(&base, AttrId(2), TableauCell::Wildcard).unwrap();
        assert_eq!(grown.lhs(), &[AttrId(0), AttrId(2)]);
        assert_eq!(grown.rhs(), &[AttrId(1), AttrId(2)]);
    }

    #[test]
    fn augmentation_rejects_member_attribute() {
        let s = schema();
        let base = Pfd::constant_normal_form("R", &s, "a", "x", "b", "y").unwrap();
        assert!(augmentation(&base, AttrId(0), TableauCell::Wildcard).is_err());
        assert!(augmentation(&base, AttrId(1), TableauCell::Wildcard).is_err());
    }

    #[test]
    fn augmentation_preserves_semantics_on_instance() {
        // Soundness spot check: the consequent holds wherever the premise does.
        let s = schema();
        let base = Pfd::constant_normal_form("R", &s, "a", "x", "b", "y").unwrap();
        let grown = augmentation(&base, AttrId(2), TableauCell::Wildcard).unwrap();
        let rel = Relation::from_rows(
            "R",
            &["a", "b", "c", "d"],
            vec![
                vec!["x", "y", "1", "q"],
                vec!["x", "y", "2", "r"],
                vec!["z", "w", "1", "s"],
            ],
        )
        .unwrap();
        assert!(base.satisfies(&rel));
        assert!(grown.satisfies(&rel));
    }

    #[test]
    fn transitivity_composes() {
        let s = schema();
        let p1 = Pfd::constant_normal_form("R", &s, "a", r"[900]\D{2}", "b", "LA").unwrap();
        let p2 = Pfd::constant_normal_form("R", &s, "b", "LA", "c", "CA").unwrap();
        let p3 = transitivity(&p1, &p2).unwrap();
        assert_eq!(p3.lhs(), &[AttrId(0)]);
        assert_eq!(p3.rhs(), &[AttrId(2)]);
        assert_eq!(p3.tableau()[0].rhs[0], cell("CA"));
    }

    #[test]
    fn transitivity_requires_pattern_subsumption() {
        let s = schema();
        // p1 produces b matching \D{5}; p2 consumes b matching 900\D{2}:
        // \D{5} ⊄ 900\D{2}, so the composition is rejected.
        let p1 = Pfd::constant_normal_form("R", &s, "a", "x", "b", r"\D{5}").unwrap();
        let p2 = Pfd::constant_normal_form("R", &s, "b", r"900\D{2}", "c", "CA").unwrap();
        assert!(transitivity(&p1, &p2).is_err());
        // The converse subsumption works.
        let p1b = Pfd::constant_normal_form("R", &s, "a", "x", "b", r"900\D{2}").unwrap();
        let p2b = Pfd::constant_normal_form("R", &s, "b", r"\D{5}", "c", "CA").unwrap();
        assert!(transitivity(&p1b, &p2b).is_ok());
    }

    #[test]
    fn transitivity_requires_matching_attribute_sets() {
        let s = schema();
        let p1 = Pfd::constant_normal_form("R", &s, "a", "x", "b", "y").unwrap();
        let p2 = Pfd::constant_normal_form("R", &s, "c", "y", "d", "z").unwrap();
        assert!(transitivity(&p1, &p2).is_err());
    }

    #[test]
    fn reduction_drops_wildcard_attribute() {
        let s = schema();
        let pfd = Pfd::normal_form("R", &s, &[("a", "x"), ("b", "_")], ("c", "LA")).unwrap();
        let reduced = reduction(&pfd, AttrId(1)).unwrap();
        assert_eq!(reduced.lhs(), &[AttrId(0)]);
        assert_eq!(reduced.rhs(), &[AttrId(2)]);
    }

    #[test]
    fn reduction_requires_wildcard_and_constant() {
        let s = schema();
        // B not a wildcard.
        let p1 = Pfd::normal_form("R", &s, &[("a", "x"), ("b", "y")], ("c", "LA")).unwrap();
        assert!(reduction(&p1, AttrId(1)).is_err());
        // RHS not a constant.
        let p2 = Pfd::normal_form("R", &s, &[("a", "x"), ("b", "_")], ("c", "_")).unwrap();
        assert!(reduction(&p2, AttrId(1)).is_err());
    }

    #[test]
    fn reduction_soundness_on_instance() {
        let s = schema();
        let pfd = Pfd::normal_form("R", &s, &[("a", "x"), ("b", "_")], ("c", "LA")).unwrap();
        let reduced = reduction(&pfd, AttrId(1)).unwrap();
        let rel = Relation::from_rows(
            "R",
            &["a", "b", "c", "d"],
            vec![vec!["x", "1", "LA", "-"], vec!["x", "2", "LA", "-"]],
        )
        .unwrap();
        assert!(pfd.satisfies(&rel));
        assert!(reduced.satisfies(&rel));
    }

    #[test]
    fn lhs_generalization_unions_rows() {
        let s = schema();
        let p1 = Pfd::constant_normal_form("R", &s, "a", r"[John\ ]\A*", "b", "M").unwrap();
        let p2 = Pfd::constant_normal_form("R", &s, "a", r"[Bob\ ]\A*", "b", "M").unwrap();
        let merged = lhs_generalization(&p1, &p2, AttrId(0)).unwrap();
        assert_eq!(merged.tableau().len(), 2);
        // Semantics: matches either first name.
        let rel = Relation::from_rows(
            "R",
            &["a", "b", "c", "d"],
            vec![
                vec!["John Smith", "M", "-", "-"],
                vec!["Bob Jones", "M", "-", "-"],
            ],
        )
        .unwrap();
        assert!(merged.satisfies(&rel));
        let bad = Relation::from_rows(
            "R",
            &["a", "b", "c", "d"],
            vec![vec!["Bob Jones", "F", "-", "-"]],
        )
        .unwrap();
        assert!(!merged.satisfies(&bad));
    }

    #[test]
    fn lhs_generalization_requires_equal_context() {
        let s = schema();
        let p1 = Pfd::constant_normal_form("R", &s, "a", "x", "b", "M").unwrap();
        let p2 = Pfd::constant_normal_form("R", &s, "a", "y", "b", "F").unwrap();
        // RHS cells differ: rejected.
        assert!(lhs_generalization(&p1, &p2, AttrId(0)).is_err());
    }

    #[test]
    fn inconsistency_efq_applies_on_contradiction() {
        let s = schema();
        // Ψ forces b = LA and b = NY whenever a = x: values a = x are
        // impossible.
        let sigma = vec![
            Pfd::constant_normal_form("R", &s, "a", "x", "b", "LA").unwrap(),
            Pfd::constant_normal_form("R", &s, "a", "x", "b", "NY").unwrap(),
        ];
        let derived = inconsistency_efq(
            "R",
            &sigma,
            4,
            AttrId(0),
            cell("x"),
            vec![(AttrId(3), cell("anything"))],
        )
        .unwrap();
        assert_eq!(derived.lhs(), &[AttrId(0)]);
        assert_eq!(derived.rhs(), &[AttrId(3)]);
    }

    #[test]
    fn inconsistency_efq_rejects_consistent_premise() {
        let s = schema();
        let sigma = vec![Pfd::constant_normal_form("R", &s, "a", "x", "b", "LA").unwrap()];
        let err = inconsistency_efq(
            "R",
            &sigma,
            4,
            AttrId(0),
            cell("x"),
            vec![(AttrId(3), cell("anything"))],
        )
        .unwrap_err();
        assert!(matches!(err, AxiomError::SideCondition(_)));
    }

    #[test]
    fn proof_bookkeeping() {
        let s = schema();
        let p1 = Pfd::constant_normal_form("R", &s, "a", r"[900]\D{2}", "b", "LA").unwrap();
        let p2 = Pfd::constant_normal_form("R", &s, "b", "LA", "c", "CA").unwrap();
        let p3 = transitivity(&p1, &p2).unwrap();

        let mut proof = Proof::new();
        let h1 = proof.hypothesis(p1);
        let h2 = proof.hypothesis(p2);
        let step = proof
            .step(Axiom::Transitivity, vec![h1, h2], p3.clone())
            .unwrap();
        assert_eq!(step, 2);
        assert_eq!(proof.conclusion(), Some(&p3));
        assert_eq!(proof.steps()[2].axiom, Some(Axiom::Transitivity));
    }

    #[test]
    fn proof_rejects_forward_references() {
        let mut proof = Proof::new();
        let s = schema();
        let p = Pfd::constant_normal_form("R", &s, "a", "x", "b", "y").unwrap();
        assert!(proof.step(Axiom::Reflexivity, vec![5], p).is_err());
    }
}
