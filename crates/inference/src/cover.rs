//! Minimal covers of PFD sets.
//!
//! Discovery returns redundant constraints — a tighter tableau row is often
//! implied by a generalized one, and transitive chains imply their
//! composites. For rule management (§4.5's human-review workflow: the fewer
//! rules an expert must validate, the better) we compute a **minimal
//! cover**: a subset `Σ' ⊆ Σ` with `Σ' ⊨ σ` for every `σ ∈ Σ` and no
//! proper subset of `Σ'` sufficing. This is the classic FD-cover
//! construction lifted to PFDs through the Theorem 1 implication machinery.

use crate::implication::implies;
use pfd_core::Pfd;

/// Compute a minimal cover of `sigma` over a schema of `arity` attributes.
///
/// Greedy elimination: drop any member implied by the others, iterating
/// until fixpoint. The result depends on iteration order (minimal covers
/// are not unique); members are considered in reverse so that earlier,
/// higher-priority rules survive ties.
pub fn minimal_cover(sigma: &[Pfd], arity: usize) -> Vec<Pfd> {
    let mut kept: Vec<Pfd> = sigma.to_vec();
    let mut changed = true;
    while changed {
        changed = false;
        // Reverse order: prefer dropping later (lower-priority) rules.
        for i in (0..kept.len()).rev() {
            let candidate = kept[i].clone();
            let rest: Vec<Pfd> = kept
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, p)| p.clone())
                .collect();
            if implies(&rest, &candidate, arity) {
                kept.remove(i);
                changed = true;
            }
        }
    }
    kept
}

/// Are two PFD sets equivalent (each implies every member of the other)?
pub fn equivalent_sets(a: &[Pfd], b: &[Pfd], arity: usize) -> bool {
    b.iter().all(|p| implies(a, p, arity)) && a.iter().all(|p| implies(b, p, arity))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfd_relation::Schema;

    fn schema() -> Schema {
        Schema::new("R", ["a", "b", "c"]).unwrap()
    }

    #[test]
    fn transitive_composite_is_dropped() {
        let s = schema();
        let sigma = vec![
            Pfd::constant_normal_form("R", &s, "a", r"[900]\D{2}", "b", "LA").unwrap(),
            Pfd::constant_normal_form("R", &s, "b", "LA", "c", "CA").unwrap(),
            // Implied by the two above (transitivity).
            Pfd::constant_normal_form("R", &s, "a", r"[900]\D{2}", "c", "CA").unwrap(),
        ];
        let cover = minimal_cover(&sigma, 3);
        assert_eq!(cover.len(), 2, "{cover:?}");
        assert!(equivalent_sets(&cover, &sigma, 3));
    }

    #[test]
    fn tighter_premise_is_dropped_under_generalization() {
        let s = schema();
        let sigma = vec![
            // General: any 3-digit zip prefix determines b.
            Pfd::constant_normal_form("R", &s, "a", r"[\D{3}]\D{2}", "b", "_").unwrap(),
            // Special case: implied by the general rule.
            Pfd::constant_normal_form("R", &s, "a", r"[900]\D{2}", "b", "_").unwrap(),
        ];
        let cover = minimal_cover(&sigma, 3);
        assert_eq!(cover.len(), 1);
        // The surviving rule is the general one.
        assert_eq!(cover[0], sigma[0]);
    }

    #[test]
    fn independent_rules_all_survive() {
        let s = schema();
        let sigma = vec![
            Pfd::constant_normal_form("R", &s, "a", "x", "b", "1").unwrap(),
            Pfd::constant_normal_form("R", &s, "a", "y", "b", "2").unwrap(),
            Pfd::constant_normal_form("R", &s, "b", "1", "c", "p").unwrap(),
        ];
        let cover = minimal_cover(&sigma, 3);
        assert_eq!(cover.len(), 3);
    }

    #[test]
    fn cover_is_minimal() {
        let s = schema();
        let sigma = vec![
            Pfd::constant_normal_form("R", &s, "a", r"[900]\D{2}", "b", "LA").unwrap(),
            Pfd::constant_normal_form("R", &s, "b", "LA", "c", "CA").unwrap(),
            Pfd::constant_normal_form("R", &s, "a", r"[900]\D{2}", "c", "CA").unwrap(),
            Pfd::constant_normal_form("R", &s, "a", r"[\D{3}]\D{2}", "b", "_").unwrap(),
        ];
        let cover = minimal_cover(&sigma, 3);
        // No member of the cover is implied by the rest.
        for i in 0..cover.len() {
            let rest: Vec<Pfd> = cover
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, p)| p.clone())
                .collect();
            assert!(
                !implies(&rest, &cover[i], 3),
                "cover member {} is redundant",
                cover[i]
            );
        }
        assert!(equivalent_sets(&cover, &sigma, 3));
    }

    #[test]
    fn empty_and_singleton() {
        let s = schema();
        assert!(minimal_cover(&[], 3).is_empty());
        let one = vec![Pfd::constant_normal_form("R", &s, "a", "x", "b", "1").unwrap()];
        assert_eq!(minimal_cover(&one, 3).len(), 1);
    }

    #[test]
    fn duplicates_collapse() {
        let s = schema();
        let p = Pfd::constant_normal_form("R", &s, "a", "x", "b", "1").unwrap();
        let cover = minimal_cover(&[p.clone(), p.clone(), p], 3);
        assert_eq!(cover.len(), 1);
    }
}
