//! The PFD-closure algorithm (Fig. 7 of the paper, used in the completeness
//! proof of Theorem 1).
//!
//! Given Ψ and a seed `(X, tp[X])`, compute the set of `(A, tW[A])` pairs
//! such that `Ψ ⊨ R(X → A, tp)` with `tp[A] = tW[A]`. Unlike the classic FD
//! closure, the algorithm (1) tracks a *pattern* per attribute, (2) can
//! tighten an attribute's pattern when a later PFD derives a more specific
//! one, and (3) uses an inconsistency side condition (a.ii) implemented with
//! the NP consistency checker of [`crate::consistency`].

use crate::clause::{clauses_of, Clause};
use crate::consistency::{check_consistency_with, Consistency, Requirement, DEFAULT_STATE_LIMIT};
use pfd_core::{Pfd, TableauCell};
use pfd_relation::AttrId;
use std::collections::BTreeMap;

/// The PFD-closure `(X, tp[X])^Ψ`: attribute → tightest derived cell.
pub type Closure = BTreeMap<AttrId, TableauCell>;

/// Configuration for the closure computation.
#[derive(Debug, Clone, Copy)]
pub struct ClosureConfig {
    /// Use the Inconsistency-EFQ side condition (a.ii). Disabling it keeps
    /// the algorithm sound but incomplete; useful when Ψ is large and the
    /// consistency sub-searches are too costly.
    pub use_inconsistency_condition: bool,
    /// State budget per consistency sub-search.
    pub state_limit: usize,
}

impl Default for ClosureConfig {
    fn default() -> Self {
        ClosureConfig {
            use_inconsistency_condition: true,
            state_limit: DEFAULT_STATE_LIMIT,
        }
    }
}

fn cell_full(cell: &TableauCell) -> Option<pfd_pattern::Pattern> {
    match cell {
        TableauCell::Wildcard => None,
        TableauCell::Pattern(p) => Some(p.full_pattern()),
    }
}

/// Condition (a.ii) of Fig. 7: values matching `closure[B]` but not `tp[B]`
/// are impossible w.r.t. Ψ — i.e. Ψ plus the requirement
/// `B ∈ L(tW[B]) ∖ L(tp[B])` is inconsistent.
fn difference_inconsistent(
    sigma: &[Pfd],
    arity: usize,
    attr: AttrId,
    closure_cell: &TableauCell,
    clause_cell: &TableauCell,
    config: &ClosureConfig,
) -> bool {
    if !config.use_inconsistency_condition {
        return false;
    }
    let must: Vec<_> = cell_full(closure_cell).into_iter().collect();
    let must_not: Vec<_> = cell_full(clause_cell).into_iter().collect();
    if must_not.is_empty() {
        // clause cell is a wildcard: difference is empty, condition holds
        // trivially via (a.i) anyway.
        return false;
    }
    let req = Requirement {
        attr,
        must,
        must_not,
        ..Requirement::default()
    };
    matches!(
        check_consistency_with(sigma, arity, &[req], config.state_limit),
        Consistency::Inconsistent
    )
}

/// Compute the PFD-closure of `(X, tp[X])` under Ψ over a schema of `arity`
/// attributes.
pub fn pfd_closure(
    sigma: &[Pfd],
    arity: usize,
    seed: &[(AttrId, TableauCell)],
    config: &ClosureConfig,
) -> Closure {
    // Lines 1–4: unused := decomposed clauses; closure := the seed.
    let mut unused: Vec<Clause> = clauses_of(sigma);
    let mut closure: Closure = seed.iter().cloned().collect();

    // Line 5: repeat until no further change.
    loop {
        let mut progressed = false;
        let mut next_unused = Vec::with_capacity(unused.len());
        for clause in unused {
            if clause_triggers(sigma, arity, &closure, &clause, config) {
                let (a, cell) = (&clause.rhs.0, &clause.rhs.1);
                match closure.get(a) {
                    // Line 8–9: A not in closure — add it.
                    None => {
                        closure.insert(*a, cell.clone());
                        progressed = true;
                    }
                    // Line 10–11: tighten when tp[A] ⊆ tW[A].
                    Some(existing) => {
                        if cell != existing && cell.is_restriction_of(existing) {
                            closure.insert(*a, cell.clone());
                            progressed = true;
                        }
                    }
                }
                // Line 7: the clause is consumed.
            } else {
                next_unused.push(clause);
            }
        }
        unused = next_unused;
        if !progressed {
            break;
        }
    }
    closure
}

/// Line 6 of Fig. 7: can `clause : R(Y → A, tp)` extend the closure?
fn clause_triggers(
    sigma: &[Pfd],
    arity: usize,
    closure: &Closure,
    clause: &Clause,
    config: &ClosureConfig,
) -> bool {
    let in_closure: Vec<bool> = clause
        .lhs
        .iter()
        .map(|(b, _)| closure.contains_key(b))
        .collect();

    if in_closure.iter().all(|&x| x) {
        // Condition (a): every B ∈ Y appears in closure, and per B either
        // (i) tW[B] ⊆ tp[B], or (ii) the difference is inconsistent.
        clause.lhs.iter().all(|(b, cell)| {
            let cl = &closure[b];
            cl.is_restriction_of(cell)
                || difference_inconsistent(sigma, arity, *b, cl, cell, config)
        })
    } else {
        // Condition (b): A constant, missing attributes all wildcards,
        // present attributes still satisfying the (a) conditions.
        if !clause.rhs.1.is_constant() {
            return false;
        }
        clause
            .lhs
            .iter()
            .zip(&in_closure)
            .all(|((b, cell), present)| {
                if *present {
                    let cl = &closure[b];
                    cl.is_restriction_of(cell)
                        || difference_inconsistent(sigma, arity, *b, cl, cell, config)
                } else {
                    cell.is_wildcard()
                }
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfd_relation::Schema;

    fn cell(src: &str) -> TableauCell {
        TableauCell::parse(src).unwrap()
    }

    fn schema3() -> Schema {
        Schema::new("R", ["a", "b", "c"]).unwrap()
    }

    #[test]
    fn closure_contains_seed() {
        let closure = pfd_closure(
            &[],
            3,
            &[(AttrId(0), cell(r"[900]\D{2}"))],
            &ClosureConfig::default(),
        );
        assert_eq!(closure.len(), 1);
        assert_eq!(closure[&AttrId(0)], cell(r"[900]\D{2}"));
    }

    #[test]
    fn transitive_chain() {
        // a(900xx) → b = LA; b(LA) → c = CA. Seed a.
        let s = schema3();
        let sigma = vec![
            Pfd::constant_normal_form("R", &s, "a", r"[900]\D{2}", "b", "LA").unwrap(),
            Pfd::constant_normal_form("R", &s, "b", "LA", "c", "CA").unwrap(),
        ];
        let closure = pfd_closure(
            &sigma,
            3,
            &[(AttrId(0), cell(r"[900]\D{2}"))],
            &ClosureConfig::default(),
        );
        assert_eq!(closure[&AttrId(1)], cell("LA"));
        assert_eq!(closure[&AttrId(2)], cell("CA"));
    }

    #[test]
    fn seed_pattern_must_be_tight_enough() {
        // a restricted to [\D{5}] does NOT trigger a 900-prefix clause.
        let s = schema3();
        let sigma =
            vec![Pfd::constant_normal_form("R", &s, "a", r"[900]\D{2}", "b", "LA").unwrap()];
        let closure = pfd_closure(
            &sigma,
            3,
            &[(AttrId(0), cell(r"[\D{3}]\D{2}"))],
            &ClosureConfig::default(),
        );
        assert!(
            !closure.contains_key(&AttrId(1)),
            "five-digit seed is wider than the 900-prefix premise"
        );
        // The other direction triggers: a 900-prefix seed is a restriction
        // of a generic 3-digit-prefix premise.
        let sigma2 =
            vec![Pfd::constant_normal_form("R", &s, "a", r"[\D{3}]\D{2}", "b", "_").unwrap()];
        let closure2 = pfd_closure(
            &sigma2,
            3,
            &[(AttrId(0), cell(r"[900]\D{2}"))],
            &ClosureConfig::default(),
        );
        assert!(closure2.contains_key(&AttrId(1)));
    }

    #[test]
    fn tightening_updates_closure() {
        // Two clauses derive b with nested patterns; closure keeps tighter.
        let s = schema3();
        let sigma = vec![
            Pfd::constant_normal_form("R", &s, "a", "x", "b", r"\D{5}").unwrap(),
            Pfd::constant_normal_form("R", &s, "a", "x", "b", r"900\D{2}").unwrap(),
        ];
        let closure = pfd_closure(
            &sigma,
            3,
            &[(AttrId(0), cell("x"))],
            &ClosureConfig::default(),
        );
        assert_eq!(closure[&AttrId(1)], cell(r"900\D{2}"));
    }

    #[test]
    fn condition_b_reduction_style() {
        // (a, c) → b with c = ⊥, b constant: triggers even though c is not
        // in the closure (Reduction axiom).
        let s = schema3();
        let sigma =
            vec![Pfd::normal_form("R", &s, &[("a", "x"), ("c", "_")], ("b", "LA")).unwrap()];
        let closure = pfd_closure(
            &sigma,
            3,
            &[(AttrId(0), cell("x"))],
            &ClosureConfig::default(),
        );
        assert_eq!(closure[&AttrId(1)], cell("LA"));
    }

    #[test]
    fn condition_b_needs_constant_rhs() {
        // Same but RHS is a wildcard: must NOT trigger.
        let s = schema3();
        let sigma = vec![Pfd::normal_form("R", &s, &[("a", "x"), ("c", "_")], ("b", "_")).unwrap()];
        let closure = pfd_closure(
            &sigma,
            3,
            &[(AttrId(0), cell("x"))],
            &ClosureConfig::default(),
        );
        assert!(!closure.contains_key(&AttrId(1)));
    }

    #[test]
    fn inconsistency_condition_fires() {
        // Ψ forces every a to match \D{2} (wildcard LHS on b). The clause
        // a=[\D{2}] → c=Q has premise pattern \D{2}; a seed of \D+ is wider,
        // but \D+ ∖ \D{2} values are impossible under Ψ, so (a.ii) fires.
        let s = schema3();
        let sigma = vec![
            Pfd::constant_normal_form("R", &s, "b", "_", "a", r"\D{2}").unwrap(),
            Pfd::constant_normal_form("R", &s, "a", r"[\D{2}]", "c", "Q").unwrap(),
        ];
        let closure = pfd_closure(
            &sigma,
            3,
            &[(AttrId(0), cell(r"\D+"))],
            &ClosureConfig::default(),
        );
        assert_eq!(
            closure.get(&AttrId(2)),
            Some(&cell("Q")),
            "closure: {closure:?}"
        );
        // With the condition disabled, the derivation is lost.
        let weak = pfd_closure(
            &sigma,
            3,
            &[(AttrId(0), cell(r"\D+"))],
            &ClosureConfig {
                use_inconsistency_condition: false,
                ..ClosureConfig::default()
            },
        );
        assert!(!weak.contains_key(&AttrId(2)));
    }

    #[test]
    fn wildcard_seed_behaves_like_fd_closure() {
        // Plain FDs: a → b, b → c. Wildcard seed on a derives everything.
        let s = schema3();
        let sigma = vec![
            Pfd::fd("R", &s, &["a"], &["b"]).unwrap(),
            Pfd::fd("R", &s, &["b"], &["c"]).unwrap(),
        ];
        let closure = pfd_closure(
            &sigma,
            3,
            &[(AttrId(0), TableauCell::Wildcard)],
            &ClosureConfig::default(),
        );
        assert_eq!(closure.len(), 3);
        assert!(closure[&AttrId(1)].is_wildcard());
        assert!(closure[&AttrId(2)].is_wildcard());
    }

    #[test]
    fn multi_attribute_premise() {
        // (a, b) → c needs both in the closure.
        let s = schema3();
        let sigma = vec![Pfd::normal_form("R", &s, &[("a", "x"), ("b", "y")], ("c", "z")).unwrap()];
        let only_a = pfd_closure(
            &sigma,
            3,
            &[(AttrId(0), cell("x"))],
            &ClosureConfig::default(),
        );
        assert!(!only_a.contains_key(&AttrId(2)));
        let both = pfd_closure(
            &sigma,
            3,
            &[(AttrId(0), cell("x")), (AttrId(1), cell("y"))],
            &ClosureConfig::default(),
        );
        assert_eq!(both[&AttrId(2)], cell("z"));
    }
}
