//! # `pfd-inference` — reasoning about pattern functional dependencies
//!
//! The fundamental analyses of §3 and §7 of *“Pattern Functional Dependencies
//! for Data Cleaning”* (PVLDB 13(5), 2020):
//!
//! - the six **inference axioms** of Fig. 3 as checked derivation steps
//!   ([`axioms`]) — Reflexivity, Inconsistency-EFQ, Augmentation,
//!   Transitivity, Reduction and LHS-Generalization;
//! - the **PFD-closure** algorithm of Fig. 7 ([`closure`]), the engine behind
//!   the completeness proof of Theorem 1;
//! - **implication** `Ψ ⊨ ψ` (coNP-complete, Theorem 2), decided through the
//!   closure, with a bounded small-model counterexample search for
//!   cross-validation ([`implication`]);
//! - **consistency** (NP-complete even over infinite domains, Theorem 3),
//!   decided by a membership-signature search implementing the §7.3 small
//!   model property ([`consistency`]), plus the paper's nontautology
//!   reduction as an executable artifact ([`reduction`]).
//!
//! ```
//! use pfd_core::Pfd;
//! use pfd_inference::implies;
//! use pfd_relation::Schema;
//!
//! let s = Schema::new("R", ["zip", "city", "state"]).unwrap();
//! let sigma = vec![
//!     Pfd::constant_normal_form("R", &s, "zip", r"[900]\D{2}", "city", "LA").unwrap(),
//!     Pfd::constant_normal_form("R", &s, "city", "LA", "state", "CA").unwrap(),
//! ];
//! let psi = Pfd::constant_normal_form("R", &s, "zip", r"[900]\D{2}", "state", "CA").unwrap();
//! assert!(implies(&sigma, &psi, 3)); // transitivity through the closure
//! ```

#![warn(missing_docs)]

pub mod axioms;
pub mod clause;
pub mod closure;
pub mod consistency;
pub mod cover;
pub mod implication;
pub mod reduction;

pub use axioms::{
    augmentation, inconsistency_efq, lhs_generalization, reduction as reduction_axiom, reflexivity,
    transitivity, Axiom, AxiomError, Proof, ProofStep,
};
pub use clause::{clauses_of, Clause};
pub use closure::{pfd_closure, Closure, ClosureConfig};
pub use consistency::{
    check_consistency, check_consistency_with, Consistency, Requirement, DEFAULT_STATE_LIMIT,
};
pub use cover::{equivalent_sets, minimal_cover};
pub use implication::{implies, refute_implication};
pub use reduction::{encode_nontautology, is_nontautology_via_pfds, Dnf, EncodedInstance, Literal};
