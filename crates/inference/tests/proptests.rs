//! Property-based tests for the reasoning machinery: closure monotonicity,
//! implication soundness against instance semantics, and consistency-witness
//! faithfulness.

use pfd_core::{Pfd, TableauCell};
use pfd_inference::{
    check_consistency, implies, pfd_closure, refute_implication, ClosureConfig, Consistency,
};
use pfd_relation::{AttrId, Relation, Schema};
use proptest::prelude::*;

/// Random small sets of constant normal-form PFDs over R(a, b, c) with a
/// tiny constant vocabulary, so chains and conflicts actually occur.
fn random_sigma() -> impl Strategy<Value = Vec<Pfd>> {
    let consts = prop_oneof![Just("x"), Just("y"), Just("90"), Just("LA")];
    let attr_pair = prop_oneof![
        Just(("a", "b")),
        Just(("b", "c")),
        Just(("a", "c")),
        Just(("c", "b")),
    ];
    proptest::collection::vec((attr_pair, consts.clone(), consts), 1..5).prop_map(|specs| {
        let schema = Schema::new("R", ["a", "b", "c"]).unwrap();
        specs
            .into_iter()
            .map(|((l, r), lc, rc)| Pfd::constant_normal_form("R", &schema, l, lc, r, rc).unwrap())
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn closure_is_monotone_in_sigma(sigma in random_sigma()) {
        let seed = vec![(AttrId(0), TableauCell::parse("x").unwrap())];
        let config = ClosureConfig::default();
        for split in 0..=sigma.len() {
            let small = pfd_closure(&sigma[..split], 3, &seed, &config);
            let full = pfd_closure(&sigma, 3, &seed, &config);
            for attr in small.keys() {
                prop_assert!(
                    full.contains_key(attr),
                    "closure lost attribute {attr} when Ψ grew"
                );
            }
        }
    }

    #[test]
    fn closure_contains_seed(sigma in random_sigma()) {
        let seed = vec![
            (AttrId(0), TableauCell::parse("x").unwrap()),
            (AttrId(2), TableauCell::Wildcard),
        ];
        let closure = pfd_closure(&sigma, 3, &seed, &ClosureConfig::default());
        for (attr, _) in &seed {
            prop_assert!(closure.contains_key(attr));
        }
    }

    #[test]
    fn members_are_always_implied(sigma in random_sigma()) {
        for psi in &sigma {
            prop_assert!(
                implies(&sigma, psi, 3),
                "Ψ failed to imply its own member {psi}"
            );
        }
    }

    #[test]
    fn implication_and_refuter_never_both_fire(sigma in random_sigma()) {
        let schema = Schema::new("R", ["a", "b", "c"]).unwrap();
        let psi = Pfd::constant_normal_form("R", &schema, "a", "x", "c", "LA").unwrap();
        let implied = implies(&sigma, &psi, 3);
        if implied {
            // Soundness: no counterexample may exist.
            let refutation = refute_implication(&sigma, &psi, 3, 50_000);
            prop_assert!(
                refutation.is_none(),
                "closure says implied but a model refutes it: {:?}",
                refutation
            );
        }
    }

    #[test]
    fn consistency_witness_satisfies_sigma(sigma in random_sigma()) {
        match check_consistency(&sigma, 3) {
            Consistency::Consistent(tuple) => {
                let rel = Relation::from_rows(
                    "R",
                    &["a", "b", "c"],
                    vec![tuple.iter().map(String::as_str).collect::<Vec<_>>()],
                )
                .unwrap();
                for pfd in &sigma {
                    prop_assert!(
                        pfd.satisfies(&rel),
                        "witness {:?} violates {}",
                        tuple,
                        pfd
                    );
                }
            }
            Consistency::Inconsistent => {
                // Constant normal-form PFDs always admit the escape tuple
                // whose values match no LHS constant, so inconsistency
                // should be impossible here.
                prop_assert!(false, "constant PFDs over infinite domains must be consistent");
            }
            Consistency::Unknown => {} // budget exceeded: no claim
        }
    }
}
