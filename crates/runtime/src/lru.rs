//! A small hand-rolled LRU recency tracker.
//!
//! The multi-tenant server keeps at most `max_resident` tenant group
//! indexes in memory and evicts the coldest when the cap is exceeded.
//! Tenant counts are tens, not millions, so this is a plain `VecDeque`
//! with linear touch — O(n) per operation, zero dependencies (the build
//! container has no registry route for an lru crate), and trivially
//! auditable. The tracker only orders keys; the owner decides which
//! candidates are actually evictable (resident, idle) by scanning
//! [`LruTracker::coldest_first`].

use std::collections::VecDeque;

/// Recency order over a set of keys: front = coldest, back = hottest.
#[derive(Debug, Clone, Default)]
pub struct LruTracker<K: Eq> {
    order: VecDeque<K>,
}

impl<K: Eq> LruTracker<K> {
    /// An empty tracker.
    pub fn new() -> Self {
        LruTracker {
            order: VecDeque::new(),
        }
    }

    /// Mark `key` as most recently used, inserting it if absent.
    pub fn touch(&mut self, key: K) {
        if let Some(pos) = self.order.iter().position(|k| *k == key) {
            self.order.remove(pos);
        }
        self.order.push_back(key);
    }

    /// Forget `key` entirely. Returns whether it was present.
    pub fn remove(&mut self, key: &K) -> bool {
        match self.order.iter().position(|k| k == key) {
            Some(pos) => {
                self.order.remove(pos);
                true
            }
            None => false,
        }
    }

    /// Keys from coldest to hottest.
    pub fn coldest_first(&self) -> impl Iterator<Item = &K> {
        self.order.iter()
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether no keys are tracked.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touch_moves_to_hot_end() {
        let mut lru = LruTracker::new();
        lru.touch("a");
        lru.touch("b");
        lru.touch("c");
        lru.touch("a");
        let order: Vec<_> = lru.coldest_first().copied().collect();
        assert_eq!(order, ["b", "c", "a"]);
    }

    #[test]
    fn remove_and_len() {
        let mut lru = LruTracker::new();
        assert!(lru.is_empty());
        lru.touch(1);
        lru.touch(2);
        assert_eq!(lru.len(), 2);
        assert!(lru.remove(&1));
        assert!(!lru.remove(&1));
        let order: Vec<_> = lru.coldest_first().copied().collect();
        assert_eq!(order, [2]);
    }

    #[test]
    fn touch_is_idempotent_on_singleton() {
        let mut lru = LruTracker::new();
        lru.touch("only");
        lru.touch("only");
        assert_eq!(lru.len(), 1);
    }
}
