//! Shared work-stealing runtime for the PFD workspace.
//!
//! Two schedulers over the same substrate (mutex-guarded deques, a global
//! injector, steal-back-half rebalancing), plus the bookkeeping the
//! multi-tenant server needs:
//!
//! - [`pool`] — the scoped, borrow-friendly `parallel_map` that the
//!   discovery lattice and check reconciliation have used since PR 2. It
//!   spins workers up per call over `std::thread::scope`, so closures may
//!   borrow from the caller's stack. Re-exported from `pfd_discovery` for
//!   backward compatibility.
//! - [`executor`] — a persistent work-stealing [`executor::Executor`] for
//!   long-lived servers: `'static` jobs, condvar parking, panic capture,
//!   and `wait_idle` barriers. Tenant drain jobs in `pfd_core::server`
//!   ride this.
//! - [`lru`] — a small hand-rolled [`lru::LruTracker`] (no registry route
//!   for an lru crate) used to pick cold tenants for eviction.
//!
//! The crate is dependency-free and sits below `relation`/`core`/
//! `discovery` in the workspace graph.

#![warn(missing_docs)]

pub mod executor;
pub mod lru;
pub mod pool;

pub use executor::Executor;
pub use lru::LruTracker;
pub use pool::{map_with_stats, parallel_map};

/// Default worker count for schedulers in this crate: the machine's
/// available parallelism, with a fallback for platforms where the probe
/// errors.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}
