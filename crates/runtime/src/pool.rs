//! Scoped work-stealing `parallel_map`.
//!
//! A static per-thread chunking of skewed workloads (one discovery
//! candidate dominating a lattice level, one tenant's chase dwarfing the
//! rest) leaves most threads idle while one grinds through the heavy
//! chunk. This pool keeps a shared injector of index batches plus one
//! deque per worker: a worker drains its own deque from the front, refills
//! from the injector, and when both are empty steals the back half of a
//! victim's deque. Results are written back in input order, so callers
//! observe exactly the sequential output regardless of the interleaving.
//!
//! Built on `std::thread::scope` and mutex-guarded `VecDeque`s — the tasks
//! this pool runs (candidate dependency checks, per-attribute index
//! builds) are coarse enough that lock traffic is noise, and it keeps the
//! workspace dependency-free. Because workers are scoped, `f` may borrow
//! from the caller's stack; for `'static` jobs on long-lived threads use
//! [`crate::executor::Executor`] instead.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Upper bound on worker threads (matches `available_parallelism`, with a
/// fallback for platforms where it errors).
fn worker_count(items: usize) -> usize {
    crate::default_parallelism().min(items.max(1))
}

/// Batch size fed from the injector: small enough to rebalance, large
/// enough to amortize a lock round-trip.
fn batch_size(items: usize, workers: usize) -> usize {
    (items / (workers * 8)).max(1)
}

struct Shared {
    /// Per-worker deques of item indices.
    deques: Vec<Mutex<VecDeque<usize>>>,
    /// Global batch queue; workers refill from here before stealing.
    injector: Mutex<VecDeque<std::ops::Range<usize>>>,
    /// Items not yet completed; workers exit when it reaches zero.
    remaining: AtomicUsize,
    /// Steal operations performed (observability / tests).
    steals: AtomicUsize,
}

/// Map `f` over `items` on a work-stealing pool, preserving input order in
/// the output. Falls back to a sequential map when the pool would have a
/// single worker.
pub fn parallel_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    map_with_stats(items, f).0
}

/// [`parallel_map`] plus the number of steal operations that occurred
/// (always 0 on the sequential fallback).
pub fn map_with_stats<T: Sync, R: Send>(
    items: &[T],
    f: impl Fn(&T) -> R + Sync,
) -> (Vec<R>, usize) {
    let workers = worker_count(items.len());
    if workers <= 1 || items.len() <= 1 {
        return (items.iter().map(&f).collect(), 0);
    }

    let batch = batch_size(items.len(), workers);
    let shared = Shared {
        deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        injector: Mutex::new(VecDeque::new()),
        remaining: AtomicUsize::new(items.len()),
        steals: AtomicUsize::new(0),
    };

    // Seed: one starter batch per worker, the rest into the injector.
    {
        let mut injector = shared.injector.lock().expect("injector poisoned");
        let mut next = 0usize;
        for deque in &shared.deques {
            if next >= items.len() {
                break;
            }
            let end = (next + batch).min(items.len());
            deque.lock().expect("deque poisoned").extend(next..end);
            next = end;
        }
        while next < items.len() {
            let end = (next + batch).min(items.len());
            injector.push_back(next..end);
            next = end;
        }
    }

    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let shared = &shared;
                let f = &f;
                scope.spawn(move || worker_loop(w, shared, items, f))
            })
            .collect();
        for handle in handles {
            for (idx, result) in handle.join().expect("pool worker panicked") {
                slots[idx] = Some(result);
            }
        }
    });

    let out = slots
        .into_iter()
        .map(|r| r.expect("every item completed"))
        .collect();
    (out, shared.steals.load(Ordering::Relaxed))
}

fn worker_loop<T: Sync, R: Send>(
    me: usize,
    shared: &Shared,
    items: &[T],
    f: &(impl Fn(&T) -> R + Sync),
) -> Vec<(usize, R)> {
    let mut done: Vec<(usize, R)> = Vec::new();
    loop {
        // 1. Own deque, front first.
        let next = shared.deques[me]
            .lock()
            .expect("deque poisoned")
            .pop_front();
        if let Some(idx) = next {
            done.push((idx, f(&items[idx])));
            shared.remaining.fetch_sub(1, Ordering::Release);
            continue;
        }
        if shared.remaining.load(Ordering::Acquire) == 0 {
            return done;
        }
        // 2. Refill from the injector.
        let refill = shared
            .injector
            .lock()
            .expect("injector poisoned")
            .pop_front();
        if let Some(range) = refill {
            shared.deques[me]
                .lock()
                .expect("deque poisoned")
                .extend(range);
            continue;
        }
        // 3. Steal the back half of the fullest victim.
        let victim = (0..shared.deques.len())
            .filter(|&v| v != me)
            .max_by_key(|&v| shared.deques[v].lock().expect("deque poisoned").len());
        let mut stolen: VecDeque<usize> = VecDeque::new();
        if let Some(v) = victim {
            let mut vd = shared.deques[v].lock().expect("deque poisoned");
            let take = vd.len().div_ceil(2);
            for _ in 0..take {
                if let Some(idx) = vd.pop_back() {
                    stolen.push_front(idx);
                }
            }
        }
        if stolen.is_empty() {
            // The injector was empty and the victim scan saw every deque
            // empty. Tasks never spawn tasks, so queued work only ever
            // shrinks: nothing can arrive for this worker again, and any
            // item that raced into another deque mid-scan belongs to the
            // worker that took it. Exit instead of spinning on the tail.
            return done;
        }
        shared.steals.fetch_add(1, Ordering::Relaxed);
        shared.deques[me]
            .lock()
            .expect("deque poisoned")
            .append(&mut stolen);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<usize> = Vec::new();
        assert!(parallel_map(&empty, |&x| x).is_empty());
        assert_eq!(parallel_map(&[41], |&x| x + 1), vec![42]);
    }

    #[test]
    fn skewed_workloads_complete() {
        // One pathologically heavy item at the front: static chunking would
        // serialize behind it; the pool must still return the right answer.
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, |&x| {
            let spins = if x == 0 { 200_000 } else { 50 };
            let mut acc = x;
            for i in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(acc);
            x * 3
        });
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn matches_sequential_on_strings() {
        let items: Vec<String> = (0..100).map(|i| format!("value-{i}")).collect();
        let seq: Vec<usize> = items.iter().map(|s| s.len()).collect();
        let par = parallel_map(&items, |s| s.len());
        assert_eq!(seq, par);
    }
}
