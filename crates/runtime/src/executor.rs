//! Persistent work-stealing executor for long-lived servers.
//!
//! The scoped [`crate::pool`] spins threads up per call, which is right
//! for one-shot fan-outs (a discovery lattice level) but wrong for a
//! server that schedules small jobs continuously: the multi-tenant session
//! server submits one drain job per touched tenant, thousands of times per
//! run. This executor keeps a fixed set of workers alive and reuses the
//! same stealing discipline as the pool — own deque from the front, global
//! injector, steal the back half of the fullest victim — with condvar
//! parking when the system is empty.
//!
//! Jobs are `'static` boxed closures. Jobs spawned *from* a worker thread
//! land on that worker's own deque (the common "tenant still has pending
//! input, reschedule the drain" continuation), which is what makes
//! stealing meaningful: an idle worker lifts the backlog off a busy one.
//!
//! Panics in jobs are caught and recorded rather than tearing down the
//! worker; [`Executor::take_panics`] surfaces them so callers (and the
//! soak tests) can fail loudly instead of deadlocking on a dead worker.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// `(shared-ptr address, worker index)` when the current thread is an
    /// executor worker; lets `spawn` route to the local deque.
    static CURRENT_WORKER: Cell<(usize, usize)> = const { Cell::new((0, usize::MAX)) };
}

/// Everything workers share; `Executor` holds it in an `Arc` so worker
/// threads can outlive individual borrows.
struct Shared {
    /// Per-worker job deques (local pushes land here; victims for steals).
    deques: Vec<Mutex<VecDeque<Job>>>,
    /// Injector + counters behind one lock so parking can be raced-checked.
    gate: Mutex<Gate>,
    /// Signalled on every push and on drain-to-idle; workers park here.
    work: Condvar,
    /// Signalled when `active` drops to zero; `wait_idle` parks here.
    idle: Condvar,
    /// Steal operations performed (observability / tests).
    steals: AtomicUsize,
    /// Panic payloads captured from jobs, oldest first.
    panics: Mutex<Vec<String>>,
}

struct Gate {
    /// Jobs not yet assigned to any worker.
    injector: VecDeque<Job>,
    /// Jobs queued anywhere plus jobs currently running.
    active: usize,
    /// Monotonic push counter; parking re-checks it to close the race
    /// between a failed steal scan and the condvar wait.
    pushes: u64,
    shutdown: bool,
}

/// A fixed-size pool of long-lived work-stealing workers.
///
/// Dropping the executor signals shutdown, lets queued jobs drain, and
/// joins every worker.
pub struct Executor {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl Executor {
    /// Spin up `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            gate: Mutex::new(Gate {
                injector: VecDeque::new(),
                active: 0,
                pushes: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
            steals: AtomicUsize::new(0),
            panics: Mutex::new(Vec::new()),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pfd-runtime-{w}"))
                    .spawn(move || worker_main(w, &shared))
                    .expect("spawn executor worker")
            })
            .collect();
        Executor { shared, handles }
    }

    /// An executor sized to the machine's available parallelism.
    pub fn with_default_workers() -> Self {
        Executor::new(crate::default_parallelism())
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.deques.len()
    }

    /// Queue a job. From a worker thread of this executor the job lands on
    /// that worker's own deque (stealable by idle peers); from any other
    /// thread it goes to the global injector.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        let job: Job = Box::new(job);
        let me = Arc::as_ptr(&self.shared) as usize;
        let local = CURRENT_WORKER.with(|c| {
            let (addr, idx) = c.get();
            (addr == me).then_some(idx)
        });
        let mut gate = self.shared.gate.lock().expect("gate poisoned");
        assert!(!gate.shutdown, "spawn on a shut-down executor");
        gate.active += 1;
        gate.pushes += 1;
        match local {
            Some(idx) => self.shared.deques[idx]
                .lock()
                .expect("deque poisoned")
                .push_back(job),
            None => gate.injector.push_back(job),
        }
        drop(gate);
        self.shared.work.notify_one();
    }

    /// Block until every queued and running job has finished. Calling this
    /// from a worker thread would deadlock; it is meant for the thread
    /// that owns the executor.
    pub fn wait_idle(&self) {
        let mut gate = self.shared.gate.lock().expect("gate poisoned");
        while gate.active > 0 {
            gate = self.shared.idle.wait(gate).expect("gate poisoned");
        }
    }

    /// Total steal operations since construction.
    pub fn steals(&self) -> usize {
        self.shared.steals.load(Ordering::Relaxed)
    }

    /// Drain captured job panics (oldest first). Empty in a healthy run.
    pub fn take_panics(&self) -> Vec<String> {
        std::mem::take(&mut *self.shared.panics.lock().expect("panics poisoned"))
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        {
            let mut gate = self.shared.gate.lock().expect("gate poisoned");
            gate.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_main(me: usize, shared: &Arc<Shared>) {
    CURRENT_WORKER.with(|c| c.set((Arc::as_ptr(shared) as usize, me)));
    loop {
        // 1. Own deque, front first.
        let job = shared.deques[me]
            .lock()
            .expect("deque poisoned")
            .pop_front();
        if let Some(job) = job {
            run_job(shared, job);
            continue;
        }
        // 2. Injector, then decide whether to exit or remember the push
        //    ticket for the parking race check.
        let seen = {
            let mut gate = shared.gate.lock().expect("gate poisoned");
            if let Some(job) = gate.injector.pop_front() {
                drop(gate);
                run_job(shared, job);
                continue;
            }
            if gate.shutdown && gate.active == 0 {
                return;
            }
            gate.pushes
        };
        // 3. Steal the back half of the fullest victim.
        let mut stolen: VecDeque<Job> = VecDeque::new();
        let victim = (0..shared.deques.len())
            .filter(|&v| v != me)
            .max_by_key(|&v| shared.deques[v].lock().expect("deque poisoned").len());
        if let Some(v) = victim {
            let mut vd = shared.deques[v].lock().expect("deque poisoned");
            let take = vd.len().div_ceil(2);
            for _ in 0..take {
                if let Some(job) = vd.pop_back() {
                    stolen.push_front(job);
                }
            }
        }
        if !stolen.is_empty() {
            shared.steals.fetch_add(1, Ordering::Relaxed);
            shared.deques[me]
                .lock()
                .expect("deque poisoned")
                .append(&mut stolen);
            continue;
        }
        // 4. Nothing anywhere: park. A push that raced the steal scan bumps
        //    `pushes`, so re-checking the ticket under the gate lock means
        //    no job can be queued without either waking us or being seen
        //    here before we wait.
        let gate = shared.gate.lock().expect("gate poisoned");
        if gate.shutdown && gate.active == 0 {
            return;
        }
        if gate.pushes == seen {
            // Safe under shutdown too: the final job's completion and
            // `Drop` both notify `work`, and the exit condition is
            // re-checked at the top of the loop.
            let _unused = shared.work.wait(gate).expect("gate poisoned");
        }
    }
}

fn run_job(shared: &Shared, job: Job) {
    let result = catch_unwind(AssertUnwindSafe(job));
    if let Err(payload) = result {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "job panicked with a non-string payload".to_string());
        shared.panics.lock().expect("panics poisoned").push(message);
    }
    let mut gate = shared.gate.lock().expect("gate poisoned");
    gate.active -= 1;
    if gate.active == 0 {
        drop(gate);
        shared.idle.notify_all();
        // Wake parked workers so they can observe shutdown-and-drained.
        shared.work.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_job_exactly_once() {
        let executor = Executor::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        for i in 0..500u64 {
            let counter = Arc::clone(&counter);
            executor.spawn(move || {
                counter.fetch_add(i + 1, Ordering::Relaxed);
            });
        }
        executor.wait_idle();
        // Sum of 1..=500.
        assert_eq!(counter.load(Ordering::Relaxed), 500 * 501 / 2);
        assert!(executor.take_panics().is_empty());
    }

    #[test]
    fn worker_spawned_continuations_complete() {
        // Jobs that respawn themselves land on worker-local deques; the
        // chain must still drain and wait_idle must observe the tail.
        let executor = Arc::new(Executor::new(3));
        let counter = Arc::new(AtomicU64::new(0));
        fn chain(executor: &Arc<Executor>, counter: &Arc<AtomicU64>, depth: u32) {
            counter.fetch_add(1, Ordering::Relaxed);
            if depth > 0 {
                let e = Arc::clone(executor);
                let c = Arc::clone(counter);
                executor.spawn(move || chain(&e, &c, depth - 1));
            }
        }
        for _ in 0..8 {
            let e = Arc::clone(&executor);
            let c = Arc::clone(&counter);
            executor.spawn(move || chain(&e, &c, 63));
        }
        executor.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 8 * 64);
    }

    #[test]
    fn captures_panics_and_keeps_serving() {
        let executor = Executor::new(2);
        executor.spawn(|| panic!("boom in job"));
        let done = Arc::new(AtomicU64::new(0));
        let d = Arc::clone(&done);
        executor.spawn(move || {
            d.store(7, Ordering::Relaxed);
        });
        executor.wait_idle();
        assert_eq!(done.load(Ordering::Relaxed), 7);
        let panics = executor.take_panics();
        assert_eq!(panics.len(), 1);
        assert!(panics[0].contains("boom in job"));
    }

    #[test]
    fn wait_idle_on_empty_executor_returns() {
        let executor = Executor::new(2);
        executor.wait_idle();
        assert_eq!(executor.steals(), executor.steals());
    }

    #[test]
    fn single_worker_executor_drains() {
        let executor = Executor::new(1);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            executor.spawn(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        executor.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn drop_drains_queued_jobs() {
        let counter = Arc::new(AtomicU64::new(0));
        {
            let executor = Executor::new(2);
            for _ in 0..64 {
                let counter = Arc::clone(&counter);
                executor.spawn(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            // No wait_idle: Drop must still let queued jobs finish.
        }
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }
}
