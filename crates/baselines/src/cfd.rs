//! A CFDFinder-style miner for (approximate) constant CFDs
//! (Fan, Geerts, Li, Xiong, *Discovering conditional functional
//! dependencies*, TKDE 23(5), 2011 — references [12, 13] of the paper).
//!
//! Mines constant CFDs `([A = a] → [B = b])` with minimum support and a
//! confidence threshold — §5.1 runs it "with the default parameter setting,
//! except for the confidence value, which was set to 0.995 instead of 1 to
//! allow CFDFinder to discover CFDs over dirty data" — plus approximate
//! whole-value variable CFDs (`A → B` with few violating rows). Everything
//! operates on **entire attribute values**: this is precisely the
//! limitation PFDs lift.

use pfd_core::Pfd;
use pfd_relation::{AttrId, Relation};
use std::collections::BTreeMap;

/// A discovered constant CFD `([A = lhs_value] → [B = rhs_value])`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ConstantCfd {
    /// The condition attribute `A`.
    pub lhs: AttrId,
    /// The condition constant `a`.
    pub lhs_value: String,
    /// The determined attribute `B`.
    pub rhs: AttrId,
    /// The determined constant `b`.
    pub rhs_value: String,
    /// Rows whose `A` value equals `a`.
    pub support: usize,
    /// Agreeing rows over the support (scaled by 1e6 for Ord).
    pub confidence_ppm: u64,
}

/// A variable CFD `A → B` holding with at most `1 - confidence` violations.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct VariableCfd {
    /// Determinant attribute.
    pub lhs: AttrId,
    /// Determined attribute.
    pub rhs: AttrId,
    /// Rows that would have to change for the FD to hold exactly.
    pub violating_rows: usize,
}

/// One embedded dependency with its mined CFDs.
#[derive(Debug, Clone)]
pub struct CfdDependency {
    /// Determinant attribute.
    pub lhs: AttrId,
    /// Determined attribute.
    pub rhs: AttrId,
    /// The qualifying constant CFDs.
    pub constants: Vec<ConstantCfd>,
    /// The approximate whole-value FD, if it meets the confidence bar.
    pub variable: Option<VariableCfd>,
    /// Rows covered by the constant CFDs' LHS values.
    pub coverage: usize,
}

/// Miner configuration.
#[derive(Debug, Clone)]
pub struct CfdConfig {
    /// Minimum rows sharing the LHS value.
    pub min_support: usize,
    /// Confidence threshold (the paper uses 0.995).
    pub confidence: f64,
    /// Minimum covered-row fraction to report an embedded dependency —
    /// aligned with the PFD miner's coverage restriction for a fair
    /// comparison.
    pub min_coverage: f64,
}

impl Default for CfdConfig {
    fn default() -> Self {
        CfdConfig {
            min_support: 5,
            confidence: 0.995,
            min_coverage: 0.10,
        }
    }
}

/// Mine all single-LHS embedded dependencies with their CFDs.
pub fn cfd_discover(rel: &Relation, config: &CfdConfig) -> Vec<CfdDependency> {
    let arity = rel.schema().arity();
    let n = rel.num_rows();
    let mut out = Vec::new();
    for a in 0..arity {
        for b in 0..arity {
            if a == b {
                continue;
            }
            if let Some(dep) = mine_pair(rel, AttrId(a), AttrId(b), config, n) {
                out.push(dep);
            }
        }
    }
    out
}

fn mine_pair(
    rel: &Relation,
    a: AttrId,
    b: AttrId,
    config: &CfdConfig,
    n: usize,
) -> Option<CfdDependency> {
    // Partition rows by the full LHS value.
    let mut groups: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (rid, _) in rel.iter_rows() {
        let v = rel.cell(rid, a);
        if !v.is_empty() {
            groups.entry(v).or_default().push(rid);
        }
    }

    let mut constants = Vec::new();
    let mut coverage = 0usize;
    let mut total_violations = 0usize;
    for (value, rows) in &groups {
        // Most frequent RHS value in the group.
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for &rid in rows {
            *counts.entry(rel.cell(rid, b)).or_insert(0) += 1;
        }
        let (&best, &count) = counts
            .iter()
            .max_by_key(|(v, c)| (**c, std::cmp::Reverse(**v)))
            .expect("non-empty group");
        total_violations += rows.len() - count;
        if rows.len() < config.min_support {
            continue;
        }
        let confidence = count as f64 / rows.len() as f64;
        if confidence >= config.confidence {
            constants.push(ConstantCfd {
                lhs: a,
                lhs_value: value.to_string(),
                rhs: b,
                rhs_value: best.to_string(),
                support: rows.len(),
                confidence_ppm: (confidence * 1e6) as u64,
            });
            coverage += rows.len();
        }
    }

    // Approximate variable CFD: A → B with few violating rows overall.
    let variable = if n > 0 && (total_violations as f64) <= (1.0 - config.confidence) * n as f64 {
        Some(VariableCfd {
            lhs: a,
            rhs: b,
            violating_rows: total_violations,
        })
    } else {
        None
    };

    let required = ((n as f64) * config.min_coverage).ceil() as usize;
    if (constants.is_empty() || coverage < required) && variable.is_none() {
        return None;
    }
    if constants.is_empty() && variable.is_none() {
        return None;
    }
    // Report when either the constants reach coverage or a variable CFD
    // holds.
    if coverage < required && variable.is_none() {
        return None;
    }
    Some(CfdDependency {
        lhs: a,
        rhs: b,
        constants,
        variable,
        coverage,
    })
}

/// Convert a mined dependency into executable PFDs (constant CFDs are the
/// whole-value special case of PFDs, §6).
pub fn to_pfds(rel: &Relation, dep: &CfdDependency) -> Vec<Pfd> {
    let schema = rel.schema();
    let names = schema.attribute_names();
    let la = names[dep.lhs.index()].as_str();
    let lb = names[dep.rhs.index()].as_str();
    let mut out = Vec::new();
    for c in &dep.constants {
        if let Ok(pfd) = Pfd::cfd(
            schema.relation(),
            schema,
            &[(la, Some(c.lhs_value.as_str()))],
            (lb, Some(c.rhs_value.as_str())),
        ) {
            out.push(pfd);
        }
    }
    if dep.variable.is_some() {
        if let Ok(pfd) = Pfd::fd(schema.relation(), schema, &[la], &[lb]) {
            out.push(pfd);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(attrs: &[&str], rows: Vec<Vec<&str>>) -> Relation {
        Relation::from_rows("T", attrs, rows).unwrap()
    }

    #[test]
    fn finds_constant_cfds_with_support() {
        // 6 Johns (M), 6 Susans (F): both constants qualify at K=5.
        let mut rows = Vec::new();
        for _ in 0..6 {
            rows.push(vec!["John", "M"]);
            rows.push(vec!["Susan", "F"]);
        }
        let r = rel(&["name", "gender"], rows);
        let deps = cfd_discover(&r, &CfdConfig::default());
        let dep = deps
            .iter()
            .find(|d| d.lhs == AttrId(0) && d.rhs == AttrId(1))
            .expect("name → gender mined");
        assert_eq!(dep.constants.len(), 2);
        assert!(dep.variable.is_some(), "clean data: variable CFD holds");
    }

    #[test]
    fn whole_value_limitation() {
        // The §1.1 example: distinct full names → no support ≥ 5 → nothing.
        let r = rel(
            &["name", "gender"],
            vec![
                vec!["John Charles", "M"],
                vec!["John Bosco", "M"],
                vec!["Susan Orlean", "F"],
                vec!["Susan Boyle", "M"],
            ],
        );
        let deps = cfd_discover(&r, &CfdConfig::default());
        let name_gender = deps
            .iter()
            .find(|d| d.lhs == AttrId(0) && d.rhs == AttrId(1));
        // A variable CFD may be claimed (name is a key), but no constant CFD
        // can exist — whole values have no redundancy.
        if let Some(dep) = name_gender {
            assert!(dep.constants.is_empty());
        }
    }

    #[test]
    fn confidence_tolerates_dirt() {
        // 199 clean + 1 dirty row in a 200-row group: confidence 0.995.
        let mut rows: Vec<Vec<&str>> = (0..199).map(|_| vec!["90001", "LA"]).collect();
        rows.push(vec!["90001", "NY"]);
        let r = rel(&["zip", "city"], rows);
        let deps = cfd_discover(&r, &CfdConfig::default());
        let dep = deps
            .iter()
            .find(|d| d.lhs == AttrId(0) && d.rhs == AttrId(1))
            .expect("zip → city mined despite one dirty row");
        assert_eq!(dep.constants.len(), 1);
        assert_eq!(dep.constants[0].rhs_value, "LA");
    }

    #[test]
    fn confidence_one_rejects_dirt() {
        let mut rows: Vec<Vec<&str>> = (0..99).map(|_| vec!["90001", "LA"]).collect();
        rows.push(vec!["90001", "NY"]);
        let r = rel(&["zip", "city"], rows);
        let strict = CfdConfig {
            confidence: 1.0,
            ..CfdConfig::default()
        };
        let deps = cfd_discover(&r, &strict);
        assert!(
            deps.iter()
                .all(|d| !(d.lhs == AttrId(0) && d.rhs == AttrId(1)) || d.constants.is_empty()),
            "confidence 1.0 must reject the 99%-pure group"
        );
    }

    #[test]
    fn support_threshold() {
        // Groups of 3 < K = 5: no constants.
        let mut rows = Vec::new();
        for _ in 0..3 {
            rows.push(vec!["a", "1"]);
            rows.push(vec!["b", "2"]);
        }
        let r = rel(&["x", "y"], rows);
        let deps = cfd_discover(&r, &CfdConfig::default());
        for d in &deps {
            assert!(d.constants.is_empty(), "{d:?}");
        }
    }

    #[test]
    fn to_pfds_roundtrip() {
        let mut rows = Vec::new();
        for _ in 0..6 {
            rows.push(vec!["John", "M"]);
            rows.push(vec!["Susan", "F"]);
        }
        let r = rel(&["name", "gender"], rows);
        let deps = cfd_discover(&r, &CfdConfig::default());
        let dep = deps
            .iter()
            .find(|d| d.lhs == AttrId(0) && d.rhs == AttrId(1))
            .unwrap();
        let pfds = to_pfds(&r, dep);
        assert!(!pfds.is_empty());
        for pfd in &pfds {
            assert!(pfd.satisfies(&r), "mined CFD must hold on clean data");
        }
    }

    #[test]
    fn empty_values_ignored() {
        let r = rel(
            &["x", "y"],
            vec![vec!["", "1"], vec!["", "2"], vec!["a", "3"]],
        );
        let deps = cfd_discover(&r, &CfdConfig::default());
        for d in &deps {
            for c in &d.constants {
                assert!(!c.lhs_value.is_empty());
            }
        }
    }

    #[test]
    fn deterministic_output() {
        let mut rows = Vec::new();
        for i in 0..30 {
            rows.push(vec![
                if i % 2 == 0 { "p" } else { "q" },
                if i % 2 == 0 { "1" } else { "2" },
            ]);
        }
        let r = rel(&["x", "y"], rows);
        let a = cfd_discover(&r, &CfdConfig::default());
        let b = cfd_discover(&r, &CfdConfig::default());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.constants, y.constants);
        }
    }
}
