//! FDep — functional dependency discovery via difference sets
//! (Flach & Savnik, *Database dependency discovery: a machine learning
//! approach*, AI Communications 12(3), 1999 — reference \[14\] of the paper).
//!
//! For every tuple pair, the **difference set** is the set of attributes on
//! which the tuples disagree. `X → A` holds on the instance iff every
//! difference set containing `A` also intersects `X` — i.e. the minimal FDs
//! with RHS `A` are the minimal hitting sets of
//! `{D ∖ {A} : D a difference set, A ∈ D}`. With the paper's ≤ 9-attribute
//! tables the hitting-set enumeration is tiny; the `O(n²)` pair scan is the
//! cost that Table 7's runtime rows show.

use pfd_relation::{AttrId, Relation};
use std::collections::BTreeSet;

/// A discovered functional dependency `X → A`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Fd {
    /// Determinant attribute set `X`.
    pub lhs: Vec<AttrId>,
    /// Determined attribute `A`.
    pub rhs: AttrId,
}

/// FDep configuration.
#[derive(Debug, Clone)]
pub struct FdepConfig {
    /// Cap on tuple pairs; beyond it a deterministic stride sample is used
    /// (keeps the quadratic scan bounded on large tables).
    pub max_pairs: usize,
    /// Maximum LHS size to report.
    pub max_lhs: usize,
}

impl Default for FdepConfig {
    fn default() -> Self {
        FdepConfig {
            max_pairs: 20_000_000,
            max_lhs: 4,
        }
    }
}

/// Attribute-set bitmask (arity ≤ 64 is far beyond the paper's tables).
type Mask = u64;

fn difference_sets(rel: &Relation, config: &FdepConfig) -> Vec<Mask> {
    let n = rel.num_rows();
    let arity = rel.schema().arity();
    let total_pairs = n.saturating_mul(n.saturating_sub(1)) / 2;
    // Deterministic stride sampling when the pair count explodes.
    let stride = (total_pairs / config.max_pairs.max(1)).max(1);

    let mut sets: BTreeSet<Mask> = BTreeSet::new();
    let mut pair_index = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            pair_index += 1;
            if stride > 1 && !pair_index.is_multiple_of(stride) {
                continue;
            }
            let mut mask: Mask = 0;
            for a in 0..arity {
                if rel.cell(i, AttrId(a)) != rel.cell(j, AttrId(a)) {
                    mask |= 1 << a;
                }
            }
            if mask != 0 {
                sets.insert(mask);
            }
        }
    }
    sets.into_iter().collect()
}

/// Remove non-minimal (superset) masks.
fn minimize(mut masks: Vec<Mask>) -> Vec<Mask> {
    masks.sort_by_key(|m| m.count_ones());
    let mut kept: Vec<Mask> = Vec::new();
    'outer: for m in masks {
        for k in &kept {
            if m & k == *k {
                continue 'outer; // m ⊇ k
            }
        }
        kept.push(m);
    }
    kept
}

/// All minimal hitting sets of `sets` over attributes in `universe`, up to
/// `max_size` attributes.
fn minimal_hitting_sets(sets: &[Mask], universe: Mask, max_size: usize) -> Vec<Mask> {
    let mut results: Vec<Mask> = Vec::new();
    fn rec(
        sets: &[Mask],
        universe: Mask,
        max_size: usize,
        chosen: Mask,
        from: u32,
        results: &mut Vec<Mask>,
    ) {
        // First set not yet hit.
        match sets.iter().find(|s| *s & chosen == 0) {
            None => {
                // chosen hits everything; keep if minimal vs existing.
                if !results.iter().any(|r| chosen & r == *r) {
                    results.retain(|r| r & chosen != chosen || *r == chosen);
                    results.push(chosen);
                }
            }
            Some(&unhit) => {
                if chosen.count_ones() as usize >= max_size {
                    return;
                }
                let mut candidates = unhit & universe;
                while candidates != 0 {
                    let bit = candidates & candidates.wrapping_neg();
                    candidates &= candidates - 1;
                    // Enforce an ordering to avoid duplicate exploration:
                    // only extend with attributes ≥ the branch frontier
                    // unless they hit the current unhit set (which `bit`
                    // does by construction).
                    let attr = bit.trailing_zeros();
                    if attr < from && chosen & bit == 0 {
                        // Still allowed: different branches may need lower
                        // bits; dedup handled by minimality filter above.
                    }
                    rec(sets, universe, max_size, chosen | bit, attr, results);
                }
            }
        }
    }
    rec(sets, universe, max_size, 0, 0, &mut results);
    // Final minimality sweep.
    let mut out: Vec<Mask> = Vec::new();
    let mut sorted = results;
    sorted.sort_by_key(|m| m.count_ones());
    'outer: for m in sorted {
        for k in &out {
            if m & k == *k {
                continue 'outer;
            }
        }
        out.push(m);
    }
    out
}

/// Discover all minimal FDs of the relation.
pub fn fdep(rel: &Relation, config: &FdepConfig) -> Vec<Fd> {
    let arity = rel.schema().arity();
    let diffs = difference_sets(rel, config);
    let mut out: Vec<Fd> = Vec::new();
    for a in 0..arity {
        let abit: Mask = 1 << a;
        // Evidence: difference sets disagreeing on A, minus A itself. X → A
        // is violated by a pair iff they agree on X but differ on A, so X
        // must hit every such set.
        let evidence: Vec<Mask> = diffs
            .iter()
            .filter(|d| *d & abit != 0)
            .map(|d| d & !abit)
            .collect();
        if evidence.contains(&0) {
            // Two tuples differ *only* on A: no FD with RHS A exists.
            continue;
        }
        let evidence = minimize(evidence);
        let universe: Mask = ((1u64 << arity) - 1) & !abit;
        for hs in minimal_hitting_sets(&evidence, universe, config.max_lhs) {
            let lhs: Vec<AttrId> = (0..arity)
                .filter(|i| hs & (1 << i) != 0)
                .map(AttrId)
                .collect();
            if !lhs.is_empty() {
                out.push(Fd {
                    lhs,
                    rhs: AttrId(a),
                });
            }
        }
    }
    out.sort();
    out
}

/// Only the single-LHS FDs, as compared in Table 7 (the paper "focuses on
/// single LHS attribute PFDs in the experimental evaluation").
pub fn fdep_single_lhs(rel: &Relation, config: &FdepConfig) -> Vec<Fd> {
    fdep(rel, config)
        .into_iter()
        .filter(|fd| fd.lhs.len() == 1)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfd_core::Pfd;

    fn rel(attrs: &[&str], rows: Vec<Vec<&str>>) -> Relation {
        Relation::from_rows("T", attrs, rows).unwrap()
    }

    /// Every reported FD must hold on the instance; every holding
    /// single-attr FD must be reported (soundness + completeness check via
    /// the PFD machinery).
    fn verify_sound_complete(r: &Relation) {
        let fds = fdep(r, &FdepConfig::default());
        let names = r.schema().attribute_names();
        for fd in &fds {
            let lhs: Vec<&str> = fd.lhs.iter().map(|a| names[a.index()].as_str()).collect();
            let rhs = names[fd.rhs.index()].as_str();
            let as_pfd = Pfd::fd("T", r.schema(), &lhs, &[rhs]).unwrap();
            assert!(as_pfd.satisfies(r), "reported FD {lhs:?} → {rhs} violated");
        }
        // Completeness for single-attribute LHS.
        for a in r.schema().attr_ids() {
            for b in r.schema().attr_ids() {
                if a == b {
                    continue;
                }
                let la = names[a.index()].as_str();
                let lb = names[b.index()].as_str();
                let as_pfd = Pfd::fd("T", r.schema(), &[la], &[lb]).unwrap();
                if as_pfd.satisfies(r) {
                    // Some reported FD with RHS b must have LHS ⊆ {a}.
                    assert!(
                        fds.iter().any(|fd| fd.rhs == b && fd.lhs == vec![a]),
                        "holding FD {la} → {lb} not reported"
                    );
                }
            }
        }
    }

    #[test]
    fn textbook_example() {
        // a → b holds; b → a does not; (a) is a key for c.
        let r = rel(
            &["a", "b", "c"],
            vec![
                vec!["1", "x", "p"],
                vec!["2", "x", "q"],
                vec!["3", "y", "r"],
            ],
        );
        let fds = fdep(&r, &FdepConfig::default());
        let a = AttrId(0);
        let b = AttrId(1);
        assert!(fds.contains(&Fd {
            lhs: vec![a],
            rhs: b
        }));
        assert!(!fds.contains(&Fd {
            lhs: vec![b],
            rhs: a
        }));
        verify_sound_complete(&r);
    }

    #[test]
    fn zip_table_fds() {
        // The paper's Table 2: zip is a key, so zip → city is found — and
        // is useless for error detection (§1.1).
        let r = rel(
            &["zip", "city"],
            vec![
                vec!["90001", "Los Angeles"],
                vec!["90002", "Los Angeles"],
                vec!["90003", "Los Angeles"],
                vec!["90004", "New York"],
            ],
        );
        let fds = fdep(&r, &FdepConfig::default());
        assert!(fds.contains(&Fd {
            lhs: vec![AttrId(0)],
            rhs: AttrId(1)
        }));
        // city → zip must NOT hold (two LA rows with different zips).
        assert!(!fds.iter().any(|f| f.rhs == AttrId(0)));
        verify_sound_complete(&r);
    }

    #[test]
    fn no_fd_when_only_attribute_differs() {
        let r = rel(&["a", "b"], vec![vec!["x", "1"], vec!["x", "2"]]);
        let fds = fdep(&r, &FdepConfig::default());
        assert!(!fds.iter().any(|f| f.rhs == AttrId(1)), "{fds:?}");
        // a is constant, so the *minimal* dependency with RHS a has an
        // empty LHS — which we filter (constant columns are not reported as
        // dependencies). b → a is implied but non-minimal.
        assert!(!fds.iter().any(|f| f.rhs == AttrId(0)), "{fds:?}");
    }

    #[test]
    fn multi_attribute_lhs() {
        // Neither a nor b alone determines c, but (a, b) does.
        let r = rel(
            &["a", "b", "c"],
            vec![
                vec!["1", "1", "p"],
                vec!["1", "2", "q"],
                vec!["2", "1", "r"],
                vec!["2", "2", "s"],
            ],
        );
        let fds = fdep(&r, &FdepConfig::default());
        assert!(fds.contains(&Fd {
            lhs: vec![AttrId(0), AttrId(1)],
            rhs: AttrId(2)
        }));
        assert!(!fds.contains(&Fd {
            lhs: vec![AttrId(0)],
            rhs: AttrId(2)
        }));
        verify_sound_complete(&r);
    }

    #[test]
    fn single_lhs_filter() {
        let r = rel(
            &["a", "b", "c"],
            vec![
                vec!["1", "1", "p"],
                vec!["1", "2", "q"],
                vec!["2", "1", "r"],
                vec!["2", "2", "s"],
            ],
        );
        let singles = fdep_single_lhs(&r, &FdepConfig::default());
        assert!(singles.iter().all(|f| f.lhs.len() == 1));
    }

    #[test]
    fn dirty_data_breaks_fds() {
        // One typo in city breaks zip-prefix dependence entirely for FDep —
        // the §1.1 argument for why exact FDs are brittle.
        let r = rel(
            &["zip", "city"],
            vec![
                vec!["90001", "Los Angeles"],
                vec!["90001", "Los Angeels"], // same zip, typo'd city
            ],
        );
        let fds = fdep(&r, &FdepConfig::default());
        assert!(!fds.iter().any(|f| f.rhs == AttrId(1)));
    }

    #[test]
    fn empty_and_single_row() {
        // With no pairs every FD holds vacuously; the minimal ones have
        // empty LHS and are filtered, so nothing is reported.
        let r0 = rel(&["a", "b"], vec![]);
        assert!(fdep(&r0, &FdepConfig::default()).is_empty());
        let r1 = rel(&["a", "b"], vec![vec!["1", "2"]]);
        assert!(fdep(&r1, &FdepConfig::default()).is_empty());
    }

    #[test]
    fn minimality_of_results() {
        let r = rel(
            &["a", "b", "c"],
            vec![
                vec!["1", "x", "p"],
                vec!["2", "x", "q"],
                vec!["3", "y", "r"],
            ],
        );
        let fds = fdep(&r, &FdepConfig::default());
        for fd in &fds {
            for drop in 0..fd.lhs.len() {
                let mut smaller = fd.lhs.clone();
                smaller.remove(drop);
                if smaller.is_empty() {
                    continue;
                }
                assert!(
                    !fds.contains(&Fd {
                        lhs: smaller.clone(),
                        rhs: fd.rhs
                    }) || smaller == fd.lhs,
                    "non-minimal FD reported: {:?} → {:?}",
                    fd.lhs,
                    fd.rhs
                );
            }
        }
    }

    #[test]
    fn pair_sampling_is_deterministic() {
        let rows: Vec<Vec<String>> = (0..200)
            .map(|i| vec![format!("{i}"), format!("{}", i % 7)])
            .collect();
        let mut r = Relation::empty(pfd_relation::Schema::new("T", ["a", "b"]).unwrap());
        for row in rows {
            r.push_row(row).unwrap();
        }
        let config = FdepConfig {
            max_pairs: 500,
            ..FdepConfig::default()
        };
        assert_eq!(fdep(&r, &config), fdep(&r, &config));
    }
}
