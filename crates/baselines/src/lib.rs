//! # `pfd-baselines` — the comparison algorithms of §5
//!
//! Rust reimplementations of the two baselines the paper compares against
//! (both originally run through Metanome):
//!
//! - [`mod@fdep`] — **FDep** \[14\]: exact minimal FD discovery via difference
//!   sets and minimal hitting sets.
//! - [`cfd`] — a **CFDFinder**-style miner \[12, 13\]: constant CFDs with
//!   support and confidence (0.995 in the paper's runs), plus approximate
//!   whole-value variable CFDs.
//!
//! Both operate on *entire attribute values* — the limitation PFDs lift —
//! so on pattern-bearing tables they miss the partial-value dependencies
//! that Table 7 credits to the PFD miner.

#![warn(missing_docs)]

pub mod cfd;
pub mod fdep;

pub use cfd::{cfd_discover, to_pfds, CfdConfig, CfdDependency, ConstantCfd, VariableCfd};
pub use fdep::{fdep, fdep_single_lhs, Fd, FdepConfig};
