//! Explainable, cost-based repair: a steward's view of the conflict graph.
//!
//! Two rules fight over the same cell, a third cascades off the first fix,
//! and one inconsistent rule keeps re-asserting a value nobody supports —
//! the [`RepairEngine`] resolves the conflict by score (support, pattern
//! confidence, cascade depth), records the candidates each fix beat,
//! starves the stubborn rule once the depth penalty eats its score, and
//! chases the cascade to a fixpoint without rescanning the table. This is
//! the same breakdown `pfd repair --explain` prints.
//!
//! Run: `cargo run --example repair_explain`

use pfd::core::{evaluate_repairs, Pfd, RepairEngine, RepairOptions};
use pfd::relation::Relation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A geo table with one doubly-dirty row: r4's city is wrong, and its
    // state is wrong too — fixing the city by zip majority exposes the
    // city → state conflict.
    let dirty = Relation::from_rows(
        "Geo",
        &["zip", "city", "state"],
        vec![
            vec!["90001", "Los Angeles", "CA"],
            vec!["90002", "Los Angeles", "CA"],
            vec!["90003", "Los Angeles", "CA"],
            vec!["90004", "New York", "NY"], // both cells dirty
            vec!["60601", "Chicago", "IL"],
            vec!["60602", "Chicago", "IL"],
        ],
    )?;
    let mut clean = dirty.clone();
    let city = clean.schema().attr("city")?;
    let state = clean.schema().attr("state")?;
    clean.set_cell(3, city, "Los Angeles".into())?;
    clean.set_cell(3, state, "CA".into())?;

    // The rule set: the zip-prefix rule votes by majority within each
    // prefix group; the bogus CFD insists r4 really is "New York City"
    // (zero support — nobody else backs it); the city → state FD cascades
    // off whatever the city fight settles on.
    let zip_city =
        Pfd::constant_normal_form("Geo", dirty.schema(), "zip", r"[\D{3}]\D{2}", "city", "_")?;
    let bogus = Pfd::cfd(
        "Geo",
        dirty.schema(),
        &[("zip", Some("90004"))],
        ("city", Some("New York City")),
    )?;
    let city_state = Pfd::fd("Geo", dirty.schema(), &["city"], &["state"])?;
    let pfds = vec![zip_city, bogus, city_state];

    let mut engine = RepairEngine::new(dirty.clone(), pfds, RepairOptions::default());
    let (outcome, passes) = engine.run();

    println!(
        "{} fixes in {} passes, {} unrepaired\n",
        outcome.fixes.len(),
        passes,
        outcome.unrepaired.len()
    );
    for fix in &outcome.fixes {
        let attr = dirty.schema().name_of(fix.attr).unwrap_or("?");
        println!("row {} {attr}: {:?} -> {:?}", fix.row + 1, fix.old, fix.new);
        println!(
            "    chosen: pfd {} (tableau row {}) — score {:.3} = \
             0.6·support {:.2} + 0.4·confidence {:.2} − 0.15·depth {}",
            fix.pfd_index,
            fix.tableau_row,
            fix.score.total,
            fix.score.support,
            fix.score.confidence,
            fix.score.depth
        );
        for c in &fix.competitors {
            println!(
                "    beat:   pfd {} suggesting {:?} — score {:.3} (support {:.2})",
                c.pfd_index, c.suggestion, c.score.total, c.score.support
            );
        }
    }
    for flag in &outcome.unrepaired {
        let attr = dirty.schema().name_of(flag.attr).unwrap_or("?");
        println!(
            "unrepaired: row {} {attr} flagged by pfd {} (suggestion {:?} starved or absent)",
            flag.row + 1,
            flag.pfd_index,
            flag.suggestion
        );
    }

    let eval = evaluate_repairs(&outcome.fixes, &clean);
    println!(
        "\nvs ground truth: {} correct, {} incorrect, {} spurious (precision {:.2})",
        eval.correct,
        eval.incorrect,
        eval.spurious,
        eval.precision()
    );
    assert_eq!(
        outcome.relation, clean,
        "the chase restores the clean table"
    );
    assert!(
        outcome.fixes.iter().any(|f| !f.competitors.is_empty()),
        "the contested cell records its conflict set"
    );
    assert!(
        outcome
            .unrepaired
            .iter()
            .any(|f| f.pfd_index == 1 && f.suggestion.is_some()),
        "the zero-support rule starved under the depth penalty"
    );
    assert!(passes >= 2, "the city fix cascades into the state fix");
    println!("repaired relation matches the clean twin — chase explained.");
    Ok(())
}
