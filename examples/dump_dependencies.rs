//! Dump the discovered dependency sets of the standard suite in a stable
//! text form — the regression oracle for perf work on the discovery hot
//! path: before/after outputs must be byte-identical.
//!
//! ```sh
//! cargo run --release --example dump_dependencies > deps.txt
//! ```

use pfd::core::display_with_schema;
use pfd::datagen::{standard_suite, Scale};
use pfd::discovery::{discover, DiscoveryConfig};

fn main() {
    let suite = standard_suite(Scale::Small, 0.01, 42);
    for ds in &suite {
        let result = discover(&ds.dirty, &DiscoveryConfig::default());
        println!("== {} ({} rows)", ds.id, ds.dirty.num_rows());
        for dep in &result.dependencies {
            let (lhs, rhs) = dep.embedded_names(&ds.dirty);
            println!(
                "{:?} -> {} [{:?}] coverage={} constant_rows={}",
                lhs, rhs, dep.kind, dep.coverage, dep.constant_rows
            );
            println!("  {}", display_with_schema(&dep.pfd, ds.dirty.schema()));
        }
    }
}
