//! Dump the discovered dependency sets of the standard suite in a stable
//! text form — the regression oracle for perf work on the discovery hot
//! path: before/after outputs must be byte-identical.
//!
//! ```sh
//! cargo run --release --example dump_dependencies > deps.txt
//! ```
//!
//! With `--snapshot DIR`, each dataset's index is persisted to
//! `DIR/<id>.pfdi` and the run goes through the warm path (cold build +
//! save on first run, zero-copy load on the next), so the oracle also
//! covers warm-start discovery:
//!
//! ```sh
//! cargo run --release --example dump_dependencies > cold.txt
//! cargo run --release --example dump_dependencies -- --snapshot idx/ > save.txt
//! cargo run --release --example dump_dependencies -- --snapshot idx/ > warm.txt
//! diff cold.txt save.txt && diff cold.txt warm.txt
//! ```

use pfd::core::display_with_schema;
use pfd::datagen::{standard_suite, Scale};
use pfd::discovery::{discover, discover_persistent, DiscoveryConfig, DiscoveryResult};
use pfd::relation::StdIo;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let snapshot_dir = args.iter().position(|a| a == "--snapshot").map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--snapshot needs a directory argument");
            std::process::exit(2);
        })
    });
    if let Some(dir) = &snapshot_dir {
        std::fs::create_dir_all(dir).expect("create snapshot dir");
    }

    let suite = standard_suite(Scale::Small, 0.01, 42);
    let config = DiscoveryConfig::default();
    for ds in &suite {
        let result: DiscoveryResult = match &snapshot_dir {
            Some(dir) => {
                let path = std::path::Path::new(dir).join(format!("{}.pfdi", ds.id));
                let warm = discover_persistent(&StdIo, &path, &ds.dirty, &config, 0, 0);
                // Route path notes to stderr so stdout stays byte-stable.
                match (&warm.fallback, warm.result.stats.index_loaded) {
                    (_, true) => {
                        eprintln!("{}: warm ({:?})", ds.id, warm.result.stats.index_load_time)
                    }
                    (Some(fb), false) => eprintln!("{}: cold ({fb})", ds.id),
                    (None, false) => eprintln!("{}: cold", ds.id),
                }
                warm.result
            }
            None => discover(&ds.dirty, &config),
        };
        println!("== {} ({} rows)", ds.id, ds.dirty.num_rows());
        for dep in &result.dependencies {
            let (lhs, rhs) = dep.embedded_names(&ds.dirty);
            println!(
                "{:?} -> {} [{:?}] coverage={} constant_rows={}",
                lhs, rhs, dep.kind, dep.coverage, dep.constant_rows
            );
            println!("  {}", display_with_schema(&dep.pfd, ds.dirty.schema()));
        }
    }
}
