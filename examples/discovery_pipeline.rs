//! The full ANMAT-style pipeline (the paper's companion demo system):
//! profile → extract → index → discover → generalize → report, with the
//! paper's Example 8 table and a larger synthetic table, printing what each
//! stage produced.
//!
//! Run: `cargo run --example discovery_pipeline`

use pfd::core::display_with_schema;
use pfd::discovery::{build_index, discover, DiscoveryConfig, IndexOptions};
use pfd::relation::{profile_relation, ColumnKind, Extraction, Relation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The running example of §4.3 (Table 6).
    let rel = Relation::from_rows(
        "T",
        &["name", "country", "gender"],
        vec![
            vec!["Tayseer Fahmi", "Egypt", "F"],
            vec!["Tayseer Qasem", "Yemen", "M"],
            vec!["Tayseer Salem", "Egypt", "F"],
            vec!["Tayseer Saeed", "Yemen", "M"],
            vec!["Noor Wagdi", "Egypt", "M"],
            vec!["Noor Shadi", "Yemen", "F"],
            vec!["Noor Hisham", "Egypt", "M"],
            vec!["Noor Hashim", "Yemen", "F"],
            vec!["Esmat Qadhi", "Yemen", "M"],
            vec!["Esmat Farahat", "Egypt", "F"],
        ],
    )?;

    // Stage 1 — profiling (Fig. 4 lines 1–3).
    println!("== Stage 1: profiling ==");
    for p in profile_relation(&rel) {
        println!(
            "  {:<8} kind={:?} extraction={:?} distinct={} separators={:.0}%",
            p.name,
            p.kind,
            p.extraction,
            p.distinct,
            p.separator_fraction * 100.0
        );
        assert_ne!(p.kind, ColumnKind::Quantitative, "nothing to prune here");
    }

    // Stage 2 — the positional inverted index (Fig. 4 lines 5–12).
    println!("\n== Stage 2: inverted index ==");
    for (col, extraction) in [
        ("name", Extraction::Tokenize),
        ("country", Extraction::NGrams),
        ("gender", Extraction::NGrams),
    ] {
        let attr = rel.schema().attr(col)?;
        let idx = build_index(&rel, attr, extraction, &IndexOptions::default());
        println!(
            "  H[{col}]: {} entries after substring pruning",
            idx.entries.len()
        );
        for e in idx.entries.iter().take(4) {
            println!(
                "    (('{}', {}), {:?})",
                idx.pattern_str(e),
                e.pos,
                e.rows
                    .iter()
                    .map(|r| format!("r{}", r + 1))
                    .collect::<Vec<_>>()
            );
        }
    }
    println!("  (Example 8: country collapses to two entries — Egypt and Yemen)");

    // Stage 3 — discovery. Single-LHS finds nothing for name → gender at
    // K=2 (the genders split 50/50 under every first name), so the lattice
    // moves to (name, country) → gender.
    println!("\n== Stage 3: discovery (K=2, δ=5%) ==");
    let config = DiscoveryConfig {
        min_support: 2,
        max_lhs: 2,
        ..DiscoveryConfig::default()
    };
    let result = discover(&rel, &config);
    println!(
        "  {} candidate dependencies checked, {} pattern entries tested",
        result.stats.candidates_checked, result.stats.entries_tested
    );
    for dep in &result.dependencies {
        let (lhs, rhs) = dep.embedded_names(&rel);
        println!(
            "\n  {:?} → {} [{:?}, coverage {}/{}]",
            lhs,
            rhs,
            dep.kind,
            dep.coverage,
            rel.num_rows()
        );
        println!("    {}", display_with_schema(&dep.pfd, rel.schema()));
        assert!(dep.pfd.satisfies(&rel), "discovered PFDs hold on the data");
    }

    println!("\nThe paper's Example 8 outcome: the four constant PFDs generalize to");
    println!("λ: ([name = first-token pattern, country] → [gender]) covering every row.");
    Ok(())
}
