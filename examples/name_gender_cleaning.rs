//! Domain scenario 1 — cleaning a contact list with name → gender PFDs.
//!
//! The workload of the paper's introduction: a table of full names and
//! genders with a few wrong gender cells. We discover PFDs from the dirty
//! data itself (§4), inspect the generalized variable PFD, detect the
//! errors (§5.3) and repair them, then verify against the clean twin —
//! including the unisex-name caveat of §2.2.
//!
//! Run: `cargo run --example name_gender_cleaning`

use pfd::core::{detect_errors, display_with_schema, evaluate_repairs, repair, Pfd};
use pfd::datagen::{standard_suite, Scale};
use pfd::discovery::{discover, DependencyKind, DiscoveryConfig};

fn main() {
    // T15 — donors with "Last, First M." names (the Table 3 format).
    let suite = standard_suite(Scale::Small, 0.02, 42);
    let ds = suite.iter().find(|d| d.id == "T15").expect("T15 exists");
    println!(
        "Donor table: {} rows, {} with injected typos",
        ds.dirty.num_rows(),
        ds.error_cells.len()
    );

    // 1. Discover PFDs from the dirty data.
    let result = discover(&ds.dirty, &DiscoveryConfig::default());
    let name_gender = result
        .dependencies
        .iter()
        .find(|d| {
            let (lhs, rhs) = d.embedded_names(&ds.dirty);
            lhs == vec!["full_name".to_string()] && rhs == "gender"
        })
        .expect("full_name → gender discovered");
    println!(
        "\nDiscovered full_name → gender ({} constant rows before generalization):",
        name_gender.constant_rows
    );
    println!(
        "  {}",
        display_with_schema(&name_gender.pfd, ds.dirty.schema())
    );
    if name_gender.kind == DependencyKind::Variable {
        println!("  (generalized to a variable PFD: any shared first name forces equal gender)");
    }

    // 2. Detect suspicious cells.
    let pfds: Vec<Pfd> = vec![name_gender.pfd.clone()];
    let report = detect_errors(&ds.dirty, &pfds);
    let errors = ds.error_set();
    let genuine = report
        .unique_cells()
        .iter()
        .filter(|c| errors.contains(c))
        .count();
    println!(
        "\nDetection: {} cells flagged, {} of them injected typos",
        report.unique_cells().len(),
        genuine
    );
    for flag in report.flags.iter().take(5) {
        let name_attr = ds.dirty.schema().attr("full_name").unwrap();
        println!(
            "  {} — gender {:?} (suggest {:?})",
            ds.dirty.cell(flag.row, name_attr),
            flag.current,
            flag.suggestion.as_deref().unwrap_or("?")
        );
    }

    // 3. Repair and evaluate against the clean twin.
    let outcome = repair(&ds.dirty, &pfds);
    let eval = evaluate_repairs(&outcome.fixes, &ds.clean);
    println!(
        "\nRepair: {} fixes applied — {} correct, {} incorrect, {} spurious (precision {:.1}%)",
        outcome.fixes.len(),
        eval.correct,
        eval.incorrect,
        eval.spurious,
        eval.precision() * 100.0
    );
    println!("Unisex names (the §2.2 Kim caveat) account for spurious flags: the pattern");
    println!("is genuine on most names but no authority can decide a unisex one.");
}
