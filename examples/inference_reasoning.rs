//! Reasoning about PFDs (§3): axioms, closure, implication and consistency.
//!
//! Walks the axiom system of Fig. 3 with checked derivation steps, decides
//! implication through the PFD-closure of Fig. 7, cross-validates with the
//! small-model counterexample search of Theorem 2, and runs the NP
//! consistency checker — including the §7.3 nontautology reduction.
//!
//! Run: `cargo run --example inference_reasoning`

use pfd::core::{Pfd, TableauCell};
use pfd::inference::{
    check_consistency, implies, is_nontautology_via_pfds, pfd_closure, reflexivity,
    refute_implication, transitivity, Axiom, ClosureConfig, Consistency, Dnf, Literal, Proof,
};
use pfd::relation::{AttrId, Schema};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = Schema::new("R", ["zip", "city", "state"])?;

    // Ψ: zip prefix 900 → Los Angeles; Los Angeles → CA.
    let sigma = vec![
        Pfd::constant_normal_form("R", &schema, "zip", r"[900]\D{2}", "city", r"Los\ Angeles")?,
        Pfd::constant_normal_form("R", &schema, "city", r"Los\ Angeles", "state", "CA")?,
    ];

    // 1. A recorded proof using the axioms.
    println!("== Axiomatic derivation (Fig. 3) ==");
    let composed = transitivity(&sigma[0], &sigma[1])?;
    let mut proof = Proof::new();
    let h1 = proof.hypothesis(sigma[0].clone());
    let h2 = proof.hypothesis(sigma[1].clone());
    proof.step(Axiom::Transitivity, vec![h1, h2], composed.clone())?;
    for (i, step) in proof.steps().iter().enumerate() {
        match step.axiom {
            None => println!("  ({i}) hypothesis: {}", step.conclusion),
            Some(ax) => println!(
                "  ({i}) by {ax} from {:?}: {}",
                step.premises, step.conclusion
            ),
        }
    }

    // Reflexivity, the paper's own example: Name(name → name, (John… ‖ \LU…)).
    let refl = reflexivity(
        "Name",
        &[(AttrId(0), TableauCell::parse(r"[John\ ]\A*")?)],
        AttrId(0),
        TableauCell::parse(r"[\LU\LL*\ ]\A*")?,
    )?;
    println!("  reflexivity example: {refl}");

    // 2. Implication through the closure.
    println!("\n== Implication (Theorem 2, decided via the Fig. 7 closure) ==");
    let psi = Pfd::constant_normal_form("R", &schema, "zip", r"[900]\D{2}", "state", "CA")?;
    println!("  Ψ ⊨ (zip 900xx → CA)?  {}", implies(&sigma, &psi, 3));
    let not_implied = Pfd::constant_normal_form("R", &schema, "zip", r"[900]\D{2}", "state", "NY")?;
    println!(
        "  Ψ ⊨ (zip 900xx → NY)?  {}",
        implies(&sigma, &not_implied, 3)
    );
    if let Some(instance) = refute_implication(&sigma, &not_implied, 3, 200_000) {
        println!("  counterexample instance found (small-model search):");
        print!("{instance}");
    }

    // The closure itself.
    let closure = pfd_closure(
        &sigma,
        3,
        &[(AttrId(0), TableauCell::parse(r"[900]\D{2}")?)],
        &ClosureConfig::default(),
    );
    println!("  closure of (zip, [900]\\D{{2}}):");
    for (attr, cell) in &closure {
        println!("    {} ↦ {}", schema.name_of(*attr)?, cell);
    }

    // 3. Consistency (Theorem 3).
    println!("\n== Consistency (Theorem 3, NP small-model search) ==");
    match check_consistency(&sigma, 3) {
        Consistency::Consistent(witness) => {
            println!("  Ψ is consistent; witness tuple: {witness:?}")
        }
        other => println!("  {other:?}"),
    }

    // 4. The §7.3 reduction: nontautology as PFD consistency.
    println!("\n== NP-hardness reduction (§7.3) ==");
    let tautology = Dnf {
        num_vars: 1,
        clauses: vec![vec![Literal::pos(0)], vec![Literal::neg(0)]],
    };
    println!(
        "  x ∨ ¬x — nontautology via PFD consistency: {:?} (it IS a tautology)",
        is_nontautology_via_pfds(&tautology)
    );
    let satisfiable = Dnf {
        num_vars: 2,
        clauses: vec![vec![Literal::pos(0), Literal::pos(1)]],
    };
    println!(
        "  x ∧ y — nontautology via PFD consistency: {:?} (falsifiable, so not a tautology)",
        is_nontautology_via_pfds(&satisfiable)
    );
    Ok(())
}
