//! A scripted steward session: the interactive cleaning loop of the
//! paper's ANMAT demo (§4.5), driven end to end through the JSONL session
//! protocol — edit, observe the violation delta, repair, verify clean.
//!
//! Run: `cargo run --example interactive_session`

use pfd::core::{repair, run_session, DeltaEngine, Edit, Pfd, TableauRow};
use pfd::relation::Relation;
use std::io::Cursor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Table 1 of the paper, with the erroneous r4 (Susan Boyle, M).
    let rel = Relation::from_rows(
        "Name",
        &["name", "gender"],
        vec![
            vec!["John Charles", "M"],
            vec!["John Bosco", "M"],
            vec!["Susan Orlean", "F"],
            vec!["Susan Boyle", "M"],
        ],
    )?;

    // ψ1: constant first names determine gender.
    let mut psi1 =
        Pfd::constant_normal_form("Name", rel.schema(), "name", r"[John\ ]\A*", "gender", "M")?;
    psi1.add_row(TableauRow::parse(&[r"[Susan\ ]\A*"], &["F"])?)?;

    // -------------------------------------------------------------------
    // 1. The JSONL protocol, exactly as `pfd session` speaks it on stdin.
    // -------------------------------------------------------------------
    let script = concat!(
        // The steward fixes r4 — its violation resolves.
        "{\"op\":\"set\",\"row\":3,\"attr\":\"gender\",\"value\":\"F\"}\n",
        // A new record arrives with a typo — a violation appears live.
        "{\"op\":\"insert\",\"cells\":[\"John Doe\",\"F\"]}\n",
        // One batch: fix the typo and retire an old record. The engine
        // coalesces the invalidations and reconciles each group once.
        "{\"op\":\"batch\",\"edits\":[",
        "{\"op\":\"set\",\"row\":4,\"attr\":\"gender\",\"value\":\"M\"},",
        "{\"op\":\"delete\",\"row\":1}]}\n",
    );
    println!("== steward session (JSONL in → JSONL out) ==");
    for line in script.lines() {
        println!("→ {line}");
    }
    println!();
    let mut transcript = Vec::new();
    let (cleaned, summary) = run_session(
        rel.clone(),
        vec![psi1.clone()],
        Cursor::new(script),
        &mut transcript,
    )?;
    for line in String::from_utf8(transcript)?.lines() {
        println!("← {line}");
    }
    assert_eq!(summary.applied, 3);
    assert_eq!(summary.violations, 0, "the session ends clean");
    assert!(psi1.satisfies(&cleaned));

    // -------------------------------------------------------------------
    // 2. The same loop through the DeltaEngine API, plus pattern-directed
    //    repair for the fixes the steward does not want to type by hand.
    // -------------------------------------------------------------------
    println!("\n== DeltaEngine API: observe a delta, then auto-repair ==");
    let mut engine = DeltaEngine::new(rel, vec![psi1.clone()]);
    println!(
        "initial violations: {} (r4 disagrees with the Susan row)",
        engine.violation_count()
    );
    let delta = engine.apply(Edit::Set {
        row: 0,
        attr: engine.relation().schema().attr("gender")?,
        value: "F".into(),
    })?;
    println!(
        "after breaking r1[gender]: +{} / -{} (version {})",
        delta.introduced.len(),
        delta.resolved.len(),
        delta.version
    );
    assert_eq!(engine.violation_count(), 2);

    let outcome = repair(&engine.relation().clone(), engine.pfds());
    println!(
        "pattern-directed repair applies {} fixes:",
        outcome.fixes.len()
    );
    for fix in &outcome.fixes {
        println!("  r{}[gender]: {:?} → {:?}", fix.row + 1, fix.old, fix.new);
    }
    assert!(psi1.satisfies(&outcome.relation));
    println!("relation satisfies ψ1 again — session closed.");
    Ok(())
}
