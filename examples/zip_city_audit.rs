//! Domain scenario 2 — auditing geographic consistency with zip PFDs.
//!
//! An alumni-records audit: zips, cities and states must agree. We load the
//! table from CSV (the interchange format of the open-data repositories the
//! paper evaluates on), discover PFDs, and cross-check three dependencies —
//! zip → city, zip → state and city → state — against the validation
//! oracle, reproducing the §5.2 workflow end to end.
//!
//! Run: `cargo run --example zip_city_audit`

use pfd::core::detect_errors;
use pfd::datagen::{standard_suite, OracleDomain, Scale, ValidationOracle};
use pfd::discovery::{discover, DiscoveryConfig};
use pfd::relation::{read_csv_str, write_csv_string};

fn main() {
    // T14 — alumni with zip/city/state columns; round-trip through CSV to
    // exercise the I/O path a real audit would use.
    let suite = standard_suite(Scale::Small, 0.02, 42);
    let ds = suite.iter().find(|d| d.id == "T14").expect("T14 exists");
    let csv = write_csv_string(&ds.dirty);
    let rel = read_csv_str("udw_alumni", &csv).expect("CSV round-trip");
    println!(
        "Loaded {} alumni rows from CSV ({} bytes)",
        rel.num_rows(),
        csv.len()
    );

    // Discover with constants kept (oracle validation needs constant rows).
    let config = DiscoveryConfig {
        generalize: false,
        ..DiscoveryConfig::default()
    };
    let result = discover(&rel, &config);
    let oracle = ValidationOracle::new();

    for (lhs, rhs, domain) in [
        ("zip", "city", Some(OracleDomain::ZipCity)),
        ("zip", "state", Some(OracleDomain::ZipState)),
        ("city", "state", None),
    ] {
        let Some(dep) = result.dependencies.iter().find(|d| {
            let (l, r) = d.embedded_names(&rel);
            l == vec![lhs.to_string()] && r == rhs
        }) else {
            println!("{lhs} → {rhs}: not discovered");
            continue;
        };
        let tableau_rows = dep.pfd.tableau().len();
        let validation = match domain {
            Some(domain) => {
                let (ok, bad, unknown) = oracle.validate_pfd(domain, &dep.pfd);
                format!("oracle: {ok} confirmed, {bad} wrong, {unknown} undecided")
            }
            None => "no external authority for this dependency".to_string(),
        };
        let report = detect_errors(&rel, std::slice::from_ref(&dep.pfd));
        println!(
            "{lhs} → {rhs}: {tableau_rows} tableau rows, coverage {}/{} rows, {} suspects — {validation}",
            dep.coverage,
            rel.num_rows(),
            report.unique_cells().len(),
        );
    }

    // How many of the flagged cells are real?
    let all_pfds: Vec<_> = result
        .dependencies
        .iter()
        .filter(|d| {
            let (l, r) = d.embedded_names(&rel);
            matches!(
                (l[0].as_str(), r.as_str()),
                ("zip", "city") | ("zip", "state") | ("city", "state")
            )
        })
        .map(|d| d.pfd.clone())
        .collect();
    let report = detect_errors(&rel, &all_pfds);
    let errors = ds.error_set();
    let tp = report
        .unique_cells()
        .iter()
        .filter(|c| errors.contains(c))
        .count();
    println!(
        "\nGeographic audit: {} suspect cells, {} confirmed typos out of {} injected",
        report.unique_cells().len(),
        tp,
        errors.len()
    );
}
