//! Quickstart: the paper's running example (Tables 1 & 2, Figures 2).
//!
//! Defines the PFDs λ1–λ5 from the introduction, checks them against the
//! Name and Zip tables, and shows both kinds of violations — the
//! single-tuple firing of constant PFDs and the tuple-pair firing of
//! variable PFDs.
//!
//! Run: `cargo run --example quickstart`

use pfd::core::{display_with_schema, Pfd, TableauRow, ViolationKind};
use pfd::relation::Relation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Table 1 — r4's gender should be F.
    let name_table = Relation::from_rows(
        "Name",
        &["name", "gender"],
        vec![
            vec!["John Charles", "M"],
            vec!["John Bosco", "M"],
            vec!["Susan Orlean", "F"],
            vec!["Susan Boyle", "M"], // erroneous
        ],
    )?;

    // Table 2 — s4's city should be Los Angeles.
    let zip_table = Relation::from_rows(
        "Zip",
        &["zip", "city"],
        vec![
            vec!["90001", "Los Angeles"],
            vec!["90002", "Los Angeles"],
            vec!["90003", "Los Angeles"],
            vec!["90004", "New York"], // erroneous
        ],
    )?;

    println!("== ψ1 (λ1, λ2): constant first names determine gender ==");
    let mut psi1 = Pfd::constant_normal_form(
        "Name",
        name_table.schema(),
        "name",
        r"[John\ ]\A*",
        "gender",
        "M",
    )?;
    psi1.add_row(TableauRow::parse(&[r"[Susan\ ]\A*"], &["F"])?)?;
    println!("{}", display_with_schema(&psi1, name_table.schema()));
    for v in psi1.violations(&name_table) {
        assert_eq!(v.kind, ViolationKind::SingleTuple);
        let rid = v.rows()[0];
        println!(
            "  violation: r{} ({}, {}) — a single tuple suffices, no redundancy needed",
            rid + 1,
            name_table.cell(rid, name_table.schema().attr("name")?),
            name_table.cell(rid, name_table.schema().attr("gender")?),
        );
    }

    println!("\n== ψ2 (λ4): the first name, whatever it is, determines gender ==");
    let psi2 = Pfd::constant_normal_form(
        "Name",
        name_table.schema(),
        "name",
        r"[\LU\LL*\ ]\A*",
        "gender",
        "_",
    )?;
    println!("{}", display_with_schema(&psi2, name_table.schema()));
    for v in psi2.violations(&name_table) {
        assert_eq!(v.kind, ViolationKind::TuplePair);
        println!(
            "  violation: tuples r{} and r{} share a first name but disagree on gender ({} cells)",
            v.rows()[0] + 1,
            v.rows()[1] + 1,
            v.cells().len(),
        );
    }

    println!("\n== ψ3 (λ3): zip prefix 900 determines Los Angeles ==");
    let psi3 = Pfd::constant_normal_form(
        "Zip",
        zip_table.schema(),
        "zip",
        r"[900]\D{2}",
        "city",
        r"Los\ Angeles",
    )?;
    println!("{}", display_with_schema(&psi3, zip_table.schema()));
    for v in psi3.violations(&zip_table) {
        println!(
            "  violation: s{} — {} is not Los Angeles",
            v.rows()[0] + 1,
            zip_table.cell(v.rows()[0], zip_table.schema().attr("city")?),
        );
    }

    println!("\n== ψ4 (λ5): the first three zip digits determine the city ==");
    let psi4 = Pfd::constant_normal_form(
        "Zip",
        zip_table.schema(),
        "zip",
        r"[\D{3}]\D{2}",
        "city",
        "_",
    )?;
    println!("{}", display_with_schema(&psi4, zip_table.schema()));
    for v in psi4.violations(&zip_table) {
        println!("  violation: s{} vs s{}", v.rows()[0] + 1, v.rows()[1] + 1);
    }

    // §2.2's discussion: remove r3 and ψ2 goes blind while ψ1 still fires.
    let without_r3 = name_table.filter_rows(|r| r != 2);
    println!("\nWithout Susan Orlean: ψ1 still detects the error ({} violations); ψ2 cannot ({} violations).",
        psi1.violations(&without_r3).len(),
        psi2.violations(&without_r3).len());

    // A plain FD sees nothing at all (§1.1): every name/zip is unique.
    let fd = Pfd::fd("Zip", zip_table.schema(), &["zip"], &["city"])?;
    assert!(fd.satisfies(&zip_table));
    println!("The plain FD zip → city is satisfied — whole-value ICs cannot catch s4.");

    Ok(())
}
