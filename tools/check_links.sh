#!/usr/bin/env bash
# Verify that every relative markdown link in README.md and docs/*.md
# points at a file or directory that exists, so the architecture guide
# cannot rot silently. External (http/https/mailto) links and pure
# anchors are skipped. Run from the repository root.
set -euo pipefail

fail=0
for md in README.md docs/*.md; do
  [ -f "$md" ] || continue
  base_dir=$(dirname "$md")
  # Extract the (target) part of [label](target) links, one per line.
  while IFS= read -r target; do
    case "$target" in
      http://* | https://* | mailto:* | '#'*) continue ;;
    esac
    # Strip a trailing #anchor.
    path="${target%%#*}"
    [ -n "$path" ] || continue
    if [ ! -e "$base_dir/$path" ] && [ ! -e "$path" ]; then
      echo "BROKEN LINK in $md: ($target)" >&2
      fail=1
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "$md" | sed 's/.*](\([^)]*\))/\1/')
done

# Inline code references to key files must exist too (the guide points
# into the tree with `crates/...` paths).
for md in docs/*.md; do
  [ -f "$md" ] || continue
  while IFS= read -r path; do
    # Expand brace shorthand like crates/core/src/{incremental,session}.rs
    if [[ "$path" == *"{"* ]]; then
      prefix="${path%%\{*}"; rest="${path#*\{}"
      names="${rest%%\}*}"; suffix="${rest#*\}}"
      IFS=',' read -ra parts <<< "$names"
      for p in "${parts[@]}"; do
        if [ ! -e "${prefix}${p}${suffix}" ]; then
          echo "BROKEN FILE REF in $md: ${prefix}${p}${suffix}" >&2
          fail=1
        fi
      done
    elif [ ! -e "$path" ]; then
      echo "BROKEN FILE REF in $md: $path" >&2
      fail=1
    fi
  done < <(grep -o '`\(crates\|src\|docs\|examples\|vendor\|tools\)/[^`]*`' "$md" | tr -d '`')
done

if [ "$fail" -ne 0 ]; then
  echo "link check failed" >&2
  exit 1
fi
echo "link check OK"
